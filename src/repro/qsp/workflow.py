"""The scalable synthesis workflow (paper Fig. 5), as a stepwise run.

Given a target with ``n`` qubits and cardinality ``m``:

* **sparse** (``n * m < 2**n``): run (improved) cardinality reduction until
  the entangled core fits the exact thresholds, then exact-synthesize the
  core;
* **dense** (``n * m >= 2**n``): run qubit reduction (pruned rotation
  multiplexors) down to ``exact_qubits`` wires, then exact-synthesize the
  core.

Every path ends in the exact engine (unless ``use_exact`` is off, the
ablation mode), and the assembled full-register circuit is verified by
simulation for small ``n``.

Since PR 10 the workflow is a first-class stepwise run:
:class:`WorkflowRun` subclasses :class:`repro.core.engine.StepwiseRun`, so
a ``prepare`` request can be time-sliced by the request scheduler exactly
like ``exact`` traffic — paused at flow boundaries and between inner-engine
expansions, fed incumbents, cancelled on disconnect, and flushed to a
verified best-so-far circuit at a deadline (falling back to the
reduction-only completion when the exact core is cut short).  The one-shot
:func:`prepare_state` is nothing but ``WorkflowRun(...).run_to_completion()``
and stays differential-identical (same costs, same trace) to the pre-PR-10
inline workflow.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.baselines.mflow import mflow_reduction_moves
from repro.baselines.nflow import nflow_synthesize, qubit_reduction_prefix
from repro.circuits.circuit import QCircuit
from repro.core.astar import AStarRun
from repro.core.beam import BeamRun
from repro.core.engine import RunStatus, SearchStats, StepwiseRun
from repro.core.exact import _VERIFY_MAX_QUBITS, ExactSynthesizer
from repro.core.kernel import StatePool
from repro.core.moves import Move
from repro.exceptions import (
    MemoryCompatibilityError,
    SearchBudgetExceeded,
    SynthesisError,
)
from repro.qsp.config import QSPConfig
from repro.qsp.extraction import embed_core_circuit, extract_core
from repro.qsp.reduction import reduce_cardinality
from repro.states.analysis import num_entangled_qubits
from repro.states.qstate import QState
from repro.utils.timing import Stopwatch

__all__ = ["QSPResult", "WorkflowRun", "prepare_state"]


@dataclass
class QSPResult:
    """Outcome of the full workflow.

    ``trace`` records the stages taken (for logs and tests);
    ``exact_optimal`` tells whether the exact stage proved optimality of
    its core (the overall circuit is still heuristic, as in the paper).
    """

    circuit: QCircuit
    cnot_cost: int
    sparse_path: bool
    exact_optimal: bool | None = None
    trace: list[str] = field(default_factory=list)


def _reduction_only_circuit(state: QState) -> QCircuit:
    from repro.core.moves import moves_to_circuit

    moves, final_state = mflow_reduction_moves(state)
    return moves_to_circuit(moves, final_state, state.num_qubits)


def _gh_reduction_to_thresholds(state: QState, config: QSPConfig
                                ) -> tuple[list[Move], QState]:
    """Plain GH merge steps until the exact thresholds are met."""
    stop = max(1, config.exact_cardinality)
    moves, reduced = mflow_reduction_moves(state, stop_cardinality=stop,
                                           minimize_literals=True)
    while num_entangled_qubits(reduced) > config.exact_qubits and \
            reduced.cardinality > 1:
        step_moves, reduced = mflow_reduction_moves(
            reduced, stop_cardinality=reduced.cardinality - 1,
            minimize_literals=True)
        moves.extend(step_moves)
    return moves, reduced


class WorkflowRun(StepwiseRun):
    """The Fig.-5 workflow as a pausable, cancellable stepwise run.

    The generator body mirrors the pre-stepwise inline workflow statement
    for statement — same engine constructions, same configs, same trace
    strings — with ``yield`` points at every flow boundary (before each
    reduction candidate, before each exact core, before assembly/verify)
    and one yield per inner-engine expansion (each inner
    :class:`~repro.core.engine.EngineRun` is driven in single-expansion
    slices, which PR 5 guarantees is node-for-node identical to a one-shot
    run).  Results are :class:`QSPResult`, not ``SearchResult`` — the one
    deliberate deviation from the kernel-engine runs.

    ``inject_incumbent(cost)`` takes a *full-register* feasible cost and
    forwards it to the active inner engine minus the fixed prefix cost of
    the surrounding stage (reduction moves / qubit-reduction suffix), so
    branch-and-bound stays sound.  If every candidate core is pruned by
    an injected bound the run finishes ``PROVEN`` with no result of its
    own, exactly like the kernel engines.

    ``flush_feasible()`` (deadline expiry / drain) returns the best
    verified circuit obtainable *now*: the best fully-assembled candidate
    so far, the active engine's anytime flush completed through the
    stage's assembly, the reduction-only completion of the active core,
    or — last resort — the plain m-flow circuit on the full register.
    Topology-native runs skip the reduction fallbacks (their moves are
    not native) and may flush nothing, mirroring the one-shot contract.

    The sparse path dedupes exact core searches by the core's structural
    identity (interned payload): when the multi-pair and GH reductions
    land on the same core, the second candidate reuses the first search's
    circuit — the trace still reports both candidates.
    """

    engine = "workflow"

    def __init__(self, state: QState, config: QSPConfig | None = None,
                 memory=None, topology=None):
        self.state = state
        self.config = config or QSPConfig()
        self.memory = memory
        self.topology = topology
        self._sparse = state.is_sparse()
        self._native = topology is not None and not topology.is_full()
        self._trace: list[str] = []
        self._stats = SearchStats()
        # active inner engine run + its stage context (for incumbent
        # forwarding and deadline flushes)
        self._active: StepwiseRun | None = None
        self._active_prefix = 0
        self._active_assemble = None
        self._active_fallback = None
        #: best fully-assembled (circuit, exact_optimal) candidate so far
        self._best_partial: tuple[QCircuit, bool | None] | None = None
        # sparse-path core dedupe: structural core identity -> search output
        self._core_cache: dict = {}
        self._core_pool = StatePool()
        #: exact-core searches skipped because an earlier candidate in
        #: this run produced a structurally identical core
        self.core_reuse = 0
        super().__init__(stopwatch=Stopwatch(None))

    # -- driver surface extensions ---------------------------------------

    @property
    def stats(self) -> SearchStats:
        """Aggregated inner-engine counters (all cores, all candidates)."""
        return self._stats

    def inject_incumbent(self, cost: int) -> None:
        super().inject_incumbent(cost)
        if self._active is not None and self._ub is not None:
            self._active.inject_incumbent(
                max(0, self._ub - self._active_prefix))

    def flush_feasible(self):
        if self._result is not None:
            return self._result
        candidates: list[tuple[QCircuit, bool | None]] = []
        if self._best_partial is not None:
            candidates.append(self._best_partial)
        if self._active is not None and self._active_assemble is not None:
            partial = self._active.flush_feasible()
            if partial is not None:
                candidates.append(
                    (self._active_assemble(partial.circuit), None))
        if self._active_fallback is not None:
            candidates.append((self._active_fallback(), None))
        if not candidates and not self._native:
            # nothing reached the exact stage yet: the baseline m-flow
            # circuit on the full register is always feasible
            candidates.append((_reduction_only_circuit(self.state), None))
        if not candidates:
            return None  # native runs have no routable fallback
        circuit, optimal = min(candidates, key=lambda c: c[0].cnot_cost())
        trace = list(self._trace)
        trace.append(f"deadline flush: best-so-far "
                     f"{circuit.cnot_cost()} CNOTs")
        if self.state.num_qubits <= self.config.verify_max_qubits:
            from repro.sim.verify import assert_prepares
            assert_prepares(circuit, self.state)
            trace.append("verified by simulation")
        return QSPResult(circuit=circuit, cnot_cost=circuit.cnot_cost(),
                         sparse_path=self._sparse, exact_optimal=optimal,
                         trace=trace)

    def _finalize(self) -> None:
        self._stats.elapsed_seconds = self._stopwatch.elapsed()

    # -- workflow body ----------------------------------------------------

    def _main(self):
        try:
            state, config, trace = self.state, self.config, self._trace
            if self._native:
                outcome = yield from self._native_stage(trace)
            elif state.num_qubits <= config.exact_qubits or \
                    (self._sparse and
                     state.cardinality <= config.exact_cardinality and
                     num_entangled_qubits(state) <= config.exact_qubits):
                outcome = yield from self._core_stage(state, trace)
            elif self._sparse:
                outcome = yield from self._sparse_stage(trace)
            else:
                outcome = yield from self._dense_stage(trace)
            if outcome is None:
                # every candidate was pruned by an injected incumbent:
                # whoever injected it holds the (now proven) best circuit
                self._finish(RunStatus.PROVEN)
                return
            circuit, optimal = outcome
            yield  # flow boundary: assembly done, verification ahead
            if state.num_qubits <= config.verify_max_qubits:
                from repro.sim.verify import assert_prepares
                assert_prepares(circuit, state)
                trace.append("verified by simulation")
            self._finish(RunStatus.SOLVED, result=QSPResult(
                circuit=circuit, cnot_cost=circuit.cnot_cost(),
                sparse_path=self._sparse, exact_optimal=optimal,
                trace=trace))
        except Exception as exc:  # GeneratorExit (cancel) passes through
            self._finish(RunStatus.EXHAUSTED, error=exc)

    def _drive(self, run: StepwiseRun, prefix_cost: int = 0,
               assemble=None, fallback=None):
        """Drive an inner engine run in single-expansion slices.

        Yields once per inner expansion so the outer ``step`` budget and
        deadline apply at expansion granularity; registers the run as the
        active flush/incumbent target for the duration.  PR 5's slice-size
        invariance makes this node-for-node identical to the engine's own
        ``run_to_completion``.
        """
        self._active = run
        self._active_prefix = prefix_cost
        self._active_assemble = assemble
        self._active_fallback = fallback
        if self._ub is not None:
            run.inject_incumbent(max(0, self._ub - prefix_cost))
        try:
            while True:
                status = run.step(1)
                self._stats.nodes_expanded += run.last_slice_expansions
                if status.terminal:
                    break
                yield
        finally:
            self._active = None
            self._active_assemble = None
            self._active_fallback = None
            if not run.status.terminal:
                run.cancel()  # outer cancel() closed our generator
            self._absorb(run.stats)

    def _absorb(self, s: SearchStats) -> None:
        """Fold a finished inner run's counters into the aggregate."""
        agg = self._stats
        agg.nodes_generated += s.nodes_generated
        agg.nodes_pruned += s.nodes_pruned
        agg.max_queue = max(agg.max_queue, s.max_queue)
        agg.canon_cache_hits += s.canon_cache_hits
        agg.canon_cache_misses += s.canon_cache_misses
        agg.h_cache_hits += s.h_cache_hits
        agg.h_cache_misses += s.h_cache_misses
        agg.dedup_evictions += s.dedup_evictions
        agg.transposition_hits += s.transposition_hits
        agg.transposition_writes += s.transposition_writes
        agg.incumbent_prunes += s.incumbent_prunes
        agg.bnb_transposition_prunes += s.bnb_transposition_prunes
        agg.transposition_poisoned += s.transposition_poisoned
        agg.canon_store_hits += s.canon_store_hits
        agg.canon_store_misses += s.canon_store_misses
        agg.h_store_hits += s.h_store_hits
        agg.h_store_misses += s.h_store_misses
        for phase, seconds in s.phase_seconds.items():
            agg.phase_seconds[phase] = \
                agg.phase_seconds.get(phase, 0.0) + seconds

    def _synthesize_exact(self, state: QState, prefix_cost: int = 0,
                          topology=None, assemble=None, fallback=None):
        """Stepwise replica of :meth:`ExactSynthesizer.synthesize`.

        Same construction order, same configs, same fallback/verify
        semantics; returns the ``SearchResult`` (or ``None`` when an
        injected incumbent pruned the whole candidate — ``PROVEN``).
        """
        exact = self.config.exact
        search_config, beam_config = exact.search, exact.beam
        if topology is not None:
            search_config = replace(search_config, topology=topology)
            beam_config = replace(beam_config, topology=topology)
        if not search_config.use_kernel:
            # the legacy dict-based A* loop has no stepwise form: run the
            # facade inline (one generator turn), identical results
            result = ExactSynthesizer(exact).synthesize(
                state, memory=self.memory, topology=topology)
            self._stats.nodes_expanded += result.stats.nodes_expanded
            self._absorb(result.stats)
            return result
        run = AStarRun(state, search_config, memory=self.memory)
        yield from self._drive(run, prefix_cost, assemble=assemble,
                               fallback=fallback)
        if run.status is RunStatus.SOLVED:
            result = run.result()
        elif run.status is RunStatus.PROVEN:
            return None
        else:
            error = run.error
            if not (exact.beam_fallback and
                    isinstance(error, SearchBudgetExceeded)):
                raise error
            try:
                brun = BeamRun(state, beam_config, memory=self.memory)
            except MemoryCompatibilityError:
                brun = BeamRun(state, beam_config)
            yield from self._drive(brun, prefix_cost, assemble=assemble,
                                   fallback=fallback)
            if brun.status is RunStatus.SOLVED:
                result = brun.result()
            elif brun.status is RunStatus.PROVEN:
                return None
            else:
                raise brun.error
            result = replace(result, optimal=False)
        if exact.verify and state.num_qubits <= _VERIFY_MAX_QUBITS:
            from repro.sim.verify import assert_prepares
            assert_prepares(result.circuit, state)
        return result

    def _core_stage(self, state: QState, trace: list[str],
                    prefix_cost: int = 0, finish=None):
        """Exact-synthesize the entangled core of ``state`` and re-embed.

        ``finish`` maps the re-embedded core circuit to the full-register
        circuit of the surrounding stage (identity when ``state`` *is*
        the full register); it contextualizes deadline flushes.  Returns
        ``(circuit, optimal)`` on ``state``'s register, or ``None`` when
        the candidate was incumbent-pruned.
        """
        config = self.config
        extraction = extract_core(state)
        if extraction.core is None:
            trace.append("core: fully separable, free gates only")
            return embed_core_circuit(extraction, None), None
        core = extraction.core
        trace.append(f"core: n_eff={core.num_qubits} m={core.cardinality}")
        if config.use_exact:
            key = self._core_pool.from_qstate(core)
            cached = self._core_cache.get(key)
            if cached is not None:
                self.core_reuse += 1
                best_circuit, optimal = cached
            else:
                def assemble(core_circuit: QCircuit) -> QCircuit:
                    embedded = embed_core_circuit(extraction, core_circuit)
                    return finish(embedded) if finish else embedded

                def fallback() -> QCircuit:
                    return assemble(_reduction_only_circuit(core))

                result = yield from self._synthesize_exact(
                    core, prefix_cost=prefix_cost, assemble=assemble,
                    fallback=fallback)
                if result is None:
                    return None
                best_circuit, optimal = result.circuit, result.optimal
                if not optimal:
                    # Budgeted search fell back to the anytime engine;
                    # never let the core cost exceed what the reduction
                    # flows achieve on it.
                    for alternative in (nflow_synthesize(core, prune=True),
                                        _reduction_only_circuit(core)):
                        if alternative.cnot_cost() < \
                                best_circuit.cnot_cost():
                            best_circuit = alternative
                self._core_cache[key] = (best_circuit, optimal)
            trace.append(f"exact: {best_circuit.cnot_cost()} CNOTs "
                         f"(optimal={optimal})")
            return embed_core_circuit(extraction, best_circuit), optimal
        # Ablation: finish the core with the baseline reduction instead.
        core_circuit = _reduction_only_circuit(core)
        trace.append(f"reduction-only core: {core_circuit.cnot_cost()} CNOTs")
        return embed_core_circuit(extraction, core_circuit), None

    def _sparse_stage(self, trace: list[str]):
        state, config = self.state, self.config
        n = state.num_qubits
        trace.append(f"sparse path: n={n} m={state.cardinality}")
        # Candidate reductions: the improved multi-pair greedy and the
        # plain GH baseline steps.  Both end at the exact-synthesis
        # thresholds; the cheaper assembled circuit wins, so the workflow
        # never regresses below the m-flow baseline.
        candidates: list[tuple[str, list[Move], QState]] = []
        yield  # flow boundary: reduction candidates next
        if config.improved_reduction:
            moves, reduced = reduce_cardinality(
                state,
                stop_cardinality=config.exact_cardinality,
                stop_entangled=config.exact_qubits,
                config=config.reduction)
            candidates.append(("multi-pair", moves, reduced))
            yield  # flow boundary between candidate reductions
        gh_moves, gh_reduced = _gh_reduction_to_thresholds(state, config)
        candidates.append(("gh", gh_moves, gh_reduced))

        best: tuple[QCircuit, bool | None] | None = None
        best_label = ""
        chosen_trace: list[str] = []
        for label, moves, reduced in candidates:
            yield  # flow boundary: this candidate's exact core next
            sub_trace: list[str] = []
            reduction_cost = sum(m.cost for m in moves)

            def finish(core_circuit: QCircuit,
                       moves=moves) -> QCircuit:
                circuit = QCircuit(n)
                circuit.compose(core_circuit)
                for move in reversed(moves):
                    circuit.extend(move.forward_gates())
                return circuit

            outcome = yield from self._core_stage(
                reduced, sub_trace, prefix_cost=reduction_cost,
                finish=finish)
            if outcome is None:
                continue  # incumbent-pruned candidate
            core_circuit, optimal = outcome
            circuit = finish(core_circuit)
            if self._best_partial is None or circuit.cnot_cost() < \
                    self._best_partial[0].cnot_cost():
                self._best_partial = (circuit, optimal)
            if best is None or circuit.cnot_cost() < best[0].cnot_cost():
                best = (circuit, optimal)
                best_label = label
                chosen_trace = [
                    f"reduction ({label}): {len(moves)} moves, "
                    f"{reduction_cost} CNOTs, core m={reduced.cardinality}",
                    *sub_trace,
                ]
        if best is None:
            return None
        trace.extend(chosen_trace)
        trace.append(f"selected reduction strategy: {best_label}")
        return best

    def _dense_stage(self, trace: list[str]):
        state, config = self.state, self.config
        n = state.num_qubits
        trace.append(f"dense path: n={n} m={state.cardinality}")
        yield  # flow boundary: qubit reduction next
        keep = min(n, max(1, config.exact_qubits))
        core, suffix = qubit_reduction_prefix(state, keep)
        trace.append(f"qubit reduction to {keep} wires: "
                     f"{suffix.cnot_cost()} CNOTs")

        def finish(core_circuit: QCircuit) -> QCircuit:
            circuit = QCircuit(n)
            circuit.compose(core_circuit.embedded(n, list(range(keep))))
            circuit.compose(suffix)
            return circuit

        outcome = yield from self._core_stage(
            core, trace, prefix_cost=suffix.cnot_cost(), finish=finish)
        if outcome is None:
            return None
        core_circuit, optimal = outcome
        circuit = finish(core_circuit)
        self._best_partial = (circuit, optimal)
        return circuit, optimal

    def _native_stage(self, trace: list[str]):
        """Topology-native synthesis: search directly on the restricted
        move set, full register, no reduction prefix.

        The reduction flows emit merges with arbitrary control cubes and
        CX on arbitrary pairs — none of which are native — so a
        device-constrained request goes straight to the exact engines,
        whose restricted enumeration guarantees every emitted CNOT sits
        on a coupled pair.  The beam fallback searches natively too, but
        its m-flow completion tail is disabled under a topology (the
        tail's moves are not native), so unlike the unrestricted pipeline
        it is *not* guaranteed to return a feasible circuit within tight
        budgets — a hard request can fail loudly with
        :class:`~repro.exceptions.SynthesisError` rather than be answered
        with an unroutable circuit.
        """
        state, topology = self.state, self.topology
        trace.append(f"native path: topology={topology.name} "
                     f"n={state.num_qubits} m={state.cardinality}")
        yield  # flow boundary: native exact search next
        result = yield from self._synthesize_exact(
            state, prefix_cost=0, topology=topology,
            assemble=lambda circuit: circuit, fallback=None)
        if result is None:
            return None
        trace.append(f"exact (native): {result.circuit.cnot_cost()} CNOTs "
                     f"(optimal={result.optimal})")
        self._best_partial = (result.circuit, result.optimal)
        return result.circuit, result.optimal


def prepare_state(state: QState, config: QSPConfig | None = None,
                  memory=None, topology=None) -> QSPResult:
    """Synthesize a preparation circuit with the paper's workflow.

    The sparsity test ``n * m < 2**n`` picks the divide-and-conquer
    strategy; the exact engine finishes the small core either way.

    ``memory`` optionally threads a process-lifetime
    :class:`~repro.core.memory.SearchMemory` into every exact-core search
    the workflow runs — the synthesis service passes its memory here, so
    repeated traffic keeps the cores' canonical keys and heuristic values
    warm across requests.  Results are identical warm or cold.

    ``topology`` optionally constrains synthesis to a device coupling map:
    the whole register is then searched natively (restricted move set, see
    :meth:`WorkflowRun._native_stage`) and the returned circuit needs no
    routing.  ``None`` or a full map is the paper's unrestricted model.

    This is the one-shot wrapper over :class:`WorkflowRun` — identical to
    driving the run to completion in a single step.
    """
    return WorkflowRun(state, config, memory=memory,
                       topology=topology).run_to_completion()

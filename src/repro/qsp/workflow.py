"""The scalable synthesis workflow (paper Fig. 5).

Given a target with ``n`` qubits and cardinality ``m``:

* **sparse** (``n * m < 2**n``): run (improved) cardinality reduction until
  the entangled core fits the exact thresholds, then exact-synthesize the
  core;
* **dense** (``n * m >= 2**n``): run qubit reduction (pruned rotation
  multiplexors) down to ``exact_qubits`` wires, then exact-synthesize the
  core.

Every path ends in the exact engine (unless ``use_exact`` is off, the
ablation mode), and the assembled full-register circuit is verified by
simulation for small ``n``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.baselines.mflow import mflow_reduction_moves
from repro.baselines.nflow import nflow_synthesize, qubit_reduction_prefix
from repro.circuits.circuit import QCircuit
from repro.core.exact import ExactSynthesizer
from repro.core.moves import Move
from repro.exceptions import SynthesisError
from repro.qsp.config import QSPConfig
from repro.qsp.extraction import embed_core_circuit, extract_core
from repro.qsp.reduction import reduce_cardinality
from repro.states.analysis import num_entangled_qubits
from repro.states.qstate import QState

__all__ = ["QSPResult", "prepare_state"]


@dataclass
class QSPResult:
    """Outcome of the full workflow.

    ``trace`` records the stages taken (for logs and tests);
    ``exact_optimal`` tells whether the exact stage proved optimality of
    its core (the overall circuit is still heuristic, as in the paper).
    """

    circuit: QCircuit
    cnot_cost: int
    sparse_path: bool
    exact_optimal: bool | None = None
    trace: list[str] = field(default_factory=list)


def _exact_core_circuit(state: QState, config: QSPConfig,
                        trace: list[str],
                        memory=None) -> tuple[QCircuit, bool | None]:
    """Exact-synthesize the entangled core of ``state`` and re-embed."""
    extraction = extract_core(state)
    if extraction.core is None:
        trace.append("core: fully separable, free gates only")
        return embed_core_circuit(extraction, None), None
    core = extraction.core
    trace.append(f"core: n_eff={core.num_qubits} m={core.cardinality}")
    if config.use_exact:
        result = ExactSynthesizer(config.exact).synthesize(core,
                                                           memory=memory)
        best_circuit, optimal = result.circuit, result.optimal
        if not optimal:
            # Budgeted search fell back to the anytime engine; never let the
            # core cost exceed what the reduction flows achieve on it.
            for alternative in (nflow_synthesize(core, prune=True),
                                _reduction_only_circuit(core)):
                if alternative.cnot_cost() < best_circuit.cnot_cost():
                    best_circuit = alternative
        trace.append(f"exact: {best_circuit.cnot_cost()} CNOTs "
                     f"(optimal={optimal})")
        return embed_core_circuit(extraction, best_circuit), optimal
    # Ablation: finish the core with the baseline reduction instead.
    core_circuit = _reduction_only_circuit(core)
    trace.append(f"reduction-only core: {core_circuit.cnot_cost()} CNOTs")
    return embed_core_circuit(extraction, core_circuit), None


def _reduction_only_circuit(state: QState) -> QCircuit:
    from repro.core.moves import moves_to_circuit

    moves, final_state = mflow_reduction_moves(state)
    return moves_to_circuit(moves, final_state, state.num_qubits)


def _gh_reduction_to_thresholds(state: QState, config: QSPConfig
                                ) -> tuple[list[Move], QState]:
    """Plain GH merge steps until the exact thresholds are met."""
    stop = max(1, config.exact_cardinality)
    moves, reduced = mflow_reduction_moves(state, stop_cardinality=stop,
                                           minimize_literals=True)
    while num_entangled_qubits(reduced) > config.exact_qubits and \
            reduced.cardinality > 1:
        step_moves, reduced = mflow_reduction_moves(
            reduced, stop_cardinality=reduced.cardinality - 1,
            minimize_literals=True)
        moves.extend(step_moves)
    return moves, reduced


def _sparse_path(state: QState, config: QSPConfig, trace: list[str],
                 memory=None) -> tuple[QCircuit, bool | None]:
    trace.append(f"sparse path: n={state.num_qubits} m={state.cardinality}")
    # Candidate reductions: the improved multi-pair greedy and the plain GH
    # baseline steps.  Both end at the exact-synthesis thresholds; the
    # cheaper assembled circuit wins, so the workflow never regresses below
    # the m-flow baseline.
    candidates: list[tuple[str, list[Move], QState]] = []
    if config.improved_reduction:
        moves, reduced = reduce_cardinality(
            state,
            stop_cardinality=config.exact_cardinality,
            stop_entangled=config.exact_qubits,
            config=config.reduction)
        candidates.append(("multi-pair", moves, reduced))
    gh_moves, gh_reduced = _gh_reduction_to_thresholds(state, config)
    candidates.append(("gh", gh_moves, gh_reduced))

    best: tuple[QCircuit, bool | None] | None = None
    best_label = ""
    for label, moves, reduced in candidates:
        sub_trace: list[str] = []
        core_circuit, optimal = _exact_core_circuit(reduced, config,
                                                    sub_trace,
                                                    memory=memory)
        circuit = QCircuit(state.num_qubits)
        circuit.compose(core_circuit)
        for move in reversed(moves):
            circuit.extend(move.forward_gates())
        if best is None or circuit.cnot_cost() < best[0].cnot_cost():
            best = (circuit, optimal)
            best_label = label
            reduction_cost = sum(m.cost for m in moves)
            chosen_trace = [
                f"reduction ({label}): {len(moves)} moves, "
                f"{reduction_cost} CNOTs, core m={reduced.cardinality}",
                *sub_trace,
            ]
    trace.extend(chosen_trace)
    trace.append(f"selected reduction strategy: {best_label}")
    assert best is not None
    return best


def _dense_path(state: QState, config: QSPConfig, trace: list[str],
                memory=None) -> tuple[QCircuit, bool | None]:
    n = state.num_qubits
    trace.append(f"dense path: n={n} m={state.cardinality}")
    keep = min(n, max(1, config.exact_qubits))
    core, suffix = qubit_reduction_prefix(state, keep)
    trace.append(f"qubit reduction to {keep} wires: "
                 f"{suffix.cnot_cost()} CNOTs")
    core_circuit, optimal = _exact_core_circuit(core, config, trace,
                                                memory=memory)
    circuit = QCircuit(n)
    circuit.compose(core_circuit.embedded(n, list(range(keep))))
    circuit.compose(suffix)
    return circuit, optimal


def _native_path(state: QState, config: QSPConfig, trace: list[str],
                 memory, topology) -> tuple[QCircuit, bool | None]:
    """Topology-native synthesis: search directly on the restricted move
    set, full register, no reduction prefix.

    The reduction flows emit merges with arbitrary control cubes and CX on
    arbitrary pairs — none of which are native — so a device-constrained
    request goes straight to the exact engines, whose restricted
    enumeration guarantees every emitted CNOT sits on a coupled pair.
    The beam fallback searches natively too, but its m-flow completion
    tail is disabled under a topology (the tail's moves are not native),
    so unlike the unrestricted pipeline it is *not* guaranteed to return
    a feasible circuit within tight budgets — a hard request can fail
    loudly with :class:`~repro.exceptions.SynthesisError` rather than be
    answered with an unroutable circuit.
    """
    trace.append(f"native path: topology={topology.name} "
                 f"n={state.num_qubits} m={state.cardinality}")
    result = ExactSynthesizer(config.exact).synthesize(
        state, memory=memory, topology=topology)
    trace.append(f"exact (native): {result.circuit.cnot_cost()} CNOTs "
                 f"(optimal={result.optimal})")
    return result.circuit, result.optimal


def prepare_state(state: QState, config: QSPConfig | None = None,
                  memory=None, topology=None) -> QSPResult:
    """Synthesize a preparation circuit with the paper's workflow.

    The sparsity test ``n * m < 2**n`` picks the divide-and-conquer
    strategy; the exact engine finishes the small core either way.

    ``memory`` optionally threads a process-lifetime
    :class:`~repro.core.memory.SearchMemory` into every exact-core search
    the workflow runs — the synthesis service passes its memory here, so
    repeated traffic keeps the cores' canonical keys and heuristic values
    warm across requests.  Results are identical warm or cold.

    ``topology`` optionally constrains synthesis to a device coupling map:
    the whole register is then searched natively (restricted move set, see
    :func:`_native_path`) and the returned circuit needs no routing.
    ``None`` or a full map is the paper's unrestricted model.
    """
    config = config or QSPConfig()
    trace: list[str] = []
    sparse = state.is_sparse()
    if topology is not None and not topology.is_full():
        circuit, optimal = _native_path(state, config, trace, memory,
                                        topology)
    elif state.num_qubits <= config.exact_qubits or \
            (sparse and state.cardinality <= config.exact_cardinality and
             num_entangled_qubits(state) <= config.exact_qubits):
        circuit, optimal = _exact_core_circuit(state, config, trace,
                                               memory=memory)
    elif sparse:
        circuit, optimal = _sparse_path(state, config, trace, memory=memory)
    else:
        circuit, optimal = _dense_path(state, config, trace, memory=memory)

    if state.num_qubits <= config.verify_max_qubits:
        from repro.sim.verify import assert_prepares
        assert_prepares(circuit, state)
        trace.append("verified by simulation")

    return QSPResult(circuit=circuit, cnot_cost=circuit.cnot_cost(),
                     sparse_path=sparse,
                     exact_optimal=optimal, trace=trace)

"""Entangled-core extraction.

The exact engine should only ever see the *entangled core* of a state:
separable qubits are handled by free local gates (the paper's
canonicalization "filters out separable qubits", and the workflow thresholds
``n <= 4`` refer to the core).  :func:`extract_core` factors a state as::

    |psi>  =  (local 1-qubit states on separable wires)  (x)  |core>

returning the core on a narrowed register, the placement of core qubits on
the original wires, and the free local gates for the separable wires.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.circuits.circuit import QCircuit
from repro.circuits.gates import Gate, RYGate, XGate
from repro.exceptions import StateError
from repro.states.qstate import QState
from repro.utils.bits import bit_of

__all__ = ["CoreExtraction", "extract_core", "embed_core_circuit"]


@dataclass
class CoreExtraction:
    """Factorization of a state into local gates and an entangled core.

    Attributes
    ----------
    core:
        The entangled core, or ``None`` when the state is fully separable.
    placement:
        ``placement[i]`` = original wire carrying core qubit ``i``.
    local_gates:
        Free gates (X / Ry) preparing the separable wires.
    num_qubits:
        Original register width.
    """

    core: QState | None
    placement: list[int]
    local_gates: list[Gate] = field(default_factory=list)
    num_qubits: int = 0


def _separable_ratio(items: list[tuple[int, float]], n: int, q: int
                     ) -> float | None:
    """Raw-tuple version of the cofactor proportionality test."""
    cof0: dict[int, float] = {}
    cof1: dict[int, float] = {}
    shift = n - 1 - q
    bit = 1 << shift
    for idx, amp in items:
        if idx & bit:
            cof1[idx & ~bit] = amp
        else:
            cof0[idx] = amp
    if not cof1:
        return 0.0
    if not cof0:
        return math.inf
    if cof0.keys() != cof1.keys():
        return None
    ratio: float | None = None
    for idx, a0 in cof0.items():
        r = cof1[idx] / a0
        if ratio is None:
            ratio = r
        elif abs(r - ratio) > 1e-8 * max(1.0, abs(ratio)):
            return None
    return ratio


def _drop_qubit(items: list[tuple[int, float]], n: int, q: int,
                ratio: float) -> list[tuple[int, float]]:
    """Remove a separable qubit, folding its amplitude into the rest."""
    shift = n - 1 - q
    bit = 1 << shift
    low_mask = bit - 1
    out: list[tuple[int, float]] = []
    if math.isinf(ratio):
        scale, keep_value = 1.0, 1
    else:
        scale, keep_value = math.sqrt(1.0 + ratio * ratio), 0
    for idx, amp in items:
        if ((idx >> shift) & 1) != keep_value:
            continue
        narrowed = ((idx >> (shift + 1)) << shift) | (idx & low_mask)
        out.append((narrowed, amp * scale))
    return out


def extract_core(state: QState) -> CoreExtraction:
    """Factor out every separable qubit (to a fixpoint)."""
    n = state.num_qubits
    items = list(state.items())
    wires = list(range(n))  # original wire of each current position
    gates: list[Gate] = []
    changed = True
    while changed and wires:
        changed = False
        width = len(wires)
        for pos in range(width):
            ratio = _separable_ratio(items, width, pos)
            if ratio is None:
                continue
            wire = wires[pos]
            if math.isinf(ratio):
                gates.append(XGate(target=wire))
            elif ratio != 0.0:
                alpha = 1.0 / math.sqrt(1.0 + ratio * ratio)
                beta = ratio * alpha
                gates.append(RYGate(target=wire,
                                    theta=2.0 * math.atan2(beta, alpha)))
            items = _drop_qubit(items, width, pos, ratio)
            del wires[pos]
            changed = True
            break
    if not wires:
        return CoreExtraction(core=None, placement=[], local_gates=gates,
                              num_qubits=n)
    core = QState(len(wires), dict(items), normalize=True)
    return CoreExtraction(core=core, placement=wires, local_gates=gates,
                          num_qubits=n)


def embed_core_circuit(extraction: CoreExtraction,
                       core_circuit: QCircuit | None) -> QCircuit:
    """Rebuild a full-register circuit from a core circuit and the free
    local gates of an extraction."""
    n = extraction.num_qubits
    circuit = QCircuit(n)
    if core_circuit is not None:
        if extraction.core is None:
            raise StateError("core circuit given for a separable state")
        if core_circuit.num_qubits != len(extraction.placement):
            raise StateError("core circuit width does not match placement")
        circuit.compose(core_circuit.embedded(n, extraction.placement))
    circuit.extend(extraction.local_gates)
    return circuit

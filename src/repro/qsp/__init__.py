"""Scalable QSP workflow (Fig. 5): reduction + exact core synthesis."""

from repro.qsp.config import QSPConfig, default_exact_config
from repro.qsp.extraction import CoreExtraction, embed_core_circuit, extract_core
from repro.qsp.reduction import ReductionConfig, reduce_cardinality
from repro.qsp.solver import MethodComparison, compare_methods, prepare
from repro.qsp.workflow import QSPResult, prepare_state

__all__ = [
    "QSPConfig",
    "default_exact_config",
    "CoreExtraction",
    "extract_core",
    "embed_core_circuit",
    "ReductionConfig",
    "reduce_cardinality",
    "MethodComparison",
    "compare_methods",
    "prepare",
    "QSPResult",
    "prepare_state",
]

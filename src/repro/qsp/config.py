"""Workflow configuration (paper Sec. VI-A, Fig. 5)."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.astar import SearchConfig
from repro.core.beam import BeamConfig
from repro.core.exact import ExactConfig
from repro.qsp.reduction import ReductionConfig

__all__ = ["QSPConfig", "default_exact_config"]


def default_exact_config() -> ExactConfig:
    """Exact-engine budget used inside the workflow.

    The workflow only hands the engine entangled cores with ``n <= 4`` and
    ``m <= 16`` (the paper's activation thresholds), so a modest budget
    suffices; the beam fallback guarantees progress regardless.
    """
    return ExactConfig(
        search=SearchConfig(max_nodes=150_000, time_limit=30.0),
        beam=BeamConfig(width=128, time_limit=10.0),
        beam_fallback=True,
        verify=False,  # the workflow verifies the assembled circuit instead
    )


@dataclass
class QSPConfig:
    """End-to-end state-preparation configuration.

    Attributes
    ----------
    exact_qubits:
        Activate exact synthesis when the entangled core has at most this
        many qubits (paper: 4).
    exact_cardinality:
        ... and at most this many nonzero amplitudes (paper: 16).
    exact:
        Budgets of the exact engine.
    reduction:
        Improved sparse-path reduction knobs.
    use_exact:
        Disable to measure the pure reduction flows (ablation).
    improved_reduction:
        Use the multi-pair merge reduction on the sparse path; when false
        the plain GH m-flow steps are used (ablation).
    verify_max_qubits:
        Verify the final circuit by simulation when ``n`` is at most this.
    """

    exact_qubits: int = 4
    exact_cardinality: int = 16
    exact: ExactConfig = field(default_factory=default_exact_config)
    reduction: ReductionConfig = field(default_factory=ReductionConfig)
    use_exact: bool = True
    improved_reduction: bool = True
    verify_max_qubits: int = 12

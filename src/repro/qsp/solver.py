"""Top-level convenience API.

:func:`prepare` is the one-call entry point a downstream user wants;
:func:`compare_methods` runs every synthesis flow on one state and reports
CNOT counts side by side (the shape of the paper's evaluation tables).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines.hybrid import hybrid_synthesize
from repro.baselines.mflow import mflow_synthesize
from repro.baselines.nflow import nflow_synthesize
from repro.circuits.circuit import QCircuit
from repro.qsp.config import QSPConfig
from repro.qsp.workflow import QSPResult, prepare_state
from repro.states.qstate import QState

__all__ = ["prepare", "compare_methods", "MethodComparison"]


def prepare(state: QState, config: QSPConfig | None = None) -> QCircuit:
    """Synthesize a preparation circuit for ``state`` (paper workflow)."""
    return prepare_state(state, config).circuit


@dataclass
class MethodComparison:
    """CNOT counts of every method on one target state.

    ``hybrid`` uses one ancilla (reported on ``n + 1`` wires), matching the
    paper's setup.
    """

    num_qubits: int
    cardinality: int
    mflow: int
    nflow: int
    hybrid: int
    ours: int
    ours_result: QSPResult

    def as_row(self) -> list:
        return [self.num_qubits, self.cardinality, self.mflow, self.nflow,
                self.hybrid, self.ours]


def compare_methods(state: QState, config: QSPConfig | None = None,
                    include_hybrid: bool = True,
                    include_mflow: bool = True) -> MethodComparison:
    """Run m-flow, n-flow, hybrid, and our workflow on ``state``.

    The two flags allow skipping the quadratic-cost baselines on large
    dense inputs (the paper marks those TLE).
    """
    ours = prepare_state(state, config)
    mflow_cost = mflow_synthesize(state).cnot_cost() if include_mflow else -1
    nflow_cost = nflow_synthesize(state).cnot_cost()
    hybrid_cost = hybrid_synthesize(state).cnot_cost() \
        if include_hybrid else -1
    return MethodComparison(
        num_qubits=state.num_qubits,
        cardinality=state.cardinality,
        mflow=mflow_cost,
        nflow=nflow_cost,
        hybrid=hybrid_cost,
        ours=ours.cnot_cost,
        ours_result=ours,
    )

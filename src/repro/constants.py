"""Numeric conventions shared across the library.

Amplitudes are real floats.  Two amplitudes are considered equal when they
agree after rounding to :data:`AMP_DECIMALS` decimal places; this quantization
is what makes states hashable and the state-transition graph finite at a given
precision level (the paper's ``epsilon``, Sec. IV-B).
"""

from __future__ import annotations

import math

#: Decimal places used when quantizing amplitudes for hashing/equality.
AMP_DECIMALS: int = 10

#: Absolute tolerance matching the quantization above.
ATOL: float = 0.5 * 10.0 ** (-AMP_DECIMALS)

#: Looser tolerance for simulator round-trip comparisons.
SIM_ATOL: float = 1e-8

#: CNOT cost of a multi-controlled Ry with ``k`` controls (Table I):
#: 0 controls -> plain Ry (free), 1 control -> 2, k controls -> 2**k.


def mcry_cnot_cost(num_controls: int) -> int:
    """CNOT cost of an ``MCRy`` gate with ``num_controls`` controls.

    Matches Table I of the paper (and the motivating example, where boxes
    with 1 and 2 controls cost ``2**1 + 2**2 = 6`` CNOTs), realized exactly
    by the Gray-code multiplexor in :mod:`repro.circuits.decompose`.
    """
    if num_controls < 0:
        raise ValueError("negative control count")
    if num_controls == 0:
        return 0
    return 1 << num_controls


def quantize(amp: float) -> float:
    """Round an amplitude to the library-wide precision.

    ``-0.0`` is normalized to ``0.0`` so that hashing is stable.
    """
    q = round(amp, AMP_DECIMALS)
    if q == 0.0:
        return 0.0
    return q


def amps_close(a: float, b: float, atol: float = ATOL) -> bool:
    """True when two amplitudes agree within ``atol``."""
    return math.isclose(a, b, rel_tol=0.0, abs_tol=atol)

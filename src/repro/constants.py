"""Numeric conventions shared across the library.

Amplitudes are real floats.  Two amplitudes are considered equal when they
agree after rounding to :data:`AMP_DECIMALS` decimal places; this quantization
is what makes states hashable and the state-transition graph finite at a given
precision level (the paper's ``epsilon``, Sec. IV-B).
"""

from __future__ import annotations

import math

#: Decimal places used when quantizing amplitudes for hashing/equality.
AMP_DECIMALS: int = 10

#: Absolute tolerance matching the quantization above.
ATOL: float = 0.5 * 10.0 ** (-AMP_DECIMALS)

#: Looser tolerance for simulator round-trip comparisons.
SIM_ATOL: float = 1e-8

#: Relative tolerance for the common-amplitude-ratio test of a merge move.
MERGE_RATIO_RTOL: float = 1e-9

# ----------------------------------------------------------------------
# Canonicalization enumeration caps
# ----------------------------------------------------------------------
#
# Soundness never depends on these caps (capped enumeration may split an
# equivalence class into several representatives, which only weakens
# pruning).  Two tiers are defined once here and threaded everywhere:
#
# * ``DEFAULT_*`` — full-strength minimization, used by the public
#   canonicalization API (:mod:`repro.core.canonical`) and offline class
#   counting, where key quality matters more than per-call latency.
# * ``SEARCH_*`` — bounded caps for the search inner loop, where
#   canonicalization runs once per generated state and latency dominates.

#: X-flip tie cap for the public canonicalization API.
DEFAULT_TIE_CAP: int = 4096

#: Permutation-candidate cap for the public canonicalization API.
DEFAULT_PERM_CAP: int = 48

#: X-flip tie cap used inside the search hot loop.
SEARCH_TIE_CAP: int = 256

#: Permutation-candidate cap used inside the search hot loop.
SEARCH_PERM_CAP: int = 24

#: Size cap of the per-search canonical-key / heuristic caches (entries).
#: Exceeding it evicts the oldest entries (FIFO), keeping memory bounded
#: on long searches; hit rates are reported in ``SearchStats``.
SEARCH_CACHE_CAP: int = 1 << 18

# ----------------------------------------------------------------------
# Persistent cross-search memory caps (repro.core.memory)
# ----------------------------------------------------------------------
#
# A ``SearchMemory`` outlives individual searches, so its containers are
# capped independently of the per-search tiers above.  Evicting any entry
# is always sound: stores only deduplicate recomputation, and dropping a
# transposition entry merely re-probes a subtree.

#: Entry cap of each persistent hash-keyed store (canon keys, h values).
MEMORY_STORE_CAP: int = 1 << 20

#: Entry cap of the persistent IDA* transposition table.
MEMORY_TRANSPOSITION_CAP: int = 1 << 20

#: Interned-state count above which ``SearchMemory`` rotates its pool at
#: the next attach (the stores survive rotation; only interning restarts).
MEMORY_POOL_ROTATE_CAP: int = 1 << 21

# ----------------------------------------------------------------------
# Synthesis service layer (repro.service)
# ----------------------------------------------------------------------

#: On-disk ``SearchMemory`` snapshot format version.  Bumped whenever the
#: serialized layout or the meaning of stored entries changes; a loader
#: seeing any other version raises ``MemoryCompatibilityError`` instead of
#: guessing (entries from an incompatible layout must never mix in).
#: v2: transposition entries carry generation stamps (aging) and the
#: snapshot carries the table generation + per-lane win statistics.
#: v1 snapshots remain *readable* (a lossless subset — see
#: ``repro.utils.serialization``); this constant is the version written.
MEMORY_SNAPSHOT_VERSION: int = 2

#: Schema version stamped into every benchmark JSON artifact
#: (``BENCH_kernel.json``, ``BENCH_memory.json``, ``BENCH_service.json``)
#: by :func:`repro.utils.fingerprint.stamp_benchmark`, so trajectory
#: comparisons across PRs can detect incompatible runs.
BENCH_SCHEMA_VERSION: int = 1

#: Entry cap of the service request cache (distinct target states).
SERVICE_REQUEST_CACHE_CAP: int = 1 << 16

#: Node expansions per scheduler time slice in the interleaved portfolio
#: (``repro.service.portfolio.interleaved_portfolio``): small enough that
#: incumbents and cancellations propagate promptly, large enough that the
#: per-slice bookkeeping is noise next to the expansions themselves.
PORTFOLIO_SLICE_EXPANSIONS: int = 256

#: Proven-budget units an IDA* transposition entry loses per snapshot
#: generation of age in the eviction ordering (``repro.core.memory
#: .TranspositionTable``): a sweep drops stale small-budget proofs from
#: old workloads before fresh ones of equal budget.  Dropping any entry
#: is always sound — the subtree is merely re-probed.
TRANSPOSITION_AGE_PENALTY: float = 1.0

#: On-disk request-cache snapshot format version (``serve
#: --cache-snapshot``).  Gated exactly like the memory snapshot: any other
#: version, or a regime-fingerprint mismatch, raises
#: ``MemoryCompatibilityError`` at load.
REQUEST_CACHE_SNAPSHOT_VERSION: int = 1

# ----------------------------------------------------------------------
# Concurrent multi-request serving (repro.service.scheduler / asyncserver)
# ----------------------------------------------------------------------

#: Admission-control bound of the cross-request scheduler: searching
#: sessions in flight at once (cache hits and control ops never count).
#: A request arriving beyond it is answered ``ok: false, busy: true``
#: immediately instead of growing an unbounded queue.
SERVICE_MAX_INFLIGHT: int = 32

#: Fairness stride of the cross-request scheduler: deadlined sessions are
#: served earliest-deadline-first, but every ``N``-th turn goes to the
#: round-robin queue of undeadlined sessions, so a stream of deadlined
#: traffic can never starve an undeadlined request (the bench's fairness
#: floor).
SCHEDULER_FAIRNESS_STRIDE: int = 4

#: On-disk format version of the incremental snapshot WAL
#: (``serve --wal``).  Gated like the memory snapshot: any other version
#: or a regime-fingerprint mismatch raises ``MemoryCompatibilityError``
#: at boot, before a single record is replayed.
MEMORY_WAL_VERSION: int = 1

#: Appended WAL records between automatic compactions: each compaction
#: rewrites the full snapshot and truncates the log, bounding both replay
#: time after a crash and the on-disk log size.
WAL_COMPACT_INTERVAL: int = 256

#: Lane auto-tuning (interleaved slice budgets from ``lane_stats``):
#: per-lane slice budgets scale between these multiples of
#: ``PORTFOLIO_SLICE_EXPANSIONS`` by historical win/feasible rate.  Slice
#: size never changes a lane's result (differential-tested), so tuning
#: moves CPU priority only.
LANE_TUNE_MIN: float = 0.5
LANE_TUNE_MAX: float = 2.0

#: A lane is dropped from auto-tuned schedules only after this many
#: recorded runs with zero wins *and* zero feasible circuits — the
#: chronically losing lane pays slices on every request and has never
#: contributed a result.  High enough that fresh deployments (and the
#: test/bench workloads) never trip it by accident.
LANE_DROP_MIN_RUNS: int = 50

#: Wall-clock budget for draining in-flight sessions at graceful
#: shutdown (ms): sessions still running when it expires are
#: deadline-flushed (best feasible circuit, ``deadline_expired``) so the
#: server can compact its WAL and exit instead of hanging on a heavy
#: search.
SHUTDOWN_DRAIN_MS: float = 2000.0

#: In-place transposition improvements tracked for delta snapshots (WAL
#: records) before the log overflows and the next delta ships the whole
#: table instead (same rule as eviction sweeps).
TRANSPOSITION_IMPROVE_LOG_CAP: int = 1 << 16

#: Trace records kept in the in-process ring buffer (queryable via
#: ``op: trace``).  At slice granularity a heavy request emits a few
#: hundred records, so 4096 holds the recent history of a busy server
#: without unbounded growth; ``serve --trace FILE`` streams everything.
OBS_TRACE_RING_CAP: int = 4096

#: Default number of trace records returned by ``op: trace`` when the
#: request does not pass an explicit ``limit``.
OBS_TRACE_DEFAULT_LIMIT: int = 256

#: Upper edges (seconds) for the service latency histograms (queue wait
#: and end-to-end).  Spans sub-millisecond scheduler turns through the
#: multi-second heavy searches; the overflow bucket catches the rest.
OBS_LATENCY_BUCKETS: tuple = (
    0.001, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0)

#: Upper edges (expansions) for the per-turn expansion-slice histogram.
#: Centered on PORTFOLIO_SLICE_EXPANSIONS times the lane count, with
#: room below for settling lanes and above for auto-tuned budgets.
OBS_TURN_EXPANSION_BUCKETS: tuple = (
    64, 128, 256, 512, 1024, 2048, 4096, 8192)

#: Upper edges (seconds) for the deadline-slack-at-settle histogram.
#: Negative slack means the request settled past its deadline (flush);
#: positive means it finished with time to spare.
OBS_DEADLINE_SLACK_BUCKETS: tuple = (
    -1.0, -0.1, -0.01, 0.0, 0.01, 0.1, 0.5, 1.0, 5.0)

# ----------------------------------------------------------------------
# Multi-process worker pool (repro.service.pool)
# ----------------------------------------------------------------------

#: Settled requests between cross-merge rounds in the worker pool: after
#: this many settles the router pulls each worker's learned memory delta
#: (WAL-record shaped) and fans it out to every *other* worker.  Deltas
#: are improve-only and idempotent, so the interval trades only learning
#: propagation latency against IPC volume — never correctness.
POOL_CROSS_MERGE_INTERVAL: int = 16

#: Signature-affinity stickiness slack of the pool router: a request
#: whose entanglement signature was last served by worker ``w`` stays on
#: ``w`` (its flywheel caches are hot) as long as ``w``'s in-flight count
#: is within this many requests of the least-loaded worker; beyond the
#: slack, load balance wins over affinity.
POOL_STICKY_SLACK: int = 2

# ----------------------------------------------------------------------
# Pattern database + near-hit serving (repro.core.pdb / service)
# ----------------------------------------------------------------------

#: Mutual-information floor above which a qubit pair counts as entangled
#: in :func:`repro.states.analysis.entangled_pairs_mi`.  Entanglement
#: signatures (``repro.core.pdb``) key on the MI-cluster shape, so this
#: one constant pins signature identity everywhere a signature is built,
#: compared, or persisted.
MI_PAIR_THRESHOLD: float = 1e-9

#: Canonical-cut cap of the entanglement signature's Schmidt-rank
#: profile: registers up to ``_EXACT_CUT_QUBITS`` enumerate every cut,
#: wider ones take this many deterministic cuts (contiguous + seeded
#: random, the same family the Schmidt-cut heuristic samples).  Signature
#: identity depends on this being one shared constant.
PDB_SIGNATURE_CUT_CAP: int = 16

#: Entry cap of the pattern database (distinct entanglement signatures).
#: Signatures are tiny abstractions of states, so the PDB saturates far
#: below this on any real workload; the cap only bounds adversarial
#: traffic.  Evicting is always sound (a missing signature falls back to
#: the structural bound computed on demand).
PDB_CAP: int = 1 << 16

#: Newly touched PDB signatures tracked for delta snapshots (WAL
#: records) before the log overflows and the next delta ships the whole
#: database instead (same rule as the transposition improvement logs).
PDB_IMPROVE_LOG_CAP: int = 1 << 14

#: Entry cap of the request cache's signature index (cached results per
#: signature bucket kept as near-hit adaptation donors).
SIGNATURE_INDEX_CAP: int = 1 << 12

#: Default wall-clock budget (ms) of the near-hit suffix re-search: the
#: deadline-bounded anytime portfolio run from the closest intermediate
#: of an adapted donor circuit.  Small by design — a near hit is only
#: worth serving when it undercuts full synthesis by orders of
#: magnitude; requests may override via their own ``deadline_ms``.
NEARHIT_SUFFIX_DEADLINE_MS: float = 250.0

#: Donor circuits the near-hit path will attempt to adapt per request
#: before falling back to a full search — each try costs a move replay
#: plus a (deadline-bounded) suffix search, so the list stays short.
NEARHIT_DONOR_CANDIDATES: int = 4

#: CNOT cost of a multi-controlled Ry with ``k`` controls (Table I):
#: 0 controls -> plain Ry (free), 1 control -> 2, k controls -> 2**k.


def mcry_cnot_cost(num_controls: int) -> int:
    """CNOT cost of an ``MCRy`` gate with ``num_controls`` controls.

    Matches Table I of the paper (and the motivating example, where boxes
    with 1 and 2 controls cost ``2**1 + 2**2 = 6`` CNOTs), realized exactly
    by the Gray-code multiplexor in :mod:`repro.circuits.decompose`.
    """
    if num_controls < 0:
        raise ValueError("negative control count")
    if num_controls == 0:
        return 0
    return 1 << num_controls


def quantize(amp: float) -> float:
    """Round an amplitude to the library-wide precision.

    ``-0.0`` is normalized to ``0.0`` so that hashing is stable.
    """
    q = round(amp, AMP_DECIMALS)
    if q == 0.0:
        return 0.0
    return q


def amps_close(a: float, b: float, atol: float = ATOL) -> bool:
    """True when two amplitudes agree within ``atol``."""
    return math.isclose(a, b, rel_tol=0.0, abs_tol=atol)

"""E2 — Table I: CNOT costs of the gate library.

Regenerates the cost table by *measuring* each cost (counting CX gates in
the lowered circuit, verified equal to the model), and benchmarks the
Gray-code multiplexor decomposition that realizes the MCRy cost.
"""

from __future__ import annotations

from conftest import emit

from repro.circuits.circuit import QCircuit
from repro.circuits.gates import CRYGate, CXGate, MCRYGate, RYGate
from repro.utils.tables import format_table


def _lowered_cx_count(gate) -> int:
    qc = QCircuit(max(gate.qubits()) + 1)
    qc.append(gate)
    return sum(1 for g in qc.decompose() if g.name == "cx")


def test_table1_gate_costs(benchmark, results_emitter):
    gates = {
        "Ry": RYGate(target=0, theta=0.5),
        "CNOT": CXGate.make(0, 1),
        "CRy": CRYGate.make(0, 1, 0.5),
        "MCRy(k=2)": MCRYGate(target=2, controls=((0, 1), (1, 1)), theta=0.5),
        "MCRy(k=3)": MCRYGate(target=3,
                              controls=((0, 1), (1, 1), (2, 0)), theta=0.5),
        "MCRy(k=4)": MCRYGate(
            target=4, controls=((0, 1), (1, 1), (2, 0), (3, 1)), theta=0.5),
    }
    rows = []
    for name, gate in gates.items():
        measured = _lowered_cx_count(gate)
        assert measured == gate.cnot_cost()
        rows.append([name, gate.cnot_cost(), measured])
    results_emitter("table1_gate_costs", format_table(
        ["operator", "model cost", "measured CX after lowering"], rows,
        title="Table I - CNOT costs of the gate library"))

    big = MCRYGate(target=8, controls=tuple((i, 1) for i in range(8)),
                   theta=0.5)
    benchmark(lambda: _lowered_cx_count(big))

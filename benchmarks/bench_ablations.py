"""Ablation benchmarks for the design choices DESIGN.md calls out.

Not a paper table, but the paper's Sec. V motivates each mechanism:

* A1 — the admissible heuristic (A* vs Dijkstra node counts);
* A2 — canonicalization level (NONE / U2 / PU2 node counts, Sec. V-B);
* A3 — improved multi-pair reduction vs plain GH steps (workflow sparse
  path, the source of the Table-V sparse gains);
* A4 — exact core synthesis on/off inside the workflow.
"""

from __future__ import annotations

import numpy as np
from conftest import emit, samples

from repro.core.astar import SearchConfig, astar_search
from repro.core.canonical import CanonLevel
from repro.core.heuristic import zero_heuristic
from repro.qsp.config import QSPConfig
from repro.qsp.workflow import prepare_state
from repro.states.families import dicke_state
from repro.states.random_states import benchmark_suite
from repro.utils.tables import format_table


def test_a1_heuristic_ablation(benchmark, results_emitter):
    state = dicke_state(4, 1)
    cfg = SearchConfig(max_nodes=500_000, time_limit=120)
    with_h = astar_search(state, cfg)
    without_h = astar_search(state, cfg, heuristic=zero_heuristic)
    assert with_h.cnot_cost == without_h.cnot_cost
    rows = [["A* (entanglement h)", with_h.cnot_cost,
             with_h.stats.nodes_expanded],
            ["Dijkstra (h = 0)", without_h.cnot_cost,
             without_h.stats.nodes_expanded]]
    results_emitter("ablation_heuristic", format_table(
        ["search", "CNOTs", "nodes expanded"], rows,
        title="A1 - admissible heuristic ablation on |D^1_4>"))
    benchmark.pedantic(lambda: astar_search(state, cfg).cnot_cost,
                       rounds=1, iterations=1)


def test_a2_canonicalization_ablation(benchmark, results_emitter):
    state = dicke_state(4, 1)
    rows = []
    for level in (CanonLevel.NONE, CanonLevel.U2, CanonLevel.PU2):
        cfg = SearchConfig(max_nodes=500_000, time_limit=180,
                           canon_level=level)
        res = astar_search(state, cfg)
        rows.append([level.name, res.cnot_cost, res.stats.nodes_expanded,
                     f"{res.stats.elapsed_seconds:.2f}"])
    assert len({r[1] for r in rows}) == 1, "cost must be level-invariant"
    assert rows[2][2] <= rows[0][2], "PU2 must prune at least as much"
    results_emitter("ablation_canonicalization", format_table(
        ["equivalence", "CNOTs", "nodes expanded", "time (s)"], rows,
        title="A2 - state compression ablation on |D^1_4> (Table III's "
              "mechanism in action)"))
    benchmark.pedantic(
        lambda: astar_search(state, SearchConfig(max_nodes=500_000,
                                                 time_limit=60)).cnot_cost,
        rounds=1, iterations=1)


def test_a3_reduction_ablation(benchmark, results_emitter):
    rows = []
    for n in (8, 10, 12):
        states = benchmark_suite(n, sparse=True, count=samples())
        improved = float(np.mean(
            [prepare_state(s).cnot_cost for s in states]))
        plain = float(np.mean(
            [prepare_state(s, QSPConfig(improved_reduction=False)).cnot_cost
             for s in states]))
        assert improved <= plain + 1e-9
        rows.append([n, round(plain, 1), round(improved, 1)])
    results_emitter("ablation_reduction", format_table(
        ["n", "GH steps only", "multi-pair merges"], rows,
        title="A3 - improved sparse reduction ablation (avg CNOTs)"))
    benchmark.pedantic(
        lambda: prepare_state(benchmark_suite(10, True, 1)[0]).cnot_cost,
        rounds=1, iterations=1)


def test_a4_exact_core_ablation(benchmark, results_emitter):
    rows = []
    for n in (6, 8, 10):
        states = benchmark_suite(n, sparse=True, count=samples())
        with_exact = float(np.mean(
            [prepare_state(s).cnot_cost for s in states]))
        without = float(np.mean(
            [prepare_state(s, QSPConfig(use_exact=False)).cnot_cost
             for s in states]))
        rows.append([n, round(without, 1), round(with_exact, 1)])
    results_emitter("ablation_exact_core", format_table(
        ["n", "reduction only", "reduction + exact core"], rows,
        title="A4 - exact-core ablation on sparse states (avg CNOTs)"))
    benchmark.pedantic(
        lambda: prepare_state(benchmark_suite(8, True, 1)[0]).cnot_cost,
        rounds=1, iterations=1)

"""E1 — Figures 1-3: the motivating example of Section III.

The target is ``(|000> + |011> + |101> + |110>)/2``.  The paper reports:
qubit reduction 6 CNOTs (Fig. 1), cardinality reduction 7 CNOTs (Fig. 2),
exact synthesis 2 CNOTs (Fig. 3).
"""

from __future__ import annotations

from conftest import emit

from repro.baselines.mflow import mflow_synthesize
from repro.baselines.nflow import nflow_synthesize
from repro.core.exact import synthesize_exact
from repro.sim.verify import assert_prepares
from repro.states.qstate import QState
from repro.utils.tables import format_table

PSI = QState.uniform(3, [0b000, 0b011, 0b101, 0b110])
PAPER = {"qubit reduction (Fig. 1)": 6,
         "cardinality reduction (Fig. 2)": 7,
         "exact synthesis (Fig. 3)": 2}


def test_motivating_example(benchmark, results_emitter):
    nflow = nflow_synthesize(PSI)
    mflow = mflow_synthesize(PSI)
    exact = synthesize_exact(PSI)
    for circuit in (nflow, mflow, exact.circuit):
        assert_prepares(circuit, PSI)

    rows = [
        ["qubit reduction (Fig. 1)", PAPER["qubit reduction (Fig. 1)"],
         nflow.cnot_cost()],
        ["cardinality reduction (Fig. 2)",
         PAPER["cardinality reduction (Fig. 2)"], mflow.cnot_cost()],
        ["exact synthesis (Fig. 3)", PAPER["exact synthesis (Fig. 3)"],
         exact.cnot_cost],
    ]
    text = format_table(["method", "paper CNOTs", "ours CNOTs"], rows,
                        title="Motivating example (Sec. III), "
                              "|psi> = (|000>+|011>+|101>+|110>)/2")
    text += "\n\nexact 2-CNOT circuit (Fig. 3):\n" + exact.circuit.draw()
    results_emitter("motivating_example", text)

    assert exact.cnot_cost == 2
    assert exact.optimal
    benchmark(lambda: synthesize_exact(PSI).cnot_cost)

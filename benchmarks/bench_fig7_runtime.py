"""E8/E9 — Figure 7: CPU-time scaling on dense and sparse states.

Measures wall-clock synthesis time of n-flow, m-flow, and our workflow as
``n`` grows, separately for dense (``m = 2^(n-1)``) and sparse (``m = n``)
states.  Absolute times differ from the authors' machine; the figure's
claims to check are the *shape*: all methods scale exponentially on dense
states, our flow stays within the baselines' envelope, and sparse states
stay sub-second far beyond the dense limit.
"""

from __future__ import annotations

import time

import numpy as np
from conftest import emit, full_scale

from repro.baselines.mflow import mflow_cnot_count
from repro.baselines.nflow import nflow_synthesize
from repro.core.astar import SearchConfig
from repro.core.beam import BeamConfig
from repro.core.exact import ExactConfig
from repro.qsp.config import QSPConfig
from repro.qsp.workflow import prepare_state
from repro.states.random_states import random_dense_state, random_sparse_state
from repro.utils.tables import format_table


def _bench_config() -> QSPConfig:
    return QSPConfig(
        exact=ExactConfig(
            search=SearchConfig(max_nodes=25_000, time_limit=10.0),
            beam=BeamConfig(width=96, time_limit=6.0),
            beam_fallback=True, verify=False),
        verify_max_qubits=0)


def _timed(fn) -> float:
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


def test_fig7a_dense_runtime(benchmark, results_emitter):
    max_n = 14 if full_scale() else 10
    config = _bench_config()
    rows = []
    for n in range(4, max_n + 1):
        state = random_dense_state(n, seed=n)
        t_n = _timed(lambda: nflow_synthesize(state))
        t_m = _timed(lambda: mflow_cnot_count(state)) if n <= 8 else None
        t_ours = _timed(lambda: prepare_state(state, config))
        rows.append([n, f"{t_n:.3f}",
                     f"{t_m:.3f}" if t_m is not None else "skipped",
                     f"{t_ours:.3f}"])
    results_emitter("fig7a_dense_runtime", format_table(
        ["n", "n-flow (s)", "m-flow (s)", "ours (s)"], rows,
        title="Figure 7a - CPU time, dense states (m = 2^(n-1))"))
    benchmark.pedantic(
        lambda: prepare_state(random_dense_state(6, seed=0), config),
        rounds=1, iterations=1)


def test_fig7b_sparse_runtime(benchmark, results_emitter):
    max_n = 20 if full_scale() else 14
    config = _bench_config()
    rows = []
    sparse_times = []
    for n in range(4, max_n + 1, 2):
        state = random_sparse_state(n, seed=n)
        t_n = _timed(lambda: nflow_synthesize(state)) if n <= 14 else None
        t_m = _timed(lambda: mflow_cnot_count(state))
        t_ours = _timed(lambda: prepare_state(state, config))
        sparse_times.append(t_ours)
        rows.append([n,
                     f"{t_n:.3f}" if t_n is not None else "skipped",
                     f"{t_m:.3f}", f"{t_ours:.3f}"])
    results_emitter("fig7b_sparse_runtime", format_table(
        ["n", "n-flow (s)", "m-flow (s)", "ours (s)"], rows,
        title="Figure 7b - CPU time, sparse states (m = n)"))
    benchmark.pedantic(
        lambda: prepare_state(random_sparse_state(10, seed=1), config),
        rounds=1, iterations=1)

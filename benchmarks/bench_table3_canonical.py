"""E3 — Table III: number of canonical 4-qubit uniform states.

Counts equivalence classes of all C(16, m) uniform 4-qubit states under
U(2) and P U(2).  The raw column is exact combinatorics; the compressed
columns depend on the canonicalization rules (ours is sound but heuristic,
like the paper's), so EXPERIMENTS.md compares both number sets — the
headline is the magnitude of the compression.
"""

from __future__ import annotations

from conftest import emit, full_scale

from repro.core.enumeration import count_canonical_uniform_states
from repro.utils.tables import format_table

PAPER = {
    1: (16, 1, 1), 2: (120, 11, 3), 3: (560, 35, 6), 4: (1820, 118, 16),
    5: (4368, 273, 27), 6: (8008, 525, 47), 7: (11440, 715, 56),
    8: (12870, 828, 68),
}


def test_table3_canonical_counts(benchmark, results_emitter):
    max_m = 8 if full_scale() else 5
    rows = []
    for m in range(1, max_m + 1):
        row = count_canonical_uniform_states(4, m)
        paper_raw, paper_u2, paper_pu2 = PAPER[m]
        assert row.raw == paper_raw
        assert row.pu2 <= row.u2 <= row.raw
        rows.append([m, row.raw, paper_u2, row.u2, paper_pu2, row.pu2])
    results_emitter("table3_canonical", format_table(
        ["m", "|V_G|", "|V_G/U(2)| paper", "|V_G/U(2)| ours",
         "|V_G/PU(2)| paper", "|V_G/PU(2)| ours"], rows,
        title="Table III - canonical 4-qubit uniform states"
              + ("" if full_scale() else "  (m<=5; REPRO_BENCH_FULL=1 for m<=8)")))

    benchmark.pedantic(
        lambda: count_canonical_uniform_states(4, 3), rounds=1, iterations=1)

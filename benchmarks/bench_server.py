"""Concurrent-serving benchmark — one client vs an 8-client burst.

The single-request service finishes one synthesis before starting the
next, so a burst of callers forms a FIFO line: a 2-CNOT GHZ request
stuck behind a heavy Dicke request pays the heavy request's full search
time before its own microseconds of work begin.  The cross-request
scheduler (PR 7) admits the whole burst at once and fair-shares
expansion slices across every in-flight request, so light requests
overtake heavy ones and come back in roughly their own search time.

Measured, on the same mixed light/heavy traffic and budgets:

* **Serial baseline** — every request through ``handle()`` in admission
  order (the FIFO line): per-request latency, p50/p95, throughput.
* **Concurrent burst** — every request through ``submit()`` up front,
  then the scheduler runs turns until the backlog settles: per-request
  latency (admission to reply), p50/p95, throughput, peak in-flight.
* **Cost identity** — every concurrent cost and optimality flag is
  asserted equal to the serial run's (the acceptance property: the
  scheduler moves work around, it never changes results).
* **Fairness** — the lightest request is admitted *behind* the heaviest
  one and must still settle first (no FIFO line), with its measured
  latency gain over the FIFO wait it would have paid reported per row.
* **Observability overhead** — the same burst once more with the PR-8
  observability layer enabled (metrics registry + tracer): costs again
  asserted identical, end-to-end and queue-wait p50/p95/p99 read back
  from the service's own latency histograms
  (:meth:`repro.obs.metrics.Histogram.quantile`), and the instrumented
  vs disabled wall-clock ratio gated under a lenient threshold.

Usage::

    PYTHONPATH=src python benchmarks/bench_server.py            # full
    PYTHONPATH=src python benchmarks/bench_server.py --smoke    # CI gate

Results land in ``BENCH_server.json`` at the repo root (the committed
snapshot) and ``benchmarks/results/bench_server.txt``; both carry the
shared schema-version + regime-fingerprint stamp.
"""

from __future__ import annotations

import json
import math
import pathlib
import sys
import time

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.core.astar import SearchConfig                      # noqa: E402
from repro.obs import ObsConfig                                # noqa: E402
from repro.service.server import (                             # noqa: E402
    ServiceConfig,
    SynthesisService,
)
from repro.utils.fingerprint import stamp_benchmark            # noqa: E402
from repro.utils.tables import format_table                    # noqa: E402

#: Mixed traffic, heaviest first: under FIFO every request behind the
#: heavy head pays its full search time; under the scheduler they
#: overtake it.  All rows are solvable to proven optimality within the
#: shared budget, so cost identity is meaningful end to end.
FULL_TRAFFIC = [
    ("d52", {"dicke": [5, 2]}),
    ("d42", {"dicke": [4, 2]}),
    ("w5", {"w": 5}),
    ("ghz5", {"ghz": 5}),
    ("w4", {"w": 4}),
    ("ghz4", {"ghz": 4}),
    ("w3", {"w": 3}),
    ("ghz3", {"ghz": 3}),
]
SMOKE_TRAFFIC = [
    ("d52", {"dicke": [5, 2]}),
    ("ghz4", {"ghz": 4}),
    ("w4", {"w": 4}),
    ("ghz3", {"ghz": 3}),
]

#: The overtaking pair the fairness gate watches: the heavy head of the
#: burst and the light tail request admitted last.
HEAVY_ID = "d52"
LIGHT_ID = "ghz3"

_MAX_NODES = 20_000
_TIME_LIMIT = 900.0

#: The light tail request must come back at least this much faster than
#: the FIFO wait it would have paid (sum of the serial latencies of
#: everything admitted before it, plus its own).  The measured gains sit
#: far above this floor (the FIFO wait is dominated by the heavy head's
#: full search); the gate catches a scheduler that silently stopped
#: fair-sharing and went back to a line.
FAIRNESS_GAIN_FLOOR = 1.5

#: Instrumented-vs-disabled wall-clock ceiling for the same burst.  The
#: hooks fire at turn/settle granularity (hundreds of expansions per
#: call), so the true overhead is a few percent; the lenient ceiling
#: absorbs CI timer noise while still catching instrumentation that
#: leaked into a hot loop.
OBS_OVERHEAD_MAX = 1.5


def _service(instrumented: bool = False) -> SynthesisService:
    # no request cache (every request must really search, or the serial
    # baseline would be a row of cache hits) and no persistence — this
    # benchmark isolates the scheduling, not the disk
    return SynthesisService(ServiceConfig(
        search=SearchConfig(max_nodes=_MAX_NODES, time_limit=_TIME_LIMIT),
        portfolio_mode="interleaved", use_cache=False,
        obs=ObsConfig.on() if instrumented else None))


def _request(rid: str, body: dict) -> dict:
    return dict(body, id=rid, op="exact")


def _percentile(latencies: list[float], q: float) -> float:
    ordered = sorted(latencies)
    idx = min(len(ordered) - 1, max(0, math.ceil(q * len(ordered)) - 1))
    return ordered[idx]


def _latency_stats(latencies: dict[str, float]) -> dict:
    values = list(latencies.values())
    return {
        "p50_seconds": round(_percentile(values, 0.50), 4),
        "p95_seconds": round(_percentile(values, 0.95), 4),
        "max_seconds": round(max(values), 4),
    }


def _run_serial(traffic) -> dict:
    """The FIFO baseline: one request at a time, in admission order."""
    service = _service()
    latencies: dict[str, float] = {}
    responses: dict[str, dict] = {}
    start = time.perf_counter()
    for rid, body in traffic:
        t0 = time.perf_counter()
        response = service.handle(_request(rid, body))
        latencies[rid] = time.perf_counter() - t0
        assert response["ok"], f"serial {rid} failed: {response}"
        responses[rid] = response
    total = time.perf_counter() - start
    return {"latencies": latencies, "responses": responses,
            "total_seconds": total}


def _histogram_quantiles(histogram) -> dict:
    """p50/p95/p99 interpolated from a service latency histogram."""
    return {f"p{tag}_seconds": round(histogram.quantile(q), 4)
            for tag, q in (("50", 0.50), ("95", 0.95), ("99", 0.99))}


def _run_concurrent(traffic, instrumented: bool = False) -> dict:
    """The burst: everything admitted at t0, scheduler runs the backlog."""
    service = _service(instrumented=instrumented)
    latencies: dict[str, float] = {}
    responses: dict[str, dict] = {}
    order: list[str] = []
    start = time.perf_counter()

    def reply_for(rid):
        def reply(response: dict) -> None:
            latencies[rid] = time.perf_counter() - start
            responses[rid] = response
            order.append(rid)
        return reply

    for rid, body in traffic:
        registered = service.submit(_request(rid, body), reply_for(rid))
        assert registered, f"{rid} was not admitted"
    while service.scheduler.pending:
        service.scheduler.run_turn()
    total = time.perf_counter() - start
    for rid, response in responses.items():
        assert response["ok"], f"concurrent {rid} failed: {response}"
    result = {"latencies": latencies, "responses": responses,
              "order": order, "total_seconds": total,
              "scheduler": service.scheduler.snapshot()}
    if instrumented:
        # latency distributions as the service itself measured them —
        # the histograms behind ``op: stats`` / ``serve --metrics``
        result["histogram_quantiles"] = {
            "e2e": _histogram_quantiles(service.obs.e2e),
            "queue_wait": _histogram_quantiles(service.obs.queue_wait),
        }
    return result


def run_benchmark(traffic) -> dict:
    serial = _run_serial(traffic)
    concurrent = _run_concurrent(traffic)
    instrumented = _run_concurrent(traffic, instrumented=True)

    # acceptance property: neither the scheduler nor the observability
    # layer ever changes a result
    for rid, _ in traffic:
        s, c = serial["responses"][rid], concurrent["responses"][rid]
        assert c["cnot_cost"] == s["cnot_cost"], \
            f"{rid}: concurrent cost {c['cnot_cost']} != " \
            f"serial {s['cnot_cost']}"
        assert c["optimal"] == s["optimal"], f"{rid}: optimality differs"
        o = instrumented["responses"][rid]
        assert o["cnot_cost"] == s["cnot_cost"], \
            f"{rid}: instrumented cost {o['cnot_cost']} != " \
            f"serial {s['cnot_cost']}"
        assert o["optimal"] == s["optimal"], \
            f"{rid}: instrumented optimality differs"

    scheduler = concurrent["scheduler"]
    assert scheduler["peak_inflight"] > 1, \
        "burst never had more than one request in flight"

    # fairness: the light tail request overtakes the heavy head instead
    # of queueing behind it
    order = concurrent["order"]
    assert order.index(LIGHT_ID) < order.index(HEAVY_ID), \
        f"{LIGHT_ID} settled after {HEAVY_ID} — the burst degenerated " \
        f"into a FIFO line"
    ids = [rid for rid, _ in traffic]
    fifo_wait = sum(serial["latencies"][r]
                    for r in ids[:ids.index(LIGHT_ID) + 1])
    fairness_gain = fifo_wait / max(concurrent["latencies"][LIGHT_ID],
                                    1e-9)

    rows = []
    for position, (rid, _) in enumerate(traffic):
        rows.append({
            "id": rid,
            "admission_position": position,
            "cnot_cost": serial["responses"][rid]["cnot_cost"],
            "optimal": serial["responses"][rid]["optimal"],
            "serial_seconds": round(serial["latencies"][rid], 4),
            "concurrent_seconds": round(concurrent["latencies"][rid], 4),
            "completion_position": order.index(rid),
        })
    report = {
        "metric": "same mixed burst through the serial handle() line vs "
                  "the cross-request scheduler; costs asserted "
                  "identical; light tail request must overtake the "
                  "heavy head (fairness)",
        "clients": len(traffic),
        "rows": rows,
        "serial": {
            "total_seconds": round(serial["total_seconds"], 4),
            "throughput_rps": round(
                len(traffic) / serial["total_seconds"], 3),
            **_latency_stats(serial["latencies"]),
        },
        "concurrent": {
            "total_seconds": round(concurrent["total_seconds"], 4),
            "throughput_rps": round(
                len(traffic) / concurrent["total_seconds"], 3),
            **_latency_stats(concurrent["latencies"]),
            "completion_order": order,
            "scheduler": scheduler,
        },
        "fairness": {
            "light_id": LIGHT_ID,
            "heavy_id": HEAVY_ID,
            "fifo_wait_seconds": round(fifo_wait, 4),
            "concurrent_latency_seconds": round(
                concurrent["latencies"][LIGHT_ID], 4),
            "gain": round(fairness_gain, 3),
        },
        "observability": {
            "disabled_total_seconds": round(
                concurrent["total_seconds"], 4),
            "instrumented_total_seconds": round(
                instrumented["total_seconds"], 4),
            "overhead_ratio": round(instrumented["total_seconds"]
                                    / concurrent["total_seconds"], 3),
            # the service's own histograms (``qsp_request_seconds`` /
            # ``qsp_queue_wait_seconds``), bucket-interpolated
            "e2e": instrumented["histogram_quantiles"]["e2e"],
            "queue_wait": instrumented["histogram_quantiles"]
            ["queue_wait"],
        },
    }
    return stamp_benchmark(
        report, SearchConfig(max_nodes=_MAX_NODES, time_limit=_TIME_LIMIT))


def render_table(report: dict) -> str:
    rows = []
    for row in report["rows"]:
        rows.append([row["id"], row["cnot_cost"],
                     row["admission_position"],
                     row["completion_position"],
                     f"{row['serial_seconds']:.3f}",
                     f"{row['concurrent_seconds']:.3f}"])
    blocks = [format_table(
        ["request", "cnot", "admitted", "completed", "serial s",
         "burst s"],
        rows,
        title=f"{report['clients']}-client burst: serial FIFO line vs "
              f"cross-request scheduler (identical costs asserted; "
              f"burst latency = admission to reply)")]
    serial, concurrent = report["serial"], report["concurrent"]
    blocks.append(
        f"serial: {serial['total_seconds']:.3f}s total, "
        f"p50 {serial['p50_seconds']:.3f}s / "
        f"p95 {serial['p95_seconds']:.3f}s, "
        f"{serial['throughput_rps']:.2f} req/s\n"
        f"burst:  {concurrent['total_seconds']:.3f}s total, "
        f"p50 {concurrent['p50_seconds']:.3f}s / "
        f"p95 {concurrent['p95_seconds']:.3f}s, "
        f"{concurrent['throughput_rps']:.2f} req/s, "
        f"peak in-flight "
        f"{concurrent['scheduler']['peak_inflight']}")
    fairness = report["fairness"]
    blocks.append(
        f"fairness: {fairness['light_id']} (admitted last) settled in "
        f"{fairness['concurrent_latency_seconds']:.3f}s instead of the "
        f"{fairness['fifo_wait_seconds']:.3f}s FIFO wait behind "
        f"{fairness['heavy_id']} — {fairness['gain']:.1f}x gain")
    obs = report["observability"]
    blocks.append(
        f"observability: instrumented burst "
        f"{obs['instrumented_total_seconds']:.3f}s vs disabled "
        f"{obs['disabled_total_seconds']:.3f}s "
        f"({obs['overhead_ratio']:.2f}x); service-measured e2e "
        f"p50 {obs['e2e']['p50_seconds']:.3f}s / "
        f"p95 {obs['e2e']['p95_seconds']:.3f}s / "
        f"p99 {obs['e2e']['p99_seconds']:.3f}s, queue wait "
        f"p50 {obs['queue_wait']['p50_seconds']:.3f}s / "
        f"p99 {obs['queue_wait']['p99_seconds']:.3f}s")
    return "\n\n".join(blocks)


def main(argv: list[str]) -> int:
    smoke = "--smoke" in argv
    traffic = SMOKE_TRAFFIC if smoke else FULL_TRAFFIC
    report = run_benchmark(traffic)
    report["mode"] = "smoke" if smoke else "full"
    report["thresholds"] = {"fairness_gain": FAIRNESS_GAIN_FLOOR,
                            "obs_overhead": OBS_OVERHEAD_MAX}
    text = render_table(report)
    print(text)

    results_dir = REPO_ROOT / "benchmarks" / "results"
    results_dir.mkdir(exist_ok=True)
    suffix = "_smoke" if smoke else ""
    (results_dir / f"bench_server{suffix}.txt").write_text(
        text + "\n", encoding="utf-8")
    # only the full run may refresh the committed headline snapshot
    out = (REPO_ROOT / "BENCH_server.json" if not smoke
           else results_dir / "bench_server_smoke.json")
    out.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
    print(f"\nwrote {out}")

    failed = False
    gain = report["fairness"]["gain"]
    if gain < FAIRNESS_GAIN_FLOOR:
        print(f"FAIL: fairness gain {gain:.2f}x < required "
              f"{FAIRNESS_GAIN_FLOOR:.1f}x", file=sys.stderr)
        failed = True
    overhead = report["observability"]["overhead_ratio"]
    if overhead > OBS_OVERHEAD_MAX:
        print(f"FAIL: observability overhead {overhead:.2f}x > allowed "
              f"{OBS_OVERHEAD_MAX:.1f}x", file=sys.stderr)
        failed = True
    if failed:
        return 1
    print(f"OK: identical costs across {report['clients']} concurrent "
          f"requests, peak in-flight "
          f"{report['concurrent']['scheduler']['peak_inflight']}, "
          f"fairness gain {gain:.2f}x >= {FAIRNESS_GAIN_FLOOR:.1f}x, "
          f"obs overhead {overhead:.2f}x <= {OBS_OVERHEAD_MAX:.1f}x")
    return 0


def test_server_benchmark_smoke(results_emitter):
    """Pytest entry: smoke burst + the regression gates (CI satellite)."""
    report = run_benchmark(SMOKE_TRAFFIC)
    results_emitter("bench_server_smoke", render_table(report))
    assert report["fairness"]["gain"] >= FAIRNESS_GAIN_FLOOR
    assert report["observability"]["overhead_ratio"] <= OBS_OVERHEAD_MAX


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))

"""EX2 — topology tax: routed CNOT cost on restricted coupling maps.

The paper's tables assume all-to-all coupling; this bench reports what the
synthesized circuits cost after SWAP routing on line / ring / grid devices
and how much a smarter placement recovers.
"""

from __future__ import annotations

from conftest import emit

from repro.experiments.topology_tax import (
    topology_tax_experiment,
    topology_tax_rows,
)
from repro.states.families import dicke_state, ghz_state, w_state
from repro.states.random_states import random_sparse_state


def _states():
    return [
        ("ghz5", ghz_state(5)),
        ("w5", w_state(5)),
        ("dicke(4,2)", dicke_state(4, 2)),
        ("sparse(5,5)", random_sparse_state(5, seed=7)),
    ]


def test_topology_tax(benchmark, results_emitter):
    states = _states()
    rows = topology_tax_rows(states, placements=("trivial", "greedy"))
    # every routed circuit verified; full topology has zero overhead
    assert all(r.verified for r in rows)
    assert all(r.overhead_percent == 0.0
               for r in rows if r.topology == "full")
    # restricted topologies never beat all-to-all
    for r in rows:
        assert r.physical_cnots >= r.logical_cnots

    table = topology_tax_experiment(states, placements=("trivial", "greedy"))
    results_emitter("ex2_topology_tax", table.to_text())

    benchmark.pedantic(
        lambda: topology_tax_rows([("ghz5", ghz_state(5))],
                                  placements=("greedy",)),
        rounds=1, iterations=1)

"""EX4 — post-optimization ablation: can peephole cleanup close the gap?

The paper attributes the baselines' CNOT overhead to *structural
constraints* of their divide-and-conquer templates (Sec. III), not to
local redundancy.  This bench tests that claim directly: it runs the full
peephole pipeline (inverse-pair cancellation, rotation fusion,
commutation-aware cancellation, PMH CNOT-block resynthesis) on the
baseline circuits and measures how much of the exact-synthesis advantage
survives.  If the paper is right, the optimized baselines stay well above
the exact optimum — which is what we observe.
"""

from __future__ import annotations

from conftest import emit

from repro.baselines.mflow import mflow_synthesize
from repro.baselines.nflow import nflow_synthesize
from repro.opt.pipeline import postoptimize
from repro.qsp.workflow import prepare_state
from repro.sim.verify import prepares_state
from repro.states.families import dicke_state
from repro.states.random_states import random_uniform_state
from repro.utils.tables import format_table


def _instances():
    return [
        ("dicke(4,2)", dicke_state(4, 2)),
        ("dicke(5,2)", dicke_state(5, 2)),
        ("rand(4,8)", random_uniform_state(4, 8, seed=9)),
        ("rand(5,5)", random_uniform_state(5, 5, seed=11)),
    ]


def test_postopt_ablation(benchmark, results_emitter):
    rows = []
    for label, state in _instances():
        ours = prepare_state(state).cnot_cost
        for name, synth in (("m-flow", mflow_synthesize),
                            ("n-flow", nflow_synthesize)):
            circuit = synth(state)
            report = postoptimize(circuit)
            assert prepares_state(report.circuit, state)
            assert report.cnots_after <= report.cnots_before
            rows.append([label, name, report.cnots_before,
                         report.cnots_after,
                         f"{report.percent_saved:.0f}%", ours])
            # the structural gap survives peephole cleanup
            assert report.cnots_after >= ours, \
                f"{label}/{name}: peephole beat the workflow?"

    text = format_table(
        ["state", "baseline", "CX before", "CX after", "saved", "ours"],
        rows,
        title="EX4 - peephole pipeline on baseline circuits "
              "(gap to exact survives)")
    results_emitter("ex4_postopt", text)

    benchmark.pedantic(
        lambda: postoptimize(mflow_synthesize(dicke_state(4, 2))),
        rounds=1, iterations=1)

"""Observability end-to-end smoke: serve → scrape → trace round-trip.

Boots a real ``repro-qsp serve --listen`` subprocess with the PR-8
observability surface fully armed (``--metrics`` Prometheus exposition +
``--trace`` JSONL streaming), drives a small request mix over the wire,
and asserts the whole loop closes:

* ``exact`` requests answer with correct optimal costs (and a repeat hits
  the request cache);
* ``op: stats`` carries the ``metrics`` snapshot section;
* ``op: trace`` returns ring records over the wire;
* an HTTP GET against ``--metrics`` returns the Prometheus text
  exposition with the expected request counters;
* after ``op: shutdown`` the ``--trace`` file parses as JSONL and every
  request span reconstructs balanced
  (:func:`repro.obs.trace.reconstruct_timelines`).

Usage::

    PYTHONPATH=src python benchmarks/obs_smoke.py

Runs in seconds; this is the CI ``obs-smoke`` gate, not a timing
benchmark — results land in ``benchmarks/results/obs_smoke.json``.
"""

from __future__ import annotations

import json
import os
import pathlib
import socket
import subprocess
import sys
import time
import urllib.request

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.obs.trace import read_jsonl, reconstruct_timelines  # noqa: E402

#: (rid, request body) — w4 twice so the repeat exercises the cache path.
TRAFFIC = [
    ("w4", {"op": "exact", "w": 4}),
    ("ghz4", {"op": "exact", "ghz": 4}),
    ("w4b", {"op": "exact", "w": 4}),
]
EXPECTED_COSTS = {"w4": 7, "ghz4": 3, "w4b": 7}


def _free_port() -> int:
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def _await_port(port: int, deadline_s: float = 20.0) -> socket.socket:
    deadline = time.time() + deadline_s
    while time.time() < deadline:
        try:
            return socket.create_connection(("127.0.0.1", port),
                                            timeout=1.0)
        except OSError:
            time.sleep(0.1)
    raise RuntimeError(f"server never came up on port {port}")


def run_smoke(results_dir: pathlib.Path) -> dict:
    port, metrics_port = _free_port(), _free_port()
    results_dir.mkdir(exist_ok=True)
    trace_path = results_dir / "obs_smoke_trace.jsonl"
    if trace_path.exists():
        trace_path.unlink()
    proc = subprocess.Popen(
        [sys.executable, "-c",
         "import sys; from repro.cli import main; "
         "sys.exit(main(sys.argv[1:]))",
         "serve", "--listen", f"127.0.0.1:{port}",
         "--metrics", f"127.0.0.1:{metrics_port}",
         "--trace", str(trace_path),
         "--portfolio", "interleaved"],
        env=dict(os.environ, PYTHONPATH=str(REPO_ROOT / "src")),
        stdout=subprocess.PIPE, stderr=subprocess.PIPE)
    report: dict = {"port": port, "metrics_port": metrics_port}
    try:
        sock = _await_port(port)
        with sock, sock.makefile("r", encoding="utf-8") as lines:
            def ask(request: dict) -> dict:
                sock.sendall((json.dumps(request) + "\n").encode("utf-8"))
                return json.loads(lines.readline())

            answers = {rid: ask(dict(body, id=rid))
                       for rid, body in TRAFFIC}
            for rid, expected in EXPECTED_COSTS.items():
                answer = answers[rid]
                assert answer["ok"], f"{rid} failed: {answer}"
                assert answer["cnot_cost"] == expected, \
                    f"{rid}: cost {answer['cnot_cost']} != {expected}"
            assert answers["w4b"]["cached"], "repeat request missed cache"

            stats = ask({"id": "stats", "op": "stats"})
            assert stats["ok"] and stats["metrics"] is not None
            requests_total = stats["metrics"]["qsp_requests_total"]
            assert requests_total["values"], "no request outcomes counted"

            trace = ask({"id": "trace", "op": "trace", "limit": 50})
            assert trace["ok"] and trace["records"], "empty trace ring"
            report["trace_emitted"] = trace["emitted"]

            # Prometheus exposition over plain HTTP
            with urllib.request.urlopen(
                    f"http://127.0.0.1:{metrics_port}/metrics",
                    timeout=10) as response:
                assert response.status == 200
                content_type = response.headers["Content-Type"]
                assert content_type.startswith("text/plain"), content_type
                exposition = response.read().decode("utf-8")
            assert 'qsp_requests_total{op="exact",outcome="ok"} 2' \
                in exposition, "exact/ok counter missing from exposition"
            assert 'qsp_requests_total{op="exact",outcome="cached"} 1' \
                in exposition, "cached counter missing from exposition"
            assert "qsp_request_seconds_bucket" in exposition
            report["exposition_lines"] = len(exposition.splitlines())

            ask({"id": "bye", "op": "shutdown"})
        proc.wait(timeout=30)
        assert proc.returncode == 0, \
            f"server exited {proc.returncode}: {proc.stderr.read()!r}"
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait(timeout=10)

    # the streamed trace file must parse and reconstruct balanced
    records = read_jsonl(trace_path)
    assert records, "trace file is empty"
    timelines = reconstruct_timelines(records)
    searched = [rid for rid in ("w4", "ghz4") if rid in timelines]
    assert searched, "no request spans reached the trace file"
    for rid in searched:
        tl = timelines[rid]
        assert tl["balanced"], f"{rid} timeline is unbalanced"
        (span,) = tl["spans"]
        assert span["name"] == "request" and span["outcome"] == "ok", span
    assert timelines[None]["events"][-1]["name"] == "shutdown"
    report.update({
        "trace_records": len(records),
        "request_spans": searched,
        "costs": {rid: answers[rid]["cnot_cost"] for rid in answers},
    })
    return report


def main(argv: list[str]) -> int:
    results_dir = REPO_ROOT / "benchmarks" / "results"
    report = run_smoke(results_dir)
    report["ok"] = True
    out = results_dir / "obs_smoke.json"
    out.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
    print(f"OK: costs {report['costs']}, "
          f"{report['trace_records']} trace records "
          f"({report['trace_emitted']} emitted), "
          f"{report['exposition_lines']} exposition lines, "
          f"balanced spans for {report['request_spans']}")
    print(f"wrote {out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))

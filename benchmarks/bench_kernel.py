"""Kernel benchmark — nodes/sec of the packed A* hot path, three ways.

Runs the same A* configuration through three engines on the Dicke
benchmark family (the rows of Table IV) and reports search throughput:

* ``fastcore`` — the packed kernel with the native ``_fastcore`` C
  extension driving the hot loop (orbit hash, merge lattice walk, batched
  CX expansion, native hash containers);
* ``kernel`` — the same packed kernel forced onto its pure-Python
  reference paths (``fastcore.set_enabled(False)``);
* ``legacy`` — the dict-based seed loop (``use_kernel=False``).

``nodes/sec`` = expanded nodes per second of search time — the standard
search-throughput metric, and the only one defined identically across
engines (the kernel's lazy duplicate detection generates more frontier
entries per expansion by design, so generated-node counts are not
comparable to the legacy engine).  The fastcore and kernel paths are
bit-identical by construction, so for them costs, expansion counts *and*
generated counts are asserted equal on every row; kernel vs legacy
asserts identical CNOT costs and optimality flags on every row both
solve.

Rows that no budget can prove optimal are run under a fixed node budget
so all engines do exactly comparable work.

Usage::

    PYTHONPATH=src python benchmarks/bench_kernel.py            # full rows
    PYTHONPATH=src python benchmarks/bench_kernel.py --smoke    # CI smoke
    PYTHONPATH=src python benchmarks/bench_kernel.py --profile  # + phase
        breakdown of the hot loop (enumeration / canonicalization /
        hashing / heuristic / containers) for both A* kernel paths and
        the IDA* and beam engines

Results land in ``BENCH_kernel.json`` at the repo root (the committed
snapshot) and ``benchmarks/results/bench_kernel.txt``.
"""

from __future__ import annotations

import json
import math
import pathlib
import sys
import time

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.core import fastcore                           # noqa: E402
from repro.core.astar import SearchConfig, astar_search  # noqa: E402
from repro.exceptions import SearchBudgetExceeded        # noqa: E402
from repro.states.families import dicke_state            # noqa: E402
from repro.utils.fingerprint import stamp_benchmark      # noqa: E402
from repro.utils.tables import format_table              # noqa: E402

#: (n, k, node budget) — budgets chosen so the small rows are solved to
#: proven optimality and the heavy rows do a fixed, comparable slice of work.
FULL_ROWS = [
    (3, 1, 50_000),
    (4, 1, 50_000),
    (4, 2, 100_000),
    (5, 1, 100_000),
    (5, 2, 4_000),
    (6, 1, 200_000),
    (6, 2, 1_200),
    (6, 3, 700),
]

SMOKE_ROWS = [
    (4, 1, 50_000),
    (4, 2, 100_000),
    (5, 1, 100_000),
    (6, 2, 250),
]

#: Acceptance thresholds on the kernel-vs-legacy family-throughput speedup.
FULL_THRESHOLD = 3.0
SMOKE_THRESHOLD = 1.2

#: Acceptance thresholds on the fastcore-vs-python-kernel family speedup
#: (the ISSUE 6 gate); only enforced when the extension is available.
FASTCORE_FULL_THRESHOLD = 3.0
FASTCORE_SMOKE_THRESHOLD = 1.3

_TIME_LIMIT = 900.0

#: engine tag -> (use_kernel, fastcore_enabled)
ENGINES = {
    "fastcore": (True, True),
    "kernel": (True, False),
    "legacy": (False, False),
}


def _run(n: int, k: int, budget: int, engine: str,
         profile: bool = False) -> dict:
    use_kernel, fc_enabled = ENGINES[engine]
    fastcore.set_enabled(fc_enabled)
    try:
        # cache_cap large enough that no engine ever evicts on these rows:
        # the differential must measure engine speed, not eviction thrash
        config = SearchConfig(max_nodes=budget, time_limit=_TIME_LIMIT,
                              use_kernel=use_kernel, cache_cap=1 << 24,
                              profile=profile)
        target = dicke_state(n, k)
        start = time.perf_counter()
        try:
            result = astar_search(target, config)
            stats = result.stats
            outcome = {"solved": True, "cnot_cost": result.cnot_cost,
                       "optimal": result.optimal}
        except SearchBudgetExceeded as exc:
            stats = exc.stats  # real counters — a timeout expands < budget
            outcome = {"solved": False, "cnot_cost": None, "optimal": None,
                       "lower_bound": exc.lower_bound}
        elapsed = time.perf_counter() - start
    finally:
        fastcore.set_enabled(True)
    if stats is not None:
        nodes = max(1, stats.nodes_expanded)
        outcome.update({
            "nodes_expanded": stats.nodes_expanded,
            "nodes_generated": stats.nodes_generated,
            "canon_cache_hit_rate": round(stats.canon_cache_hit_rate, 4),
        })
        if profile and stats.phase_seconds:
            outcome["phase_seconds"] = {
                name: round(seconds, 4)
                for name, seconds in sorted(stats.phase_seconds.items())}
    else:  # engine provided no counters: assume the node budget was done
        nodes = budget
        outcome.update({"nodes_expanded": budget, "nodes_generated": None})
    outcome["elapsed_seconds"] = round(elapsed, 4)
    outcome["nodes"] = nodes
    outcome["nodes_per_second"] = round(nodes / elapsed, 1)
    return outcome


def run_benchmark(rows: list[tuple[int, int, int]]) -> dict:
    with_fastcore = fastcore.available()
    engines = ["fastcore", "kernel", "legacy"] if with_fastcore \
        else ["kernel", "legacy"]
    results = []
    totals = {engine: {"nodes": 0, "seconds": 0.0} for engine in engines}
    for n, k, budget in rows:
        row: dict = {"n": n, "k": k, "budget": budget}
        for engine in engines:
            outcome = _run(n, k, budget, engine)
            row[engine] = outcome
            totals[engine]["nodes"] += outcome["nodes"]
            totals[engine]["seconds"] += outcome["elapsed_seconds"]
        kernel, legacy = row["kernel"], row["legacy"]
        if kernel["solved"] and legacy["solved"]:
            assert kernel["cnot_cost"] == legacy["cnot_cost"], \
                f"D({n},{k}): kernel {kernel['cnot_cost']} != " \
                f"legacy {legacy['cnot_cost']}"
            assert kernel["optimal"] == legacy["optimal"]
        if with_fastcore:
            fc = row["fastcore"]
            # the native path replays the Python kernel bit-for-bit: every
            # comparable counter must agree exactly
            for field in ("solved", "cnot_cost", "optimal",
                          "nodes_expanded", "nodes_generated"):
                assert fc.get(field) == kernel.get(field), \
                    f"D({n},{k}) fastcore/kernel drift on {field}: " \
                    f"{fc.get(field)} != {kernel.get(field)}"
            row["fastcore_speedup"] = round(
                fc["nodes_per_second"] / kernel["nodes_per_second"], 3)
        row["nodes_per_sec_speedup"] = round(
            kernel["nodes_per_second"] / legacy["nodes_per_second"], 3)
        results.append(row)
    nps = {engine: totals[engine]["nodes"] / totals[engine]["seconds"]
           for engine in engines}
    speedups = [row["nodes_per_sec_speedup"] for row in results]
    geomean = math.exp(sum(math.log(s) for s in speedups) / len(speedups))
    report = {
        "metric": "nodes/sec = expanded nodes / elapsed",
        "fastcore_available": with_fastcore,
        "fastcore_build_error": fastcore.build_error,
        "rows": results,
        "family_nodes_per_sec": {engine: round(value, 1)
                                 for engine, value in nps.items()},
        "family_throughput_speedup": round(nps["kernel"] / nps["legacy"], 3),
        "per_row_geomean_speedup": round(geomean, 3),
    }
    if with_fastcore:
        report["fastcore_family_speedup"] = round(
            nps["fastcore"] / nps["kernel"], 3)
        fc_speedups = [row["fastcore_speedup"] for row in results]
        report["fastcore_per_row_geomean_speedup"] = round(
            math.exp(sum(math.log(s) for s in fc_speedups)
                     / len(fc_speedups)), 3)
    return stamp_benchmark(report)


def _run_search_engine(n: int, k: int, budget: int,
                       search_engine: str) -> dict:
    """Profiled run of a non-A* engine (IDA* / beam) on one Dicke row."""
    from repro.core.beam import BeamConfig, beam_search
    from repro.core.idastar import IDAStarConfig, idastar_search

    target = dicke_state(n, k)
    start = time.perf_counter()
    try:
        if search_engine == "idastar":
            result = idastar_search(target, IDAStarConfig(
                search=SearchConfig(max_nodes=budget,
                                    time_limit=_TIME_LIMIT,
                                    cache_cap=1 << 24, profile=True)))
        else:
            result = beam_search(target, BeamConfig(cache_cap=1 << 24,
                                                    profile=True))
        stats = result.stats
        outcome = {"solved": True, "cnot_cost": result.cnot_cost}
    except SearchBudgetExceeded as exc:
        stats = exc.stats
        outcome = {"solved": False, "cnot_cost": None}
    elapsed = time.perf_counter() - start
    nodes = max(1, stats.nodes_expanded)
    outcome.update({
        "nodes_expanded": stats.nodes_expanded,
        "phase_seconds": {
            name: round(seconds, 4)
            for name, seconds in sorted(stats.phase_seconds.items())},
        "elapsed_seconds": round(elapsed, 4),
        "nodes_per_second": round(nodes / elapsed, 1),
    })
    return outcome


def run_profile(rows: list[tuple[int, int, int]]) -> str:
    """Phase breakdown of every profiled engine: both A* kernel paths
    plus the IDA* and beam engines (all three search cores fill
    ``SearchStats.phase_seconds``)."""
    engines = ["fastcore", "kernel"] if fastcore.available() else ["kernel"]
    lines = []
    for n, k, budget in rows:
        outcomes = [(engine, _run(n, k, budget, engine, profile=True))
                    for engine in engines]
        outcomes += [(engine, _run_search_engine(n, k, budget, engine))
                     for engine in ("idastar", "beam")]
        for engine, outcome in outcomes:
            phases = outcome.get("phase_seconds", {})
            total = max(outcome["elapsed_seconds"], 1e-9)
            parts = ", ".join(
                f"{name} {seconds:.3f}s ({seconds / total:.0%})"
                for name, seconds in sorted(phases.items(),
                                            key=lambda kv: -kv[1]))
            lines.append(
                f"D({n},{k}) {engine:>8}: {total:.3f}s total, "
                f"{outcome['nodes_per_second']:.0f} n/s | {parts}")
    return "\n".join(lines)


def render_table(report: dict) -> str:
    with_fastcore = report["fastcore_available"]
    rows = []
    for row in report["rows"]:
        kernel, legacy = row["kernel"], row["legacy"]
        cost = kernel["cnot_cost"] if kernel["solved"] else "-"
        flag = "*" if kernel.get("optimal") else ""
        line = [f"D({row['n']},{row['k']})", row["budget"], f"{cost}{flag}"]
        if with_fastcore:
            line += [f"{row['fastcore']['nodes_per_second']:.0f}"]
        line += [
            f"{kernel['nodes_per_second']:.0f}",
            f"{legacy['nodes_per_second']:.0f}",
        ]
        if with_fastcore:
            line += [f"{row['fastcore_speedup']:.2f}x"]
        line += [f"{row['nodes_per_sec_speedup']:.2f}x"]
        rows.append(line)
    family = report["family_nodes_per_sec"]
    line = ["family", "-", "-"]
    if with_fastcore:
        line += [f"{family['fastcore']:.0f}"]
    line += [f"{family['kernel']:.0f}", f"{family['legacy']:.0f}"]
    if with_fastcore:
        line += [f"{report['fastcore_family_speedup']:.2f}x"]
    line += [f"{report['family_throughput_speedup']:.2f}x"]
    rows.append(line)
    headers = ["state", "budget", "cnot"]
    if with_fastcore:
        headers += ["fastcore n/s"]
    headers += ["python n/s", "seed n/s"]
    if with_fastcore:
        headers += ["native x"]
    headers += ["kernel x"]
    text = format_table(
        headers, rows,
        title="Packed-kernel A* throughput on the Dicke family "
              "(* = proven optimal; last row = family aggregate)")
    text += (f"\n  per-row geomean kernel-vs-seed speedup: "
             f"{report['per_row_geomean_speedup']:.2f}x")
    if with_fastcore:
        text += (f"\n  per-row geomean native-vs-python speedup: "
                 f"{report['fastcore_per_row_geomean_speedup']:.2f}x")
    else:
        text += (f"\n  fastcore extension unavailable "
                 f"({report['fastcore_build_error']}); native column "
                 f"skipped")
    return text


def main(argv: list[str]) -> int:
    smoke = "--smoke" in argv
    rows = SMOKE_ROWS if smoke else FULL_ROWS
    threshold = SMOKE_THRESHOLD if smoke else FULL_THRESHOLD
    fc_threshold = FASTCORE_SMOKE_THRESHOLD if smoke \
        else FASTCORE_FULL_THRESHOLD
    if "--profile" in argv:
        print(run_profile(rows))
        print()
    report = run_benchmark(rows)
    report["mode"] = "smoke" if smoke else "full"
    report["threshold"] = threshold
    report["fastcore_threshold"] = fc_threshold if \
        report["fastcore_available"] else None
    text = render_table(report)
    print(text)

    results_dir = REPO_ROOT / "benchmarks" / "results"
    results_dir.mkdir(exist_ok=True)
    suffix = "_smoke" if smoke else ""
    (results_dir / f"bench_kernel{suffix}.txt").write_text(
        text + "\n", encoding="utf-8")
    # only the full run may refresh the committed headline snapshot
    out = (REPO_ROOT / "BENCH_kernel.json" if not smoke
           else results_dir / "bench_kernel_smoke.json")
    out.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
    print(f"\nwrote {out}")

    failed = False
    speedup = report["family_throughput_speedup"]
    if speedup < threshold:
        print(f"FAIL: family throughput speedup {speedup:.2f}x "
              f"< required {threshold:.1f}x", file=sys.stderr)
        failed = True
    else:
        print(f"OK: family throughput speedup {speedup:.2f}x "
              f">= {threshold:.1f}x")
    if report["fastcore_available"]:
        fc_speedup = report["fastcore_family_speedup"]
        if fc_speedup < fc_threshold:
            print(f"FAIL: fastcore family speedup {fc_speedup:.2f}x "
                  f"< required {fc_threshold:.1f}x", file=sys.stderr)
            failed = True
        else:
            print(f"OK: fastcore family speedup {fc_speedup:.2f}x "
                  f">= {fc_threshold:.1f}x")
    else:
        print("note: fastcore extension unavailable "
              f"({fastcore.build_error}); native gate skipped")
    return 1 if failed else 0


def test_kernel_benchmark_smoke(benchmark, results_emitter):
    """Pytest entry: smoke rows + the regression floors (CI satellite)."""
    report = run_benchmark(SMOKE_ROWS)
    results_emitter("bench_kernel_smoke", render_table(report))
    assert report["family_throughput_speedup"] >= SMOKE_THRESHOLD
    if report["fastcore_available"]:
        assert report["fastcore_family_speedup"] >= FASTCORE_SMOKE_THRESHOLD
    benchmark.pedantic(
        lambda: _run(4, 2, 100_000, engine="fastcore"
                     if fastcore.available() else "kernel")
        ["nodes_per_second"],
        rounds=1, iterations=1)


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))

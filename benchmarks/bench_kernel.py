"""Kernel benchmark — nodes/sec of the packed A* hot path vs the seed path.

Runs the same A* configuration through both engines on the Dicke benchmark
family (the rows of Table IV) and reports search throughput:

* ``nodes/sec`` = expanded nodes per second of search time — the standard
  search-throughput metric, and the only one defined identically for both
  engines (the kernel's lazy duplicate detection generates more frontier
  entries per expansion by design, so generated-node counts are not
  comparable across engines);
* per-row speedups plus two aggregates: the *family throughput* ratio
  (total nodes / total time, the number that governs any real Dicke
  workload, which the heavy rows dominate) and the per-row geometric mean;
* identical CNOT costs and optimality flags are asserted on every row both
  engines solve within budget.

Rows that neither budget can prove optimal are run under a fixed node
budget so both engines do exactly comparable work.

Usage::

    PYTHONPATH=src python benchmarks/bench_kernel.py            # full rows
    PYTHONPATH=src python benchmarks/bench_kernel.py --smoke    # CI smoke

Results land in ``BENCH_kernel.json`` at the repo root (the committed
snapshot) and ``benchmarks/results/bench_kernel.txt``.
"""

from __future__ import annotations

import json
import math
import pathlib
import sys
import time

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.core.astar import SearchConfig, astar_search  # noqa: E402
from repro.exceptions import SearchBudgetExceeded        # noqa: E402
from repro.states.families import dicke_state            # noqa: E402
from repro.utils.fingerprint import stamp_benchmark      # noqa: E402
from repro.utils.tables import format_table              # noqa: E402

#: (n, k, node budget) — budgets chosen so the small rows are solved to
#: proven optimality and the heavy rows do a fixed, comparable slice of work.
FULL_ROWS = [
    (3, 1, 50_000),
    (4, 1, 50_000),
    (4, 2, 100_000),
    (5, 1, 100_000),
    (5, 2, 4_000),
    (6, 1, 200_000),
    (6, 2, 1_200),
    (6, 3, 700),
]

SMOKE_ROWS = [
    (4, 1, 50_000),
    (4, 2, 100_000),
    (5, 1, 100_000),
    (6, 2, 250),
]

#: Acceptance thresholds on the family-throughput speedup.
FULL_THRESHOLD = 3.0
SMOKE_THRESHOLD = 1.2

_TIME_LIMIT = 900.0


def _run(n: int, k: int, budget: int, use_kernel: bool) -> dict:
    # cache_cap large enough that neither engine ever evicts on these rows:
    # the differential must measure engine speed, not eviction thrash
    config = SearchConfig(max_nodes=budget, time_limit=_TIME_LIMIT,
                          use_kernel=use_kernel, cache_cap=1 << 24)
    target = dicke_state(n, k)
    start = time.perf_counter()
    try:
        result = astar_search(target, config)
        stats = result.stats
        outcome = {"solved": True, "cnot_cost": result.cnot_cost,
                   "optimal": result.optimal}
    except SearchBudgetExceeded as exc:
        stats = exc.stats  # real counters — a timeout expands < budget
        outcome = {"solved": False, "cnot_cost": None, "optimal": None,
                   "lower_bound": exc.lower_bound}
    elapsed = time.perf_counter() - start
    if stats is not None:
        nodes = max(1, stats.nodes_expanded)
        outcome.update({
            "nodes_expanded": stats.nodes_expanded,
            "nodes_generated": stats.nodes_generated,
            "canon_cache_hit_rate": round(stats.canon_cache_hit_rate, 4),
        })
    else:  # engine provided no counters: assume the node budget was done
        nodes = budget
        outcome.update({"nodes_expanded": budget, "nodes_generated": None})
    outcome["elapsed_seconds"] = round(elapsed, 4)
    outcome["nodes"] = nodes
    outcome["nodes_per_second"] = round(nodes / elapsed, 1)
    return outcome


def run_benchmark(rows: list[tuple[int, int, int]]) -> dict:
    results = []
    totals = {"kernel": {"nodes": 0, "seconds": 0.0},
              "legacy": {"nodes": 0, "seconds": 0.0}}
    for n, k, budget in rows:
        kernel = _run(n, k, budget, use_kernel=True)
        legacy = _run(n, k, budget, use_kernel=False)
        if kernel["solved"] and legacy["solved"]:
            assert kernel["cnot_cost"] == legacy["cnot_cost"], \
                f"D({n},{k}): kernel {kernel['cnot_cost']} != " \
                f"legacy {legacy['cnot_cost']}"
            assert kernel["optimal"] == legacy["optimal"]
        speedup = kernel["nodes_per_second"] / legacy["nodes_per_second"]
        totals["kernel"]["nodes"] += kernel["nodes"]
        totals["kernel"]["seconds"] += kernel["elapsed_seconds"]
        totals["legacy"]["nodes"] += legacy["nodes"]
        totals["legacy"]["seconds"] += legacy["elapsed_seconds"]
        results.append({"n": n, "k": k, "budget": budget,
                        "kernel": kernel, "legacy": legacy,
                        "nodes_per_sec_speedup": round(speedup, 3)})
    kernel_nps = totals["kernel"]["nodes"] / totals["kernel"]["seconds"]
    legacy_nps = totals["legacy"]["nodes"] / totals["legacy"]["seconds"]
    speedups = [row["nodes_per_sec_speedup"] for row in results]
    geomean = math.exp(sum(math.log(s) for s in speedups) / len(speedups))
    return stamp_benchmark({
        "metric": "nodes/sec = expanded nodes / elapsed",
        "rows": results,
        "family_nodes_per_sec": {"kernel": round(kernel_nps, 1),
                                 "legacy": round(legacy_nps, 1)},
        "family_throughput_speedup": round(kernel_nps / legacy_nps, 3),
        "per_row_geomean_speedup": round(geomean, 3),
    })


def render_table(report: dict) -> str:
    rows = []
    for row in report["rows"]:
        kernel, legacy = row["kernel"], row["legacy"]
        cost = kernel["cnot_cost"] if kernel["solved"] else "-"
        flag = "*" if kernel.get("optimal") else ""
        rows.append([
            f"D({row['n']},{row['k']})", row["budget"], f"{cost}{flag}",
            f"{kernel['nodes_per_second']:.0f}",
            f"{legacy['nodes_per_second']:.0f}",
            f"{row['nodes_per_sec_speedup']:.2f}x",
        ])
    rows.append(["family", "-", "-",
                 f"{report['family_nodes_per_sec']['kernel']:.0f}",
                 f"{report['family_nodes_per_sec']['legacy']:.0f}",
                 f"{report['family_throughput_speedup']:.2f}x"])
    text = format_table(
        ["state", "budget", "cnot", "kernel n/s", "seed n/s", "speedup"],
        rows,
        title="Packed-kernel A* throughput on the Dicke family "
              "(* = proven optimal; last row = family aggregate)")
    text += (f"\n  per-row geomean speedup: "
             f"{report['per_row_geomean_speedup']:.2f}x")
    return text


def main(argv: list[str]) -> int:
    smoke = "--smoke" in argv
    rows = SMOKE_ROWS if smoke else FULL_ROWS
    threshold = SMOKE_THRESHOLD if smoke else FULL_THRESHOLD
    report = run_benchmark(rows)
    report["mode"] = "smoke" if smoke else "full"
    report["threshold"] = threshold
    text = render_table(report)
    print(text)

    results_dir = REPO_ROOT / "benchmarks" / "results"
    results_dir.mkdir(exist_ok=True)
    suffix = "_smoke" if smoke else ""
    (results_dir / f"bench_kernel{suffix}.txt").write_text(
        text + "\n", encoding="utf-8")
    # only the full run may refresh the committed headline snapshot
    out = (REPO_ROOT / "BENCH_kernel.json" if not smoke
           else results_dir / "bench_kernel_smoke.json")
    out.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
    print(f"\nwrote {out}")

    speedup = report["family_throughput_speedup"]
    if speedup < threshold:
        print(f"FAIL: family throughput speedup {speedup:.2f}x "
              f"< required {threshold:.1f}x", file=sys.stderr)
        return 1
    print(f"OK: family throughput speedup {speedup:.2f}x "
          f">= {threshold:.1f}x")
    return 0


def test_kernel_benchmark_smoke(benchmark, results_emitter):
    """Pytest entry: smoke rows + the regression floor (CI satellite)."""
    report = run_benchmark(SMOKE_ROWS)
    results_emitter("bench_kernel_smoke", render_table(report))
    assert report["family_throughput_speedup"] >= SMOKE_THRESHOLD
    benchmark.pedantic(
        lambda: _run(4, 2, 100_000, use_kernel=True)["nodes_per_second"],
        rounds=1, iterations=1)


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))

"""Worker-pool benchmark — mixed prepare+exact traffic, one vs N processes.

PR 10 adds two serving upgrades this benchmark measures together:

* ``prepare`` requests ride the cross-request scheduler as stepwise
  :class:`~repro.qsp.workflow.WorkflowRun` sessions instead of running
  inline — a light ``exact`` request admitted behind a dense ``prepare``
  no longer pays the full workflow's wall time before its own
  microseconds of search begin.
* ``serve --workers N`` puts N forked scheduler processes behind the one
  asyncio acceptor, routed least-inflight with signature affinity, each
  with its own WAL shard and periodic cross-merge of learned deltas.

Measured, on the same mixed prepare/exact burst and budgets:

* **Inline baseline** — every request through ``handle()`` in admission
  order: the FIFO line the pre-PR-10 service formed whenever a prepare
  arrived (prepare always ran inline, exact only queued behind exact).
* **Scheduled burst** — everything through ``submit()`` up front on one
  service; prepare and exact time-share expansion slices.
* **Worker pool** — the same burst through a :class:`WorkerPool`;
  aggregate throughput vs the inline line, routing/merge counters from
  the pool's own snapshot.
* **Cost identity** — every scheduled and pooled cost is asserted equal
  to the inline run's (the scheduler and the pool move work around,
  they never change results).
* **Head-of-line floor** — the light exact admitted behind the dense
  prepare must settle at least ``HEADLINE_GAIN_FLOOR``x faster than the
  FIFO wait it pays in the inline line.  This gate is CPU-count
  independent (it is about slicing, not parallelism) and is the CI
  gate on 1-CPU runners.
* **Pool throughput floor** — aggregate rows/sec at least
  ``POOL_SPEEDUP_FLOOR``x the inline line, gated only when the host
  has at least ``POOL_GATE_MIN_CPUS`` CPUs (a 1-CPU host time-slices
  the workers; the recorded ratio is still reported).

Usage::

    PYTHONPATH=src python benchmarks/bench_pool.py            # full
    PYTHONPATH=src python benchmarks/bench_pool.py --smoke    # CI gate

Results land in ``BENCH_pool.json`` at the repo root (the committed
snapshot) and ``benchmarks/results/bench_pool.txt``; both carry the
shared schema-version + regime-fingerprint stamp.
"""

from __future__ import annotations

import json
import math
import os
import pathlib
import sys
import time

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.core.astar import SearchConfig                      # noqa: E402
from repro.service.pool import WorkerPool                      # noqa: E402
from repro.service.server import (                             # noqa: E402
    ServiceConfig,
    SynthesisService,
)
from repro.utils.fingerprint import stamp_benchmark            # noqa: E402
from repro.utils.tables import format_table                    # noqa: E402

#: Mixed traffic, dense prepare first: under the inline line everything
#: behind the workflow pays its full wall time; under the scheduler the
#: light exact rows overtake it.  All rows settle within the shared
#: budget, so cost identity is meaningful end to end.
FULL_TRAFFIC = [
    ("prep-d52", "prepare", {"dicke": [5, 2]}),
    ("prep-w5", "prepare", {"w": 5}),
    ("ex-d42", "exact", {"dicke": [4, 2]}),
    ("prep-ghz5", "prepare", {"ghz": 5}),
    ("prep-w4", "prepare", {"w": 4}),
    ("ex-w4", "exact", {"w": 4}),
    ("ex-ghz4", "exact", {"ghz": 4}),
    ("ex-ghz3", "exact", {"ghz": 3}),
]
SMOKE_TRAFFIC = [
    ("prep-d52", "prepare", {"dicke": [5, 2]}),
    ("ex-w4", "exact", {"w": 4}),
    ("prep-w5", "prepare", {"w": 5}),
    ("ex-ghz3", "exact", {"ghz": 3}),
]

#: The head-of-line pair: the dense prepare at the head of the burst and
#: the light exact admitted last.
HEAVY_ID = "prep-d52"
LIGHT_ID = "ex-ghz3"

_MAX_NODES = 20_000
_TIME_LIMIT = 900.0

#: The light exact behind the dense prepare must settle at least this
#: much faster than its inline FIFO wait (sum of the inline latencies of
#: everything admitted before it, plus its own).  The dense prepare's
#: wall time is three orders of magnitude above the light exact's, so
#: the measured gain sits far above this floor; the gate catches a
#: regression that quietly put prepare back inline.
HEADLINE_GAIN_FLOOR = 5.0

#: Aggregate pool throughput floor vs the inline line, gated only on
#: hosts with at least this many CPUs (the workers really run in
#: parallel there; on smaller hosts the ratio is reported, not gated).
POOL_SPEEDUP_FLOOR = 2.0
POOL_GATE_MIN_CPUS = 4

FULL_WORKERS = 4
SMOKE_WORKERS = 2


def _config() -> ServiceConfig:
    # no request cache (every row must really search, or the inline
    # baseline would be a row of cache hits) and no persistence — the
    # per-worker WAL shards are exercised by the test suite; this
    # benchmark isolates scheduling and process fan-out
    return ServiceConfig(
        search=SearchConfig(max_nodes=_MAX_NODES, time_limit=_TIME_LIMIT),
        portfolio_mode="interleaved", use_cache=False)


def _request(rid: str, op: str, body: dict) -> dict:
    return dict(body, id=rid, op=op)


def _percentile(values: list[float], q: float) -> float:
    ordered = sorted(values)
    idx = min(len(ordered) - 1, max(0, math.ceil(q * len(ordered)) - 1))
    return ordered[idx]


def _latency_stats(latencies: dict[str, float]) -> dict:
    values = list(latencies.values())
    return {
        "p50_seconds": round(_percentile(values, 0.50), 4),
        "p95_seconds": round(_percentile(values, 0.95), 4),
        "max_seconds": round(max(values), 4),
    }


def _run_inline(traffic) -> dict:
    """The pre-PR-10 line: one request at a time, in admission order."""
    service = SynthesisService(_config())
    latencies: dict[str, float] = {}
    responses: dict[str, dict] = {}
    start = time.perf_counter()
    for rid, op, body in traffic:
        t0 = time.perf_counter()
        response = service.handle(_request(rid, op, body))
        latencies[rid] = time.perf_counter() - t0
        assert response["ok"], f"inline {rid} failed: {response}"
        responses[rid] = response
    total = time.perf_counter() - start
    return {"latencies": latencies, "responses": responses,
            "total_seconds": total}


def _drive_burst(front_end, traffic) -> dict:
    """Admit everything at t0 on any submit/scheduler surface, pump dry."""
    latencies: dict[str, float] = {}
    responses: dict[str, dict] = {}
    order: list[str] = []
    start = time.perf_counter()

    def reply_for(rid):
        def reply(response: dict) -> None:
            latencies[rid] = time.perf_counter() - start
            responses[rid] = response
            order.append(rid)
        return reply

    for rid, op, body in traffic:
        registered = front_end.submit(_request(rid, op, body),
                                      reply_for(rid))
        assert registered, f"{rid} was not admitted"
    while front_end.scheduler.pending:
        front_end.scheduler.run_turn()
    total = time.perf_counter() - start
    for rid, response in responses.items():
        assert response["ok"], f"burst {rid} failed: {response}"
    return {"latencies": latencies, "responses": responses,
            "order": order, "total_seconds": total}


def _run_scheduled(traffic) -> dict:
    service = SynthesisService(_config())
    result = _drive_burst(service, traffic)
    result["scheduler"] = service.scheduler.snapshot()
    return result


def _run_pool(traffic, workers: int) -> dict:
    pool = WorkerPool(_config(), workers)
    try:
        result = _drive_burst(pool, traffic)
        result["pool"] = pool.routing_snapshot()
    finally:
        summary = pool.shutdown(drain_ms=1_000.0)
    result["shutdown"] = {"drained": summary["drained"],
                          "workers": sorted(summary["workers"])}
    return result


def _assert_costs(reference: dict, candidate: dict, label: str) -> None:
    for rid, ref in reference["responses"].items():
        got = candidate["responses"][rid]
        assert got["cnot_cost"] == ref["cnot_cost"], \
            f"{rid}: {label} cost {got['cnot_cost']} != " \
            f"inline {ref['cnot_cost']}"
        flag = "optimal" if "optimal" in ref else "exact_optimal"
        assert got.get(flag) == ref.get(flag), \
            f"{rid}: {label} optimality differs"


def run_benchmark(traffic, workers: int) -> dict:
    inline = _run_inline(traffic)
    scheduled = _run_scheduled(traffic)
    pooled = _run_pool(traffic, workers)

    # acceptance property: neither the scheduler nor the pool ever
    # changes a result
    _assert_costs(inline, scheduled, "scheduled")
    _assert_costs(inline, pooled, "pooled")

    # head-of-line: the light exact overtakes the dense prepare instead
    # of queueing behind it
    order = scheduled["order"]
    assert order.index(LIGHT_ID) < order.index(HEAVY_ID), \
        f"{LIGHT_ID} settled after {HEAVY_ID} — prepare went back inline"
    ids = [rid for rid, _, _ in traffic]
    fifo_wait = sum(inline["latencies"][r]
                    for r in ids[:ids.index(LIGHT_ID) + 1])
    headline_gain = fifo_wait / max(scheduled["latencies"][LIGHT_ID],
                                    1e-9)

    cpus = os.cpu_count() or 1
    pool_speedup = inline["total_seconds"] / max(
        pooled["total_seconds"], 1e-9)

    rows = []
    for position, (rid, op, _) in enumerate(traffic):
        rows.append({
            "id": rid,
            "op": op,
            "admission_position": position,
            "cnot_cost": inline["responses"][rid]["cnot_cost"],
            "inline_seconds": round(inline["latencies"][rid], 4),
            "scheduled_seconds": round(scheduled["latencies"][rid], 4),
            "pooled_seconds": round(pooled["latencies"][rid], 4),
            "completion_position": order.index(rid),
        })
    report = {
        "metric": "mixed prepare+exact burst through the inline line, "
                  "the cross-request scheduler, and the N-process "
                  "worker pool; costs asserted identical; the light "
                  "exact behind the dense prepare must beat its inline "
                  "FIFO wait by the head-of-line floor",
        "clients": len(traffic),
        "workers": workers,
        "cpus": cpus,
        "rows": rows,
        "inline": {
            "total_seconds": round(inline["total_seconds"], 4),
            "throughput_rps": round(
                len(traffic) / inline["total_seconds"], 3),
            **_latency_stats(inline["latencies"]),
        },
        "scheduled": {
            "total_seconds": round(scheduled["total_seconds"], 4),
            "throughput_rps": round(
                len(traffic) / scheduled["total_seconds"], 3),
            **_latency_stats(scheduled["latencies"]),
            "completion_order": order,
            "scheduler": scheduled["scheduler"],
        },
        "pool": {
            "total_seconds": round(pooled["total_seconds"], 4),
            "throughput_rps": round(
                len(traffic) / pooled["total_seconds"], 3),
            **_latency_stats(pooled["latencies"]),
            "speedup_vs_inline": round(pool_speedup, 3),
            "gated": cpus >= POOL_GATE_MIN_CPUS,
            "routing": pooled["pool"],
            "shutdown": pooled["shutdown"],
        },
        "head_of_line": {
            "light_id": LIGHT_ID,
            "heavy_id": HEAVY_ID,
            "fifo_wait_seconds": round(fifo_wait, 4),
            "scheduled_latency_seconds": round(
                scheduled["latencies"][LIGHT_ID], 4),
            "gain": round(headline_gain, 3),
        },
    }
    return stamp_benchmark(
        report, SearchConfig(max_nodes=_MAX_NODES, time_limit=_TIME_LIMIT))


def render_table(report: dict) -> str:
    rows = []
    for row in report["rows"]:
        rows.append([row["id"], row["op"], row["cnot_cost"],
                     row["admission_position"],
                     row["completion_position"],
                     f"{row['inline_seconds']:.3f}",
                     f"{row['scheduled_seconds']:.3f}",
                     f"{row['pooled_seconds']:.3f}"])
    blocks = [format_table(
        ["request", "op", "cnot", "admitted", "completed", "inline s",
         "sched s", "pool s"],
        rows,
        title=f"{report['clients']}-row mixed burst: inline line vs "
              f"scheduler vs {report['workers']}-worker pool "
              f"(identical costs asserted; burst latency = admission "
              f"to reply)")]
    inline, scheduled = report["inline"], report["scheduled"]
    pool = report["pool"]
    blocks.append(
        f"inline:    {inline['total_seconds']:.3f}s total, "
        f"p95 {inline['p95_seconds']:.3f}s, "
        f"{inline['throughput_rps']:.2f} req/s\n"
        f"scheduled: {scheduled['total_seconds']:.3f}s total, "
        f"p95 {scheduled['p95_seconds']:.3f}s, "
        f"{scheduled['throughput_rps']:.2f} req/s\n"
        f"pool:      {pool['total_seconds']:.3f}s total, "
        f"p95 {pool['p95_seconds']:.3f}s, "
        f"{pool['throughput_rps']:.2f} req/s — "
        f"{pool['speedup_vs_inline']:.2f}x vs inline on "
        f"{report['cpus']} CPU(s)"
        f"{' [gated]' if pool['gated'] else ' [reported, not gated]'}")
    head = report["head_of_line"]
    blocks.append(
        f"head-of-line: {head['light_id']} (admitted last) settled in "
        f"{head['scheduled_latency_seconds']:.3f}s instead of the "
        f"{head['fifo_wait_seconds']:.3f}s inline wait behind "
        f"{head['heavy_id']} — {head['gain']:.1f}x gain")
    routing = pool["routing"]
    blocks.append(
        f"pool routing: {routing['routed']} per worker, "
        f"{routing['affinity_hits']} affinity hits, "
        f"{routing['merge_rounds']} merge round(s), "
        f"{routing['deltas_shipped']} delta(s) shipped; drained "
        f"{pool['shutdown']['drained']} in-flight at shutdown")
    return "\n\n".join(blocks)


def main(argv: list[str]) -> int:
    smoke = "--smoke" in argv
    traffic = SMOKE_TRAFFIC if smoke else FULL_TRAFFIC
    workers = SMOKE_WORKERS if smoke else FULL_WORKERS
    report = run_benchmark(traffic, workers)
    report["mode"] = "smoke" if smoke else "full"
    report["thresholds"] = {"head_of_line_gain": HEADLINE_GAIN_FLOOR,
                            "pool_speedup": POOL_SPEEDUP_FLOOR,
                            "pool_gate_min_cpus": POOL_GATE_MIN_CPUS}
    text = render_table(report)
    print(text)

    results_dir = REPO_ROOT / "benchmarks" / "results"
    results_dir.mkdir(exist_ok=True)
    suffix = "_smoke" if smoke else ""
    (results_dir / f"bench_pool{suffix}.txt").write_text(
        text + "\n", encoding="utf-8")
    # only the full run may refresh the committed headline snapshot
    out = (REPO_ROOT / "BENCH_pool.json" if not smoke
           else results_dir / "bench_pool_smoke.json")
    out.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
    print(f"\nwrote {out}")

    failed = False
    gain = report["head_of_line"]["gain"]
    if gain < HEADLINE_GAIN_FLOOR:
        print(f"FAIL: head-of-line gain {gain:.2f}x < required "
              f"{HEADLINE_GAIN_FLOOR:.1f}x", file=sys.stderr)
        failed = True
    speedup = report["pool"]["speedup_vs_inline"]
    if report["pool"]["gated"] and speedup < POOL_SPEEDUP_FLOOR:
        print(f"FAIL: pool speedup {speedup:.2f}x < required "
              f"{POOL_SPEEDUP_FLOOR:.1f}x on {report['cpus']} CPUs",
              file=sys.stderr)
        failed = True
    if failed:
        return 1
    print(f"OK: identical costs across inline/scheduled/pooled, "
          f"head-of-line gain {gain:.2f}x >= "
          f"{HEADLINE_GAIN_FLOOR:.1f}x, pool "
          f"{speedup:.2f}x vs inline on {report['cpus']} CPU(s)"
          f"{'' if report['pool']['gated'] else ' (not gated)'}")
    return 0


def test_pool_benchmark_smoke(results_emitter):
    """Pytest entry: smoke burst + the regression gates (CI satellite)."""
    report = run_benchmark(SMOKE_TRAFFIC, SMOKE_WORKERS)
    results_emitter("bench_pool_smoke", render_table(report))
    assert report["head_of_line"]["gain"] >= HEADLINE_GAIN_FLOOR
    if report["pool"]["gated"]:
        assert report["pool"]["speedup_vs_inline"] >= POOL_SPEEDUP_FLOOR


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))

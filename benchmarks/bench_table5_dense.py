"""E5 — Table V (top): dense random states, ``m = 2**(n-1)``.

For each ``n``, samples ``REPRO_SAMPLES`` random uniform dense states and
reports the average CNOT count of m-flow, n-flow, hybrid, and our workflow,
plus the improvement over n-flow (the strongest dense baseline) — the shape
the paper reports (9% average, shrinking with ``n``).

The quadratic-cost baselines (m-flow, hybrid) are capped at ``n <= 8`` by
default (the paper itself marks m-flow TLE at n >= 17); ``n`` ranges to 10
by default and 14 with ``REPRO_BENCH_FULL=1``.
"""

from __future__ import annotations

import numpy as np
from conftest import emit, full_scale, samples

from repro.baselines.hybrid import hybrid_cnot_count
from repro.baselines.mflow import mflow_cnot_count
from repro.baselines.nflow import nflow_cnot_count
from repro.core.astar import SearchConfig
from repro.core.beam import BeamConfig
from repro.core.exact import ExactConfig
from repro.qsp.config import QSPConfig
from repro.qsp.workflow import prepare_state
from repro.states.random_states import benchmark_suite
from repro.utils.tables import format_table, improvement_percent

PAPER_IMPROVEMENT = {3: 17, 4: 36, 5: 3, 6: 10, 7: 11, 8: 11, 9: 5, 10: 6,
                     11: 11, 12: 6, 13: 5, 14: 5}

#: The paper's own "ours" column (Table V top) — the direct reproduction
#: check for the dense workflow.
PAPER_OURS = {3: 5, 4: 9, 5: 29, 6: 56, 7: 112, 8: 226, 9: 484, 10: 962,
              11: 1812, 12: 3846, 13: 7746, 14: 15630}

_SLOW_BASELINE_MAX_N = 8


def _bench_config() -> QSPConfig:
    return QSPConfig(
        exact=ExactConfig(
            search=SearchConfig(max_nodes=25_000, time_limit=10.0),
            beam=BeamConfig(width=96, time_limit=6.0),
            beam_fallback=True, verify=False),
        verify_max_qubits=8)


def test_table5_dense(benchmark, results_emitter):
    max_n = 14 if full_scale() else 10
    config = _bench_config()
    rows = []
    for n in range(3, max_n + 1):
        states = benchmark_suite(n, sparse=False, count=samples())
        ours = float(np.mean([prepare_state(s, config).cnot_cost
                              for s in states]))
        nflow = nflow_cnot_count(n)
        if n <= _SLOW_BASELINE_MAX_N:
            mflow = float(np.mean([mflow_cnot_count(s) for s in states]))
            hybrid = float(np.mean([hybrid_cnot_count(s) for s in states]))
        else:
            mflow = hybrid = float("nan")
        impr = improvement_percent(nflow, ours)
        rows.append([n, 1 << (n - 1),
                     round(mflow, 1) if mflow == mflow else "TLE",
                     nflow,
                     round(hybrid, 1) if hybrid == hybrid else "TLE",
                     round(ours, 1), PAPER_OURS.get(n, "-"),
                     f"{impr:.0f}%", f"{PAPER_IMPROVEMENT.get(n, 0)}%"])
        assert ours <= nflow, f"dense n={n}: ours must not exceed n-flow"
    results_emitter("table5_dense", format_table(
        ["n", "m", "m-flow", "n-flow", "hybrid", "ours", "paper(ours)",
         "impr% vs n-flow", "paper impr%"], rows,
        title=f"Table V (dense, m = 2^(n-1); avg of {samples()} states)"))

    small = benchmark_suite(5, sparse=False, count=1)[0]
    benchmark.pedantic(lambda: prepare_state(small, config).cnot_cost,
                       rounds=1, iterations=1)

"""Memory benchmark — cold vs warm family throughput on the Dicke rows.

Measures what the persistent :class:`~repro.core.memory.SearchMemory`
buys on a repeated family workload: every engine pass runs the same rows
twice through one memory — the first (cold) pass populates the interning
pool, canon/heuristic stores, and (for IDA*) the sound transposition
table; the second (warm) pass reuses them.  Reported per engine:

* total family seconds cold and warm, and their ratio (the headline
  *warm speedup* — the number that governs any re-run-heavy workload);
* per-row warm speedups and solved costs (asserted identical cold/warm:
  memory only skips recomputation, never changes results);
* the memory counters (store hit rates, transposition entries) that
  explain where the time went.

Rows neither pass solves run under a fixed node budget, so cold and warm
do comparable work there too (the warm pass just pays less per node).

Usage::

    PYTHONPATH=src python benchmarks/bench_memory.py            # full rows
    PYTHONPATH=src python benchmarks/bench_memory.py --smoke    # CI smoke

Results land in ``BENCH_memory.json`` at the repo root (the committed
snapshot) and ``benchmarks/results/bench_memory.txt``.
"""

from __future__ import annotations

import json
import pathlib
import sys
import time

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.core.astar import SearchConfig                      # noqa: E402
from repro.core.memory import SearchMemory                     # noqa: E402
from repro.experiments.family_runner import (                  # noqa: E402
    FamilyRunConfig,
    run_family,
)
from repro.states.families import dicke_state                  # noqa: E402
from repro.utils.fingerprint import stamp_benchmark            # noqa: E402
from repro.utils.tables import format_table                    # noqa: E402

#: (n, k, node budget) per engine — small rows are solved to optimality,
#: heavy rows do a fixed comparable slice of work under the budget.
FULL_ROWS = {
    "astar": [
        (3, 1, 50_000),
        (4, 1, 50_000),
        (4, 2, 100_000),
        (5, 1, 100_000),
        (5, 2, 4_000),
        (6, 2, 1_200),
        (6, 3, 700),
    ],
    # IDA* rows stop at D(5,2): deeper budget-bound rows expand their fixed
    # node budget cold and warm alike (nothing is re-searched, so there is
    # nothing for the table to skip) and would only dilute the signal.
    "idastar": [
        (3, 1, 50_000),
        (4, 1, 50_000),
        (4, 2, 100_000),
        (5, 2, 4_000),
    ],
}

SMOKE_ROWS = {
    "astar": [
        (4, 1, 50_000),
        (4, 2, 100_000),
        (6, 2, 250),
    ],
    "idastar": [
        (4, 1, 50_000),
        (4, 2, 100_000),
        (5, 2, 1_000),
    ],
}

#: Required warm speedup of total family time, per mode.  Warm passes
#: reuse every canon key and (for IDA*) whole exhausted subtrees, so real
#: speedups are far above these floors; the gate only has to catch a
#: memory subsystem that stopped reusing anything.
FULL_THRESHOLD = 1.3
SMOKE_THRESHOLD = 1.1

_TIME_LIMIT = 900.0


def _row_budgets(engine: str, rows):
    """Run each row under its own budget, cold then warm, one memory."""
    memory = SearchMemory()
    passes = []
    for label in ("cold", "warm"):
        start = time.perf_counter()
        reports = []
        for n, k, budget in rows:
            config = FamilyRunConfig(
                engine=engine,
                search=SearchConfig(max_nodes=budget,
                                    time_limit=_TIME_LIMIT,
                                    cache_cap=1 << 24))
            reports.append(run_family([(f"D({n},{k})", dicke_state(n, k))],
                                      config, memory=memory))
        elapsed = time.perf_counter() - start
        rows_out = [row for rep in reports for row in rep.rows]
        passes.append({"label": label, "seconds": elapsed,
                       "rows": rows_out})
    return passes, memory


def run_benchmark(row_table: dict) -> dict:
    engines = {}
    for engine, rows in row_table.items():
        passes, memory = _row_budgets(engine, rows)
        cold, warm = passes
        per_row = []
        for c, w in zip(cold["rows"], warm["rows"]):
            assert c.label == w.label
            if c.solved and w.solved:
                assert c.cnot_cost == w.cnot_cost, \
                    f"{engine} {c.label}: cold {c.cnot_cost} != " \
                    f"warm {w.cnot_cost}"
            per_row.append({
                "label": c.label,
                "solved": c.solved,
                "cnot_cost": c.cnot_cost,
                "cold_seconds": round(c.seconds, 4),
                "warm_seconds": round(w.seconds, 4),
                "cold_expanded": c.nodes_expanded,
                "warm_expanded": w.nodes_expanded,
                "warm_speedup": round(c.seconds / max(w.seconds, 1e-9), 3),
            })
        speedup = cold["seconds"] / max(warm["seconds"], 1e-9)
        engines[engine] = {
            "rows": per_row,
            "cold_seconds": round(cold["seconds"], 4),
            "warm_seconds": round(warm["seconds"], 4),
            "warm_speedup": round(speedup, 3),
            "memory": memory.snapshot(),
        }
    return stamp_benchmark({
        "metric": "warm speedup = cold family seconds / warm family seconds "
                  "(same rows, same memory, identical costs asserted)",
        "engines": engines,
        "min_warm_speedup": round(
            min(e["warm_speedup"] for e in engines.values()), 3),
    })


def render_table(report: dict) -> str:
    blocks = []
    for engine, data in report["engines"].items():
        rows = []
        for row in data["rows"]:
            cost = row["cnot_cost"] if row["solved"] else "-"
            rows.append([
                row["label"], cost,
                f"{row['cold_seconds']:.3f}", f"{row['warm_seconds']:.3f}",
                f"{row['warm_speedup']:.2f}x",
            ])
        rows.append(["family", "-", f"{data['cold_seconds']:.3f}",
                     f"{data['warm_seconds']:.3f}",
                     f"{data['warm_speedup']:.2f}x"])
        blocks.append(format_table(
            ["state", "cnot", "cold s", "warm s", "speedup"], rows,
            title=f"{engine}: cold vs warm family run on the Dicke rows "
                  "(one shared SearchMemory; last row = family total)"))
    return "\n\n".join(blocks)


def main(argv: list[str]) -> int:
    smoke = "--smoke" in argv
    row_table = SMOKE_ROWS if smoke else FULL_ROWS
    threshold = SMOKE_THRESHOLD if smoke else FULL_THRESHOLD
    report = run_benchmark(row_table)
    report["mode"] = "smoke" if smoke else "full"
    report["threshold"] = threshold
    text = render_table(report)
    print(text)

    results_dir = REPO_ROOT / "benchmarks" / "results"
    results_dir.mkdir(exist_ok=True)
    suffix = "_smoke" if smoke else ""
    (results_dir / f"bench_memory{suffix}.txt").write_text(
        text + "\n", encoding="utf-8")
    # only the full run may refresh the committed headline snapshot
    out = (REPO_ROOT / "BENCH_memory.json" if not smoke
           else results_dir / "bench_memory_smoke.json")
    out.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
    print(f"\nwrote {out}")

    worst = report["min_warm_speedup"]
    if worst < threshold:
        print(f"FAIL: warm family speedup {worst:.2f}x "
              f"< required {threshold:.1f}x", file=sys.stderr)
        return 1
    print(f"OK: warm family speedup {worst:.2f}x >= {threshold:.1f}x "
          f"on every engine")
    return 0


def test_memory_benchmark_smoke(results_emitter):
    """Pytest entry: smoke rows + the regression floor (CI satellite)."""
    report = run_benchmark(SMOKE_ROWS)
    results_emitter("bench_memory_smoke", render_table(report))
    assert report["min_warm_speedup"] >= SMOKE_THRESHOLD


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))

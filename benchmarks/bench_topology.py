"""Topology benchmark — native search vs place-and-route across devices.

Every row prepares one benchmark state on one device family (line, ring,
grid, heavy-hex fragment), twice:

* **routed** — the seed pipeline: synthesize on the paper's all-to-all
  model, place greedily, SWAP-route (``prepare_on_device(mode="route")``);
* **native** — the PR 4 pipeline: search directly on the restricted move
  set (``mode="native"``), so the circuit lands on coupled pairs with
  zero SWAPs by construction.

Reported per row: physical CNOT costs of both pipelines, the native
saving, simulator verification, and the native engine's expansions/sec
(the nodes/sec methodology of ``bench_kernel``: expanded nodes over
elapsed search time).  The gate asserts what the differential suite
proves on the tax sweep — native cost never exceeds routed cost and
every row is verified — plus a floor on aggregate native savings, so CI
catches a native path that silently degrades into routing-or-worse.

Usage::

    PYTHONPATH=src python benchmarks/bench_topology.py            # full rows
    PYTHONPATH=src python benchmarks/bench_topology.py --smoke    # CI smoke

Results land in ``BENCH_topology.json`` at the repo root (the committed
snapshot) and ``benchmarks/results/bench_topology.txt``.
"""

from __future__ import annotations

import json
import pathlib
import sys
import time

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.arch.flow import prepare_on_device                  # noqa: E402
from repro.arch.topologies import named_topology               # noqa: E402
from repro.core.astar import SearchConfig, astar_search        # noqa: E402
from repro.states.families import (                            # noqa: E402
    dicke_state,
    ghz_state,
    w_state,
)
from repro.utils.fingerprint import stamp_benchmark            # noqa: E402
from repro.utils.tables import format_table                    # noqa: E402

#: Device families swept per state (each sized to the state's register).
FULL_FAMILIES = ("line", "ring", "grid", "heavy_hex")
SMOKE_FAMILIES = ("line", "ring")

FULL_STATES = [
    ("GHZ(4)", lambda: ghz_state(4)),
    ("W(4)", lambda: w_state(4)),
    ("D(4,2)", lambda: dicke_state(4, 2)),
    ("GHZ(5)", lambda: ghz_state(5)),
    ("W(5)", lambda: w_state(5)),
]

SMOKE_STATES = [
    ("GHZ(4)", lambda: ghz_state(4)),
    ("W(4)", lambda: w_state(4)),
    ("D(4,2)", lambda: dicke_state(4, 2)),
]

#: Required aggregate saving: total routed CNOTs / total native CNOTs.
#: Real ratios sit well above (routing pays 3 CNOTs per SWAP; native pays
#: only the true restricted optimum) — the floor catches a native path
#: that stopped searching natively.
FULL_THRESHOLD = 1.15
SMOKE_THRESHOLD = 1.1


def _native_nodes_per_sec(state, cmap) -> tuple[float, int]:
    """Expansions/sec of the native exact search itself (not the whole
    pipeline) — the engine-speed half of the headline."""
    start = time.perf_counter()
    result = astar_search(state, SearchConfig(topology=cmap))
    elapsed = time.perf_counter() - start
    return (result.stats.nodes_expanded / max(elapsed, 1e-9),
            result.stats.nodes_expanded)


def run_benchmark(states, families) -> dict:
    rows = []
    for label, make_state in states:
        state = make_state()
        for family in families:
            cmap = named_topology(family, state.num_qubits)
            if cmap.is_full():
                continue  # tiny registers can collapse ring->line->full
            t0 = time.perf_counter()
            routed = prepare_on_device(state, cmap, placement="greedy")
            routed_seconds = time.perf_counter() - t0
            t0 = time.perf_counter()
            native = prepare_on_device(state, cmap, mode="native")
            native_seconds = time.perf_counter() - t0
            nps, expanded = _native_nodes_per_sec(state, cmap)
            assert native.physical_cnots <= routed.physical_cnots, \
                f"native {native.physical_cnots} > routed " \
                f"{routed.physical_cnots} on {label}/{cmap.name}"
            assert routed.verified is True and native.verified is True
            rows.append({
                "state": label,
                "topology": cmap.name,
                "routed_cnots": routed.physical_cnots,
                "routed_swaps": routed.routed.swap_count,
                "native_cnots": native.physical_cnots,
                "saving_cnots": routed.physical_cnots
                - native.physical_cnots,
                "verified": True,
                "routed_seconds": round(routed_seconds, 4),
                "native_seconds": round(native_seconds, 4),
                "native_nodes_per_sec": round(nps, 1),
                "native_expanded": expanded,
            })
    total_routed = sum(r["routed_cnots"] for r in rows)
    total_native = sum(r["native_cnots"] for r in rows)
    return stamp_benchmark({
        "metric": "cnot saving = total routed physical CNOTs / total "
                  "native physical CNOTs over the device sweep (every row "
                  "simulator-verified; native never worse per row)",
        "rows": rows,
        "total_routed_cnots": total_routed,
        "total_native_cnots": total_native,
        "cnot_saving": round(total_routed / max(total_native, 1), 3),
    })


def render_table(report: dict) -> str:
    rows = []
    for row in report["rows"]:
        rows.append([
            row["state"], row["topology"],
            row["routed_cnots"], row["native_cnots"],
            row["saving_cnots"], row["routed_swaps"],
            f"{row['native_nodes_per_sec']:.0f}",
        ])
    rows.append(["total", "-", report["total_routed_cnots"],
                 report["total_native_cnots"],
                 report["total_routed_cnots"]
                 - report["total_native_cnots"], "-", "-"])
    return format_table(
        ["state", "topology", "routed CX", "native CX", "saved",
         "SWAPs", "native nodes/s"], rows,
        title="topology-native search vs place-and-route "
              "(all rows simulator-verified)")


def main(argv: list[str]) -> int:
    smoke = "--smoke" in argv
    states = SMOKE_STATES if smoke else FULL_STATES
    families = SMOKE_FAMILIES if smoke else FULL_FAMILIES
    threshold = SMOKE_THRESHOLD if smoke else FULL_THRESHOLD
    report = run_benchmark(states, families)
    report["mode"] = "smoke" if smoke else "full"
    report["threshold"] = threshold
    text = render_table(report)
    print(text)

    results_dir = REPO_ROOT / "benchmarks" / "results"
    results_dir.mkdir(exist_ok=True)
    suffix = "_smoke" if smoke else ""
    (results_dir / f"bench_topology{suffix}.txt").write_text(
        text + "\n", encoding="utf-8")
    # only the full run may refresh the committed headline snapshot
    out = (REPO_ROOT / "BENCH_topology.json" if not smoke
           else results_dir / "bench_topology_smoke.json")
    out.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
    print(f"\nwrote {out}")

    saving = report["cnot_saving"]
    if saving < threshold:
        print(f"FAIL: native CNOT saving {saving:.2f}x "
              f"< required {threshold:.2f}x", file=sys.stderr)
        return 1
    print(f"OK: native CNOT saving {saving:.2f}x >= {threshold:.2f}x "
          f"(native <= routed on every row, all verified)")
    return 0


def test_topology_benchmark_smoke(results_emitter):
    """Pytest entry: smoke rows + the regression floor (CI satellite)."""
    report = run_benchmark(SMOKE_STATES, SMOKE_FAMILIES)
    results_emitter("bench_topology_smoke", render_table(report))
    assert report["cnot_saving"] >= SMOKE_THRESHOLD


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))

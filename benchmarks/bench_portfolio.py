"""Portfolio scheduler benchmark — sequential line vs interleaved slices.

The sequential portfolio runs its lanes in order, so a slow lane blocks
every lane behind it.  No static order avoids the pathology — every lane
has a workload that is its worst case — and this benchmark pins it down
with a defensible order (memory-light IDA* prover first) on a workload
that happens to be IDA*'s nightmare: W-state plateaus make iterative
deepening re-search its whole budget, so the sequential line spends ~10 s
exhausting the first lane before the A* lane proves the same row in
under a second.  The interleaved scheduler (PR 5) time-slices all lanes
in one process instead: A* reaches its proof within its first slices
while IDA* has only consumed a slice or two, the proof cancels
everything else, and the request returns in roughly the prover's own
time — race-mode semantics with zero extra processes, which is what the
single-CPU serving host needs (``BENCH_service.json`` records that extra
processes only add overhead there).

Measured, per row and for the family total:

* **Sequential vs interleaved wall time** on the *same* spec list and
  budgets, with costs asserted identical (the acceptance property — the
  scheduler moves work around, it never changes results).
* **Deadline responsiveness**: the interleaved scheduler under a
  wall-clock deadline on a row no exact engine can finish — it must
  return a feasible (verified) circuit within the budget instead of an
  exception, the anytime contract of ``serve --deadline-ms``.

Usage::

    PYTHONPATH=src python benchmarks/bench_portfolio.py            # full
    PYTHONPATH=src python benchmarks/bench_portfolio.py --smoke    # CI gate

Results land in ``BENCH_portfolio.json`` at the repo root (the committed
snapshot) and ``benchmarks/results/bench_portfolio.txt``; both carry the
shared schema-version + regime-fingerprint stamp.
"""

from __future__ import annotations

import json
import pathlib
import sys
import time

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.core.astar import SearchConfig                      # noqa: E402
from repro.service.portfolio import (                          # noqa: E402
    EngineSpec,
    interleaved_portfolio,
    run_portfolio,
)
from repro.sim.verify import prepares_state                    # noqa: E402
from repro.states.families import dicke_state                  # noqa: E402
from repro.utils.fingerprint import stamp_benchmark            # noqa: E402
from repro.utils.tables import format_table                    # noqa: E402

#: The lane list both schedulers get: the memory-light IDA* prover
#: first, then the anytime beam and the A* lanes.  On the W-state
#: headline row IDA* is budget-bound (plateau re-search), so a
#: sequential line pays its whole budget before any other lane starts —
#: the blocked-line pathology the interleaved scheduler removes.
SPECS = (
    EngineSpec("idastar", "idastar"),
    EngineSpec("beam-wide", "beam", weight=1.5, width=512),
    EngineSpec("astar", "astar"),
    EngineSpec("astar-w2", "astar", weight=2.0),
)

#: (n, k) rows — all solvable to proven optimality by the A* lane, so
#: both schedulers terminate on a proof and cost identity is meaningful.
#: The headline (last) row is D(5,1) = W(5): IDA* exhausts the shared
#: node budget there while A* proves in a few hundred expansions.
FULL_ROWS = [(4, 1), (4, 2), (5, 1)]
SMOKE_ROWS = [(4, 2), (5, 1)]

#: Shared per-lane expansion budget: small enough that the blocked
#: sequential line stays benchmark-sized (~10 s), large enough that the
#: A* lane proves every row within it.
_MAX_NODES = 20_000
_TIME_LIMIT = 900.0

#: Required interleaved-over-sequential speedup on the headline row.
#: The real numbers sit far above these floors (the sequential line pays
#: IDA*'s full budget-bound run before the prover starts; measured ~6x);
#: the gate catches a scheduler that silently stopped interleaving or
#: cancelling.
FULL_SPEEDUP_THRESHOLD = 2.0
SMOKE_SPEEDUP_THRESHOLD = 1.5

#: Deadline-responsiveness check: the scheduler must return a feasible
#: circuit within this wall-clock budget on a row whose exact search
#: would run for minutes, overshooting by at most the slack factor.
DEADLINE_ROW = (6, 3)
DEADLINE_MS = 500.0
DEADLINE_SLACK = 4.0  # x the budget, generous for CI jitter


def _bench_rows(rows) -> dict:
    search = SearchConfig(max_nodes=_MAX_NODES, time_limit=_TIME_LIMIT)
    out_rows = []
    seq_total = il_total = 0.0
    for n, k in rows:
        state = dicke_state(n, k)
        start = time.perf_counter()
        sequential = run_portfolio(state, search, specs=SPECS)
        seq_seconds = time.perf_counter() - start
        start = time.perf_counter()
        interleaved = interleaved_portfolio(state, search, specs=SPECS)
        il_seconds = time.perf_counter() - start
        assert sequential.solved and interleaved.solved
        assert sequential.result.cnot_cost == \
            interleaved.result.cnot_cost, \
            f"D({n},{k}): interleaved cost " \
            f"{interleaved.result.cnot_cost} != sequential " \
            f"{sequential.result.cnot_cost}"
        assert sequential.result.optimal and interleaved.result.optimal
        assert prepares_state(interleaved.result.circuit, state)
        seq_total += seq_seconds
        il_total += il_seconds
        out_rows.append({
            "label": f"D({n},{k})",
            "cnot_cost": sequential.result.cnot_cost,
            "sequential_seconds": round(seq_seconds, 4),
            "interleaved_seconds": round(il_seconds, 4),
            "speedup": round(seq_seconds / max(il_seconds, 1e-9), 3),
            "sequential_winner": sequential.winner,
            "interleaved_winner": interleaved.winner,
            "interleaved_statuses": {
                a["name"]: a["status"]
                for a in interleaved.attempts},
        })
    return {
        "specs": [{"name": s.name, "engine": s.engine,
                   "weight": s.weight, "width": s.width} for s in SPECS],
        "rows": out_rows,
        "sequential_total_seconds": round(seq_total, 4),
        "interleaved_total_seconds": round(il_total, 4),
        "family_speedup": round(seq_total / max(il_total, 1e-9), 3),
        "headline_row": out_rows[-1]["label"],
        "headline_speedup": out_rows[-1]["speedup"],
    }


def _bench_deadline() -> dict:
    n, k = DEADLINE_ROW
    state = dicke_state(n, k)
    search = SearchConfig(max_nodes=1_000_000, time_limit=_TIME_LIMIT)
    start = time.perf_counter()
    outcome = interleaved_portfolio(state, search, specs=SPECS,
                                    deadline_ms=DEADLINE_MS)
    elapsed = time.perf_counter() - start
    assert outcome.deadline_expired, "deadline did not trigger"
    assert outcome.solved, "no feasible circuit at the deadline"
    assert not outcome.result.optimal
    assert prepares_state(outcome.result.circuit, state)
    assert elapsed <= (DEADLINE_MS / 1000.0) * DEADLINE_SLACK, \
        f"deadline overshoot: {elapsed:.2f}s for a " \
        f"{DEADLINE_MS:.0f} ms budget"
    return {
        "label": f"D({n},{k})",
        "deadline_ms": DEADLINE_MS,
        "elapsed_seconds": round(elapsed, 4),
        "feasible_cnot_cost": outcome.result.cnot_cost,
        "winner": outcome.winner,
    }


def run_benchmark(rows) -> dict:
    report = {
        "metric": "speedup = sequential portfolio seconds / interleaved "
                  "portfolio seconds, same specs and budgets, costs "
                  "asserted identical; headline = heaviest row",
        "portfolio": _bench_rows(rows),
        "deadline": _bench_deadline(),
    }
    return stamp_benchmark(
        report, SearchConfig(max_nodes=_MAX_NODES, time_limit=_TIME_LIMIT))


def render_table(report: dict) -> str:
    body = report["portfolio"]
    rows = []
    for row in body["rows"]:
        rows.append([row["label"], row["cnot_cost"],
                     f"{row['sequential_seconds']:.3f}",
                     f"{row['interleaved_seconds']:.3f}",
                     f"{row['speedup']:.2f}x",
                     row["interleaved_winner"]])
    rows.append(["family", "-",
                 f"{body['sequential_total_seconds']:.3f}",
                 f"{body['interleaved_total_seconds']:.3f}",
                 f"{body['family_speedup']:.2f}x", "-"])
    blocks = [format_table(
        ["state", "cnot", "sequential s", "interleaved s", "speedup",
         "winner"],
        rows,
        title="portfolio: sequential line vs interleaved time slices "
              "(same lanes/budgets, identical costs asserted; "
              "budget-bound IDA* lane first = the blocked-line "
              "pathology)")]
    deadline = report["deadline"]
    blocks.append(
        f"deadline: {deadline['label']} under a "
        f"{deadline['deadline_ms']:.0f} ms budget returned a feasible "
        f"{deadline['feasible_cnot_cost']}-CNOT circuit "
        f"(verified) in {deadline['elapsed_seconds']:.3f}s "
        f"via lane '{deadline['winner']}'")
    return "\n\n".join(blocks)


def main(argv: list[str]) -> int:
    smoke = "--smoke" in argv
    rows = SMOKE_ROWS if smoke else FULL_ROWS
    floor = SMOKE_SPEEDUP_THRESHOLD if smoke else FULL_SPEEDUP_THRESHOLD
    report = run_benchmark(rows)
    report["mode"] = "smoke" if smoke else "full"
    report["thresholds"] = {"headline_speedup": floor}
    text = render_table(report)
    print(text)

    results_dir = REPO_ROOT / "benchmarks" / "results"
    results_dir.mkdir(exist_ok=True)
    suffix = "_smoke" if smoke else ""
    (results_dir / f"bench_portfolio{suffix}.txt").write_text(
        text + "\n", encoding="utf-8")
    # only the full run may refresh the committed headline snapshot
    out = (REPO_ROOT / "BENCH_portfolio.json" if not smoke
           else results_dir / "bench_portfolio_smoke.json")
    out.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
    print(f"\nwrote {out}")

    headline = report["portfolio"]["headline_speedup"]
    if headline < floor:
        print(f"FAIL: interleaved headline speedup {headline:.2f}x "
              f"< required {floor:.1f}x", file=sys.stderr)
        return 1
    print(f"OK: interleaved headline speedup {headline:.2f}x >= "
          f"{floor:.1f}x at identical costs; deadline returned a "
          f"feasible circuit in "
          f"{report['deadline']['elapsed_seconds']:.3f}s")
    return 0


def test_portfolio_benchmark_smoke(results_emitter):
    """Pytest entry: smoke rows + the regression floors (CI satellite)."""
    report = run_benchmark(SMOKE_ROWS)
    results_emitter("bench_portfolio_smoke", render_table(report))
    assert report["portfolio"]["headline_speedup"] >= \
        SMOKE_SPEEDUP_THRESHOLD


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))

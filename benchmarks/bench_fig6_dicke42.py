"""E7 — Figure 6: the 6-CNOT circuit preparing ``|D^2_4>``.

The paper's headline artifact: exact synthesis halves the manual design's
12 CNOTs.  We regenerate a (possibly different, equally cheap) 6-CNOT
circuit, verify it by simulation, and print it.
"""

from __future__ import annotations

from conftest import emit

from repro.baselines.dicke_manual import manual_cnot_count
from repro.core.astar import SearchConfig
from repro.core.exact import ExactConfig, ExactSynthesizer
from repro.sim.verify import assert_prepares
from repro.states.families import dicke_state


def test_fig6_dicke42_six_cnots(benchmark, results_emitter):
    state = dicke_state(4, 2)
    cfg = ExactConfig(search=SearchConfig(max_nodes=200_000, time_limit=120))
    result = ExactSynthesizer(cfg).synthesize(state)
    assert_prepares(result.circuit, state)
    assert result.cnot_cost == 6
    assert result.optimal
    assert manual_cnot_count(4, 2) == 12

    lowered = result.circuit.decompose()
    text = ("Figure 6 - |D^2_4> with 6 CNOTs (manual design: 12; proven "
            "optimal by A*)\n\n"
            + result.circuit.draw()
            + f"\n\nlowered gate histogram: {lowered.count_by_name()}"
            + f"\nnodes expanded: {result.stats.nodes_expanded}")
    results_emitter("fig6_dicke42", text)

    benchmark.pedantic(
        lambda: ExactSynthesizer(cfg).synthesize(state).cnot_cost,
        rounds=1, iterations=1)

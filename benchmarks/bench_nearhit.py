"""Traffic-flywheel benchmark — PDB expansion reduction + near-hit latency.

Two phases, matching the two halves of the flywheel:

**Phase A — warm-corpus expansion reduction.**  A repeated-family trace
(GHZ / W / Dicke rows) runs twice through one ``SearchMemory`` with the
pattern database's admissible tier enabled, solved costs distilled into
the PDB exactly as the service does.  The second pass rides the
transposition table, heuristic stores, and PDB bound memo, so its total
expansions must drop.  Each unique row is also run *differentially* on
fresh memories — PDB tier off vs admissible — asserting identical costs
with never-more expansions (the soundness acceptance criterion), and the
distilled database must pass its admissibility audit.

**Phase B — near-hit serving latency.**  A warm service solves donor
targets (random sparse states — the paper's hard workload), then serves
*perturbed-weight variants* of them through ``op: fast``: an exact cache
miss with a same-signature neighbor, answered by re-angled replay of the
donor's move list plus a deadline-bounded suffix search, simulator-
verified before serving.  Each variant is also synthesized cold on a
fresh service; the headline ratio is total cold seconds over total
near-hit seconds, gated at 10x for the full run.

Usage::

    PYTHONPATH=src python benchmarks/bench_nearhit.py            # full rows
    PYTHONPATH=src python benchmarks/bench_nearhit.py --smoke    # CI smoke

Results land in ``BENCH_nearhit.json`` at the repo root (the committed
snapshot) and ``benchmarks/results/bench_nearhit.txt``.
"""

from __future__ import annotations

import json
import pathlib
import sys

import numpy as np

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.core.astar import SearchConfig                      # noqa: E402
from repro.core.idastar import IDAStarConfig, idastar_search   # noqa: E402
from repro.core.memory import SearchMemory                     # noqa: E402
from repro.core.pdb import entanglement_signature              # noqa: E402
from repro.service.server import SynthesisService              # noqa: E402
from repro.states.families import (                            # noqa: E402
    dicke_state,
    ghz_state,
    w_state,
)
from repro.states.qstate import QState                         # noqa: E402
from repro.states.random_states import random_sparse_state     # noqa: E402
from repro.utils.fingerprint import stamp_benchmark            # noqa: E402
from repro.utils.serialization import state_to_dict            # noqa: E402
from repro.utils.tables import format_table                    # noqa: E402

#: Phase A trace rows (label, state factory) — repeated-family traffic.
FULL_TRACE = [
    ("GHZ(4)", lambda: ghz_state(4)),
    ("GHZ(5)", lambda: ghz_state(5)),
    ("GHZ(6)", lambda: ghz_state(6)),
    ("W(4)", lambda: w_state(4)),
    ("D(4,2)", lambda: dicke_state(4, 2)),
]
SMOKE_TRACE = [
    ("GHZ(4)", lambda: ghz_state(4)),
    ("W(4)", lambda: w_state(4)),
    ("D(4,2)", lambda: dicke_state(4, 2)),
]

#: Phase B donor families: (register size, donor seed, variant seeds).
#: Donors are random sparse states (m = n terms) — the workload whose
#: cold synthesis is actually expensive; variants perturb the weights
#: (same support, same signature) so the near-hit tier can adapt.
#: Rows stop at n=5: a perturbed n=6 variant's *cold baseline* can blow
#: past 10 GB of A* frontier (the very pathology near-hit serving
#: avoids), which is no way to run a repeatable benchmark.
FULL_NEARHIT = [(5, 2024, [101, 202, 303])]
SMOKE_NEARHIT = [(4, 2024, [101, 202])]

#: Gates. Phase A: pass-1 / pass-2 total expansions. Phase B: total cold
#: seconds / total fast seconds (near-hit adaptation + verification).
FULL_EXPANSION_REDUCTION = 2.0
SMOKE_EXPANSION_REDUCTION = 1.2
FULL_LATENCY_RATIO = 10.0
SMOKE_LATENCY_RATIO = 2.0

_SEARCH = SearchConfig(max_nodes=2_000_000, time_limit=300.0)


def _perturbed_variant(state: QState, seed: int,
                       scale: float = 0.05) -> QState:
    """Same support, weights nudged ~5%: an exact miss, a signature hit."""
    rng = np.random.default_rng(seed)
    pert = {idx: amp * (1.0 + scale * rng.standard_normal())
            for idx, amp in state.items()}
    return QState(state.num_qubits, pert)


def run_flywheel(trace) -> dict:
    """Phase A: repeated trace through one memory + per-row differential."""
    shared = SearchMemory()
    passes = []
    differential = []
    for pass_idx in (1, 2):
        expanded = 0
        rows = []
        for label, factory in trace:
            state = factory()
            result = idastar_search(
                state, IDAStarConfig(search=_SEARCH,
                                     pdb_tier="admissible"),
                memory=shared)
            # distill the settled cost exactly as the service does
            shared.pdb.observe(entanglement_signature(state),
                               solved_cost=result.cnot_cost,
                               optimal=result.optimal)
            expanded += result.stats.nodes_expanded
            rows.append({"label": label, "cnot_cost": result.cnot_cost,
                         "expanded": result.stats.nodes_expanded})
            if pass_idx == 1:
                off = idastar_search(
                    state, IDAStarConfig(search=_SEARCH, pdb_tier="off"),
                    memory=SearchMemory())
                on = idastar_search(
                    state, IDAStarConfig(search=_SEARCH,
                                         pdb_tier="admissible"),
                    memory=SearchMemory())
                assert on.cnot_cost == off.cnot_cost, \
                    f"{label}: PDB changed the cost " \
                    f"({off.cnot_cost} -> {on.cnot_cost})"
                assert on.optimal == off.optimal, \
                    f"{label}: PDB changed the optimality claim"
                assert on.stats.nodes_expanded <= \
                    off.stats.nodes_expanded, \
                    f"{label}: PDB expanded more nodes"
                differential.append({
                    "label": label,
                    "cnot_cost": on.cnot_cost,
                    "expanded_off": off.stats.nodes_expanded,
                    "expanded_on": on.stats.nodes_expanded,
                })
        passes.append({"pass": pass_idx, "expanded": expanded,
                       "rows": rows})
    violations = shared.pdb.audit()
    assert violations == [], f"PDB admissibility audit failed: {violations}"
    reduction = passes[0]["expanded"] / max(passes[1]["expanded"], 1)
    return {"passes": passes, "differential": differential,
            "expansion_reduction": round(reduction, 3),
            "pdb": shared.pdb.snapshot(), "audit_violations": 0}


def run_nearhit(families) -> dict:
    """Phase B: warm fast serving vs cold synthesis of each variant."""
    warm = SynthesisService()
    donors = []
    for n, seed, _variants in families:
        state = random_sparse_state(n, seed=seed)
        response = warm.handle({"op": "exact",
                                "state": state_to_dict(state)})
        assert response["ok"], f"donor rs{n} failed: {response}"
        donors.append({"label": f"rs({n})", "n": n,
                       "cnot_cost": response["cnot_cost"],
                       "seconds": response["seconds"]})
    rows = []
    fast_total = 0.0
    cold_total = 0.0
    for (n, seed, variant_seeds), donor in zip(families, donors):
        base = random_sparse_state(n, seed=seed)
        for vseed in variant_seeds:
            variant = _perturbed_variant(base, vseed)
            fast = warm.handle({"op": "fast",
                                "state": state_to_dict(variant)})
            assert fast["ok"], f"fast rs{n} v{vseed} failed: {fast}"
            assert fast.get("verified") is True, \
                f"fast rs{n} v{vseed} served unverified: {fast}"
            cold = SynthesisService()
            cold_response = cold.handle(
                {"op": "exact", "state": state_to_dict(variant)})
            assert cold_response["ok"]
            fast_total += fast["seconds"]
            cold_total += cold_response["seconds"]
            rows.append({
                "label": f"rs({n}) v{vseed}",
                "near_hit": bool(fast.get("near_hit")),
                "fast_cost": fast["cnot_cost"],
                "cold_cost": cold_response["cnot_cost"],
                "fast_seconds": round(fast["seconds"], 5),
                "cold_seconds": round(cold_response["seconds"], 5),
                "speedup": round(cold_response["seconds"]
                                 / max(fast["seconds"], 1e-9), 2),
            })
    stats = warm.stats()
    return {"donors": donors, "rows": rows,
            "fast_seconds": round(fast_total, 4),
            "cold_seconds": round(cold_total, 4),
            "latency_ratio": round(cold_total / max(fast_total, 1e-9), 2),
            "nearhit_counters": stats["nearhit"],
            "signature_index": stats["signature_index"]}


def run_benchmark(trace, families) -> dict:
    flywheel = run_flywheel(trace)
    nearhit = run_nearhit(families)
    return stamp_benchmark({
        "metric": "expansion_reduction = trace pass-1 / pass-2 expansions "
                  "(one memory, admissible PDB); latency_ratio = cold "
                  "synthesis seconds / near-hit fast-serving seconds "
                  "(verified outputs)",
        "flywheel": flywheel,
        "nearhit": nearhit,
    })


def render_table(report: dict) -> str:
    fly = report["flywheel"]
    rows = [[d["label"], d["cnot_cost"], d["expanded_off"],
             d["expanded_on"]] for d in fly["differential"]]
    block_a = format_table(
        ["state", "cnot", "expanded off", "expanded on"], rows,
        title=f"PDB differential (identical costs; trace expansion "
              f"reduction {fly['expansion_reduction']:.2f}x, audit clean)")
    rows = [[r["label"], "yes" if r["near_hit"] else "no",
             r["fast_cost"], r["cold_cost"],
             f"{r['fast_seconds']:.4f}", f"{r['cold_seconds']:.4f}",
             f"{r['speedup']:.1f}x"] for r in report["nearhit"]["rows"]]
    block_b = format_table(
        ["variant", "near-hit", "fast cnot", "cold cnot",
         "fast s", "cold s", "speedup"], rows,
        title=f"near-hit serving vs cold synthesis (all verified; total "
              f"ratio {report['nearhit']['latency_ratio']:.1f}x)")
    return block_a + "\n\n" + block_b


def main(argv: list[str]) -> int:
    smoke = "--smoke" in argv
    trace = SMOKE_TRACE if smoke else FULL_TRACE
    families = SMOKE_NEARHIT if smoke else FULL_NEARHIT
    reduction_floor = SMOKE_EXPANSION_REDUCTION if smoke \
        else FULL_EXPANSION_REDUCTION
    ratio_floor = SMOKE_LATENCY_RATIO if smoke else FULL_LATENCY_RATIO
    report = run_benchmark(trace, families)
    report["mode"] = "smoke" if smoke else "full"
    report["thresholds"] = {"expansion_reduction": reduction_floor,
                            "latency_ratio": ratio_floor}
    text = render_table(report)
    print(text)

    results_dir = REPO_ROOT / "benchmarks" / "results"
    results_dir.mkdir(exist_ok=True)
    suffix = "_smoke" if smoke else ""
    (results_dir / f"bench_nearhit{suffix}.txt").write_text(
        text + "\n", encoding="utf-8")
    # only the full run may refresh the committed headline snapshot
    out = (REPO_ROOT / "BENCH_nearhit.json" if not smoke
           else results_dir / "bench_nearhit_smoke.json")
    out.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
    print(f"\nwrote {out}")

    reduction = report["flywheel"]["expansion_reduction"]
    ratio = report["nearhit"]["latency_ratio"]
    failed = False
    if reduction < reduction_floor:
        print(f"FAIL: trace expansion reduction {reduction:.2f}x "
              f"< required {reduction_floor:.1f}x", file=sys.stderr)
        failed = True
    if ratio < ratio_floor:
        print(f"FAIL: near-hit latency ratio {ratio:.2f}x "
              f"< required {ratio_floor:.1f}x", file=sys.stderr)
        failed = True
    if failed:
        return 1
    print(f"OK: expansion reduction {reduction:.2f}x >= "
          f"{reduction_floor:.1f}x, near-hit latency ratio "
          f"{ratio:.2f}x >= {ratio_floor:.1f}x")
    return 0


def test_nearhit_benchmark_smoke(results_emitter):
    """Pytest entry: smoke rows + the regression floors (CI satellite)."""
    report = run_benchmark(SMOKE_TRACE, SMOKE_NEARHIT)
    results_emitter("bench_nearhit_smoke", render_table(report))
    assert report["flywheel"]["expansion_reduction"] >= \
        SMOKE_EXPANSION_REDUCTION
    assert report["nearhit"]["latency_ratio"] >= SMOKE_LATENCY_RATIO


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))

"""Shared helpers for the benchmark harness.

Environment knobs:

* ``REPRO_SAMPLES``   — random states per table row (default 3; paper: 100).
* ``REPRO_BENCH_FULL``— set to 1 to run paper-scale sizes (slow).

Every benchmark prints its paper-style table and also writes it under
``benchmarks/results/`` so the artifact survives output capture.
"""

from __future__ import annotations

import os
import pathlib
import sys

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def samples() -> int:
    return int(os.environ.get("REPRO_SAMPLES", "3"))


def full_scale() -> bool:
    return os.environ.get("REPRO_BENCH_FULL", "0") == "1"


def emit(name: str, text: str) -> None:
    """Print a result table and persist it under benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n", encoding="utf-8")
    # stderr survives pytest's capture settings better than stdout
    print(f"\n{text}", file=sys.stderr)


@pytest.fixture
def results_emitter():
    return emit

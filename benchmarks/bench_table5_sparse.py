"""E6 — Table V (bottom): sparse random states, ``m = n``.

Reports m-flow / n-flow / hybrid / ours average CNOT counts and the
improvement over m-flow (the strongest sparse baseline); the paper reports
32% on average, roughly flat in ``n``.

Default ``n`` up to 14 (20 with ``REPRO_BENCH_FULL=1``, the paper's limit).
"""

from __future__ import annotations

import numpy as np
from conftest import emit, full_scale, samples

from repro.baselines.hybrid import hybrid_cnot_count
from repro.baselines.mflow import mflow_cnot_count
from repro.baselines.nflow import nflow_cnot_count
from repro.core.astar import SearchConfig
from repro.core.beam import BeamConfig
from repro.core.exact import ExactConfig
from repro.qsp.config import QSPConfig
from repro.qsp.workflow import prepare_state
from repro.states.random_states import benchmark_suite
from repro.utils.tables import format_table, geometric_mean, improvement_percent

PAPER_IMPROVEMENT = {3: 37, 4: 34, 5: 36, 6: 36, 7: 33, 8: 30, 9: 29,
                     10: 33, 11: 33, 12: 32, 13: 31, 14: 30, 15: 30,
                     16: 31, 17: 31, 18: 29, 19: 28, 20: 28}

#: The paper's own "ours" column (Table V bottom) — the direct
#: reproduction check: our workflow should land close to these.
PAPER_OURS = {3: 3, 4: 6, 5: 9, 6: 14, 7: 20, 8: 27, 9: 37, 10: 44,
              11: 54, 12: 66, 13: 78, 14: 91, 15: 106, 16: 119, 17: 139,
              18: 155, 19: 173, 20: 192}


def _bench_config() -> QSPConfig:
    return QSPConfig(
        exact=ExactConfig(
            search=SearchConfig(max_nodes=25_000, time_limit=10.0),
            beam=BeamConfig(width=96, time_limit=6.0),
            beam_fallback=True, verify=False),
        verify_max_qubits=8)


def test_table5_sparse(benchmark, results_emitter):
    max_n = 20 if full_scale() else 14
    config = _bench_config()
    rows = []
    ours_all = []
    mflow_all = []
    for n in range(3, max_n + 1):
        states = benchmark_suite(n, sparse=True, count=samples())
        ours = float(np.mean([prepare_state(s, config).cnot_cost
                              for s in states]))
        mflow = float(np.mean([mflow_cnot_count(s) for s in states]))
        hybrid = float(np.mean([hybrid_cnot_count(s) for s in states]))
        nflow = nflow_cnot_count(n)
        impr = improvement_percent(mflow, ours)
        ours_all.append(ours)
        mflow_all.append(mflow)
        rows.append([n, n, round(mflow, 1), nflow, round(hybrid, 1),
                     round(ours, 1), PAPER_OURS.get(n, "-"),
                     f"{impr:.0f}%", f"{PAPER_IMPROVEMENT.get(n, 0)}%"])
        assert ours <= mflow + 1e-9, \
            f"sparse n={n}: ours must not exceed m-flow"
    gm_impr = improvement_percent(geometric_mean(mflow_all),
                                  geometric_mean(ours_all))
    text = format_table(
        ["n", "m", "m-flow", "n-flow", "hybrid", "ours", "paper(ours)",
         "impr% vs m-flow", "paper impr%"], rows,
        title=f"Table V (sparse, m = n; avg of {samples()} states)")
    text += f"\n  geo-mean improvement vs m-flow: {gm_impr:.0f}% (paper: 32%)"
    text += ("\n  note: our reimplemented m-flow baseline is markedly "
             "stronger than the paper's\n  (e.g. paper m-flow at n=14: 130 "
             "vs ours above), so the improvement column\n  shrinks while "
             "the ours column itself tracks the paper's ours closely.")
    results_emitter("table5_sparse", text)

    small = benchmark_suite(8, sparse=True, count=1)[0]
    benchmark.pedantic(lambda: prepare_state(small, config).cnot_cost,
                       rounds=1, iterations=1)

"""EX3 — search-engine ablation: Dijkstra / A* / combined-A* / IDA* / beam.

All optimal engines must return the same CNOT cost on every instance; the
table records expansions and wall time, quantifying the value of the
paper's admissible heuristic (A* vs Dijkstra) and of the Schmidt-cut
extension.
"""

from __future__ import annotations

from conftest import emit

from repro.core.astar import SearchConfig
from repro.experiments.search_variants import (
    search_variant_rows,
    search_variants_experiment,
)
from repro.states.families import dicke_state, ghz_state
from repro.states.qstate import QState
from repro.states.random_states import random_uniform_state


def _instances():
    return [
        ("motivating", QState.uniform(3, [0b000, 0b011, 0b101, 0b110])),
        ("ghz4", ghz_state(4)),
        ("dicke(4,2)", dicke_state(4, 2)),
        ("rand(4,4)", random_uniform_state(4, 4, seed=3)),
        ("rand(4,8)", random_uniform_state(4, 8, seed=4)),
    ]


def test_search_variants(benchmark, results_emitter):
    budget = SearchConfig(max_nodes=250_000, time_limit=120.0)
    instances = _instances()
    rows = search_variant_rows(instances, budget)

    for label, _ in instances:
        per = [r for r in rows if r.instance == label]
        optimum = {r.cnot_cost for r in per if r.optimal}
        assert len(optimum) == 1, f"{label}: optimal engines disagree"
        dijkstra = next(r for r in per if r.engine == "dijkstra")
        astar = next(r for r in per if r.engine == "astar(paper)")
        assert astar.nodes_expanded <= dijkstra.nodes_expanded

    table = search_variants_experiment(instances, budget)
    results_emitter("ex3_search_variants", table.to_text())

    benchmark.pedantic(
        lambda: search_variant_rows(
            [("ghz4", ghz_state(4))], SearchConfig(max_nodes=50_000)),
        rounds=1, iterations=1)

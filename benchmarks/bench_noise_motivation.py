"""EX1 — noise motivation: CNOT savings expressed as preparation fidelity.

Backs the paper's Sec. I premise quantitatively: synthesize each benchmark
state with ours / m-flow / n-flow, then score all three under the same
depolarizing noise model.  Fewer CNOTs must translate into a higher
no-fault fidelity bound wherever the CNOT gap dominates the (10x cheaper)
single-qubit gate counts.
"""

from __future__ import annotations

from conftest import emit

from repro.experiments.noise_gap import noise_gap_experiment, noise_gap_rows
from repro.sim.noise import NoiseModel
from repro.states.families import dicke_state, ghz_state, w_state
from repro.states.random_states import random_sparse_state

_NOISE = NoiseModel(p_cx=1e-2, p_1q=1e-3)


def _states():
    return [
        ("ghz4", ghz_state(4)),
        ("w4", w_state(4)),
        ("dicke(4,2)", dicke_state(4, 2)),
        ("dicke(5,2)", dicke_state(5, 2)),
        ("sparse(6,6)", random_sparse_state(6, seed=1)),
    ]


def test_noise_motivation(benchmark, results_emitter):
    states = _states()
    rows = noise_gap_rows(states, _NOISE)
    for row in rows:
        assert row.ours_cnots <= row.mflow_cnots
        if row.ours_exact is not None:
            # the analytic product is a lower bound of the exact fidelity
            assert row.ours_bound <= row.ours_exact + 1e-9
    table = noise_gap_experiment(states, _NOISE)
    results_emitter("ex1_noise_motivation", table.to_text())

    benchmark.pedantic(
        lambda: noise_gap_rows([("ghz4", ghz_state(4))], _NOISE),
        rounds=1, iterations=1)

"""E4 — Table IV: CNOT counts for Dicke state preparation.

Columns: manual design (Mukherjee formula), m-flow, n-flow, hybrid
(one ancilla), and ours (exact synthesis: budgeted A*, beam fallback for
the rows the budget cannot prove).  A final row reports geometric means
and the improvement over the manual design, like the paper.

Default budgets prove optimality for (3,1), (4,1), (4,2), (5,1), (5,2) and
(6,1); the (6,2)/(6,3) rows use the anytime engine unless
``REPRO_BENCH_FULL=1`` grants them a large A* budget.
"""

from __future__ import annotations

from conftest import emit, full_scale

from repro.baselines.dicke_manual import manual_cnot_count
from repro.baselines.hybrid import hybrid_cnot_count
from repro.baselines.mflow import mflow_cnot_count
from repro.baselines.nflow import nflow_cnot_count
from repro.core.astar import SearchConfig
from repro.core.beam import BeamConfig
from repro.core.exact import ExactConfig, ExactSynthesizer
from repro.states.families import dicke_state
from repro.utils.tables import format_table, geometric_mean, improvement_percent

PAPER_OURS = {(3, 1): 4, (4, 1): 7, (4, 2): 6, (5, 1): 10, (5, 2): 16,
              (6, 1): 13, (6, 2): 22, (6, 3): 25}

#: (max_nodes, time_limit) of the optimal engine per row, default scale.
_BUDGETS = {
    (3, 1): (50_000, 30), (4, 1): (50_000, 30), (4, 2): (50_000, 60),
    (5, 1): (100_000, 90), (5, 2): (200_000, 240), (6, 1): (200_000, 180),
    (6, 2): (0, 0), (6, 3): (0, 0),  # beam-only by default
}


def _synthesize(n: int, k: int):
    max_nodes, time_limit = _BUDGETS[(n, k)]
    if full_scale():
        max_nodes, time_limit = 2_000_000, 3000
    if max_nodes == 0:
        # anytime portfolio for the rows whose optimality the default
        # budget cannot prove: best of two beam widths (wider beams need
        # longer but land materially better incumbents on these rows)
        from repro.core.beam import beam_search
        candidates = [
            beam_search(dicke_state(n, k),
                        BeamConfig(width=192, time_limit=120)),
            beam_search(dicke_state(n, k),
                        BeamConfig(width=768, time_limit=300)),
        ]
        return min(candidates, key=lambda r: r.cnot_cost)
    cfg = ExactConfig(
        search=SearchConfig(max_nodes=max_nodes, time_limit=time_limit),
        beam=BeamConfig(width=192, time_limit=120),
        beam_fallback=True)
    return ExactSynthesizer(cfg).synthesize(dicke_state(n, k))


def test_table4_dicke(benchmark, results_emitter):
    rows = []
    cols = {"manual": [], "mflow": [], "nflow": [], "hybrid": [], "ours": []}
    for (n, k) in sorted(PAPER_OURS):
        state = dicke_state(n, k)
        manual = manual_cnot_count(n, k)
        mflow = mflow_cnot_count(state)
        nflow = nflow_cnot_count(n)
        hybrid = hybrid_cnot_count(state)
        result = _synthesize(n, k)
        ours = result.cnot_cost
        tag = "*" if result.optimal else ""
        rows.append([n, k, manual, mflow, nflow, hybrid,
                     f"{ours}{tag}", PAPER_OURS[(n, k)]])
        for name, val in (("manual", manual), ("mflow", mflow),
                          ("nflow", nflow), ("hybrid", hybrid),
                          ("ours", ours)):
            cols[name].append(val)
        # The paper's claim (automation <= manual) holds wherever the
        # search budget proves optimality; beam-only rows report the
        # best-found value honestly and may lose to the manual formula
        # (grant REPRO_BENCH_FULL=1 budgets to prove those rows too).
        if result.optimal:
            assert ours <= manual, \
                f"D({n},{k}): proven-optimal must beat manual"

    # headline: |D^2_4> halves the manual design's 12 CNOTs
    d42 = dict(zip(sorted(PAPER_OURS), cols["ours"]))[(4, 2)]
    assert d42 == 6, f"|D^2_4> must synthesize with 6 CNOTs, got {d42}"

    means = {name: geometric_mean(vals) for name, vals in cols.items()}
    rows.append(["-", "-", round(means["manual"], 1),
                 round(means["mflow"], 1), round(means["nflow"], 1),
                 round(means["hybrid"], 1), round(means["ours"], 1), 10.9])
    impr = improvement_percent(means["manual"], means["ours"])
    text = format_table(
        ["n", "k", "manual", "m-flow", "n-flow", "hybrid", "ours",
         "paper(ours)"], rows,
        title="Table IV - Dicke state CNOT counts "
              "(* = proven optimal; last row geo. mean)")
    text += (f"\n  improvement over manual design: {impr:.0f}% "
             f"(paper: 17%)")
    results_emitter("table4_dicke", text)

    benchmark.pedantic(lambda: _synthesize(4, 2).cnot_cost,
                       rounds=1, iterations=1)

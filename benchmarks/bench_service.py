"""Service benchmark — cold vs snapshot-warm vs cache-hit, plus batch.

Measures what the service layer adds on top of in-process memory reuse
(``bench_memory.py``'s territory): everything here crosses a *process or
request boundary*.

* **Snapshot warm start.**  A cold A* family pass populates a
  :class:`~repro.core.memory.SearchMemory`; the memory is persisted to
  disk and loaded back into a *fresh* memory (a service boot), and the
  booted memory serves the family twice — the repeated-traffic regime
  the service exists for.  Reported: cold family seconds vs the booted
  service's amortized per-family seconds (snapshot load included), plus
  the first-pass and steady-state passes separately — costs asserted
  identical throughout, disk round trip included.  The first pass is
  slower than steady state because the snapshot deliberately carries no
  interning pool (per-process hashes); pass 2 onward matches the
  in-process warm numbers of ``bench_memory.py``.
* **Request cache.**  Every row is requested twice through a
  :class:`~repro.service.server.SynthesisService`; the second round hits
  the request cache, so its latency is a hash lookup + payload check.
  Reported: mean miss vs hit latency and their ratio.
* **Batch scaling.**  A repeated request stream (a few moderate Dicke
  rows, many repeats — service traffic, not one monolithic search) goes
  through :func:`repro.service.portfolio.run_batch` at increasing worker
  counts, every worker seeded from a snapshot of those rows.  Costs are
  asserted identical across worker counts *and* identical to a cold
  single-process run without any snapshot (the acceptance property);
  throughput (rows/sec) is reported per worker count together with the
  host CPU count — on a single-CPU container the extra workers can only
  add overhead, so the gate is cost identity, not scaling.
* **Portfolio sanity.**  On sample rows, the sequential portfolio's cost
  is asserted no worse than the best single engine under the same
  budgets (the acceptance property of first-optimal-wins + best-of).

Usage::

    PYTHONPATH=src python benchmarks/bench_service.py            # full
    PYTHONPATH=src python benchmarks/bench_service.py --smoke    # CI gate

Results land in ``BENCH_service.json`` at the repo root (the committed
snapshot) and ``benchmarks/results/bench_service.txt``; both carry the
shared schema-version + regime-fingerprint stamp.
"""

from __future__ import annotations

import json
import os
import pathlib
import sys
import tempfile
import time

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.core.astar import SearchConfig                      # noqa: E402
from repro.core.memory import SearchMemory                     # noqa: E402
from repro.exceptions import SearchBudgetExceeded              # noqa: E402
from repro.experiments.family_runner import (                  # noqa: E402
    FamilyRunConfig,
    run_family,
)
from repro.service.persistence import (                        # noqa: E402
    load_memory_snapshot,
    save_memory_snapshot,
)
from repro.service.portfolio import (                          # noqa: E402
    run_batch,
    run_engine_spec,
    run_portfolio,
    default_portfolio,
)
from repro.service.server import (                             # noqa: E402
    ServiceConfig,
    SynthesisService,
)
from repro.states.families import dicke_state                  # noqa: E402
from repro.utils.fingerprint import stamp_benchmark            # noqa: E402
from repro.utils.tables import format_table                    # noqa: E402

#: (n, k, node budget) — mirrors the A* rows of bench_memory.py: small
#: rows are solved to optimality, heavy rows expand a fixed budget slice.
FULL_ROWS = [
    (3, 1, 50_000),
    (4, 1, 50_000),
    (4, 2, 100_000),
    (5, 1, 100_000),
    (5, 2, 4_000),
    (6, 2, 1_200),
    (6, 3, 700),
]

SMOKE_ROWS = [
    (4, 1, 50_000),
    (4, 2, 100_000),
    (6, 2, 250),
]

#: Batch base rows are solvable, moderate-cost targets (cost identity
#: across worker counts is the point, so every row must produce a
#: definite cost); the stream repeats them ``*_BATCH_REPEAT`` times to
#: model service traffic that sharding can actually spread out.
FULL_BATCH_ROWS = [(4, 1), (4, 2), (5, 1)]
SMOKE_BATCH_ROWS = [(3, 1), (4, 1), (4, 2)]
FULL_BATCH_REPEAT = 8
SMOKE_BATCH_REPEAT = 3
_BATCH_MAX_NODES = 50_000

FULL_WORKER_COUNTS = (1, 2, 4)
SMOKE_WORKER_COUNTS = (1, 2)

#: Required ratios, per mode.  Real numbers sit far above these floors
#: (the full snapshot-warm speedup tracks bench_memory's in-process 3.6x
#: minus the disk round trip; a cache hit is microseconds); the gate only
#: catches a service layer that silently stopped reusing anything.
FULL_WARM_THRESHOLD = 2.0
SMOKE_WARM_THRESHOLD = 1.1
FULL_CACHE_THRESHOLD = 50.0
SMOKE_CACHE_THRESHOLD = 10.0

_TIME_LIMIT = 900.0


def _family_pass(rows, memory: SearchMemory) -> dict:
    start = time.perf_counter()
    out_rows = []
    for n, k, budget in rows:
        config = FamilyRunConfig(
            engine="astar",
            search=SearchConfig(max_nodes=budget, time_limit=_TIME_LIMIT,
                                cache_cap=1 << 24))
        report = run_family([(f"D({n},{k})", dicke_state(n, k))], config,
                            memory=memory)
        out_rows.extend(report.rows)
    return {"seconds": time.perf_counter() - start, "rows": out_rows}


#: Warm family passes served by one booted (snapshot-loaded) memory; the
#: amortized per-family time — (load + sum of passes) / passes — is the
#: steady-state cost a service pays per family of repeated traffic.
_WARM_PASSES = 2


def _bench_snapshot(rows, snapshot_path: pathlib.Path) -> dict:
    cold_memory = SearchMemory()
    cold = _family_pass(rows, cold_memory)
    save_start = time.perf_counter()
    save_memory_snapshot(cold_memory, snapshot_path)
    save_seconds = time.perf_counter() - save_start
    load_start = time.perf_counter()
    warm_memory = load_memory_snapshot(snapshot_path)
    load_seconds = time.perf_counter() - load_start
    warm_passes = [_family_pass(rows, warm_memory)
                   for _ in range(_WARM_PASSES)]
    per_row = []
    for c, *ws in zip(cold["rows"], *(w["rows"] for w in warm_passes)):
        for w in ws:
            assert c.label == w.label
            assert c.cnot_cost == w.cnot_cost, \
                f"{c.label}: cold {c.cnot_cost} != snapshot-warm " \
                f"{w.cnot_cost}"
        per_row.append({
            "label": c.label, "solved": c.solved, "cnot_cost": c.cnot_cost,
            "cold_seconds": round(c.seconds, 4),
            "warm_seconds": [round(w.seconds, 4) for w in ws],
            "warm_speedup": round(c.seconds / max(ws[-1].seconds, 1e-9), 3),
        })
    pass_seconds = [round(w["seconds"], 4) for w in warm_passes]
    amortized = (load_seconds + sum(p["seconds"] for p in warm_passes)) \
        / len(warm_passes)
    return {
        "rows": per_row,
        "cold_seconds": round(cold["seconds"], 4),
        "warm_pass_seconds": pass_seconds,
        "warm_amortized_seconds": round(amortized, 4),
        "snapshot_save_seconds": round(save_seconds, 4),
        "snapshot_load_seconds": round(load_seconds, 4),
        "snapshot_bytes": snapshot_path.stat().st_size,
        "first_pass_speedup": round(
            cold["seconds"] / max(load_seconds + pass_seconds[0], 1e-9), 3),
        "steady_pass_speedup": round(
            cold["seconds"] / max(pass_seconds[-1], 1e-9), 3),
        "warm_speedup": round(cold["seconds"] / max(amortized, 1e-9), 3),
    }


def _bench_cache(batch_rows) -> dict:
    service = SynthesisService(ServiceConfig(
        search=SearchConfig(max_nodes=_BATCH_MAX_NODES,
                            time_limit=_TIME_LIMIT)))
    requests = [{"id": f"D({n},{k})", "op": "exact", "dicke": [n, k]}
                for n, k in batch_rows]
    lat = {"miss": [], "hit": []}
    costs = {}
    for label in ("miss", "hit"):
        for request in requests:
            start = time.perf_counter()
            response = service.handle(request)
            lat[label].append(time.perf_counter() - start)
            assert response["ok"], response
            assert response["cached"] == (label == "hit"), response
            prev = costs.setdefault(request["id"], response["cnot_cost"])
            assert prev == response["cnot_cost"]
    miss = sum(lat["miss"]) / len(lat["miss"])
    hit = sum(lat["hit"]) / len(lat["hit"])
    return {
        "requests": len(requests),
        "mean_miss_seconds": round(miss, 6),
        "mean_hit_seconds": round(hit, 6),
        "hit_speedup": round(miss / max(hit, 1e-9), 1),
    }


def _bench_batch(batch_rows, repeat, worker_counts, tmp_dir) -> dict:
    requests = [(f"{i}:D({n},{k})", dicke_state(n, k))
                for i in range(repeat) for n, k in batch_rows]
    search = SearchConfig(max_nodes=_BATCH_MAX_NODES,
                          time_limit=_TIME_LIMIT)
    # The batch snapshot covers exactly the base rows (a family run over
    # the traffic the batch will see), so worker boots stay cheap.
    seed_memory = SearchMemory()
    for n, k in batch_rows:
        run_family([(f"D({n},{k})", dicke_state(n, k))],
                   FamilyRunConfig(engine="astar", search=search),
                   memory=seed_memory)
    snapshot_path = pathlib.Path(tmp_dir) / "bench_batch.qspmem.gz"
    save_memory_snapshot(seed_memory, snapshot_path)

    def costs_of(rows):
        assert all(row.get("solved") for row in rows), rows
        return {row["id"]: row.get("cnot_cost") for row in rows}

    # acceptance baseline: cold single process, no snapshot
    cold_start = time.perf_counter()
    cold_rows = run_batch(requests, search, workers=1)
    cold_seconds = time.perf_counter() - cold_start
    baseline_costs = costs_of(cold_rows)
    scaling = []
    for workers in worker_counts:
        # each scaling point is a freshly booted service: snapshot-seeded
        # parent memory, workers seeded from the same snapshot, worker
        # deltas merged back (the full production batch path)
        parent = load_memory_snapshot(snapshot_path)
        start = time.perf_counter()
        rows = run_batch(requests, search, snapshot_path=snapshot_path,
                         workers=workers, memory=parent)
        elapsed = time.perf_counter() - start
        assert costs_of(rows) == baseline_costs, \
            f"worker count {workers} changed costs vs the cold " \
            f"single-process run"
        scaling.append({
            "workers": workers,
            "seconds": round(elapsed, 4),
            "rows_per_second": round(len(requests) / elapsed, 3),
        })
    return {"base_rows": [list(r) for r in batch_rows],
            "repeat": repeat, "requests": len(requests),
            # sharding can only beat one process when the host has cores
            # to shard across; record the truth so the scaling numbers
            # are interpretable (a 1-CPU container shows pure overhead)
            "host_cpus": len(os.sched_getaffinity(0))
            if hasattr(os, "sched_getaffinity") else os.cpu_count(),
            "cold_single_process_seconds": round(cold_seconds, 4),
            "costs": {f"D({n},{k})": baseline_costs[f"0:D({n},{k})"]
                      for n, k in batch_rows},
            "scaling": scaling}


def _bench_portfolio_sanity(sample_rows) -> dict:
    """Portfolio cost must never exceed the best single engine's."""
    search = SearchConfig(max_nodes=_BATCH_MAX_NODES,
                          time_limit=_TIME_LIMIT)
    checks = []
    for n, k in sample_rows:
        state = dicke_state(n, k)
        single = {}
        for spec in default_portfolio():
            try:
                single[spec.name] = run_engine_spec(
                    spec, state, search).cnot_cost
            except SearchBudgetExceeded:
                continue
        outcome = run_portfolio(state, search)
        assert outcome.solved
        best_single = min(single.values())
        assert outcome.result.cnot_cost <= best_single, \
            f"D({n},{k}): portfolio {outcome.result.cnot_cost} worse " \
            f"than best single engine {best_single}"
        checks.append({"label": f"D({n},{k})",
                       "portfolio": outcome.result.cnot_cost,
                       "winner": outcome.winner, "single": single})
    return {"checks": checks}


def run_benchmark(rows, batch_rows, repeat, worker_counts) -> dict:
    with tempfile.TemporaryDirectory() as tmp:
        snapshot_path = pathlib.Path(tmp) / "bench_service.qspmem.gz"
        snapshot = _bench_snapshot(rows, snapshot_path)
        batch = _bench_batch(batch_rows, repeat, worker_counts, tmp)
    cache = _bench_cache(batch_rows)
    portfolio = _bench_portfolio_sanity(batch_rows[:2])
    report = {
        "metric": "snapshot warm speedup = cold family seconds / "
                  "amortized booted-family seconds "
                  "((load + warm passes) / passes); cache hit speedup = "
                  "mean miss latency / mean hit latency",
        "snapshot": snapshot,
        "cache": cache,
        "batch": batch,
        "portfolio": portfolio,
    }
    return stamp_benchmark(report)


def render_table(report: dict) -> str:
    snap = report["snapshot"]
    rows = []
    for row in snap["rows"]:
        cost = row["cnot_cost"] if row["solved"] else "-"
        warm = row["warm_seconds"]
        rows.append([row["label"], cost, f"{row['cold_seconds']:.3f}",
                     f"{warm[0]:.3f}", f"{warm[-1]:.3f}",
                     f"{row['warm_speedup']:.2f}x"])
    passes = snap["warm_pass_seconds"]
    rows.append(["family", "-", f"{snap['cold_seconds']:.3f}",
                 f"{passes[0]:.3f}", f"{passes[-1]:.3f}",
                 f"{snap['steady_pass_speedup']:.2f}x"])
    blocks = [format_table(
        ["state", "cnot", "cold s", "warm p1 s", "warm p2 s", "speedup"],
        rows,
        title="service: cold family run vs snapshot-booted warm passes "
              "(speedup = cold / steady pass; last row = family total)")]
    blocks.append(
        f"snapshot boot: load {snap['snapshot_load_seconds']:.2f}s for "
        f"{snap['snapshot_bytes']} bytes; amortized warm speedup "
        f"{snap['warm_speedup']:.2f}x (first pass incl. load "
        f"{snap['first_pass_speedup']:.2f}x, steady "
        f"{snap['steady_pass_speedup']:.2f}x)")
    cache = report["cache"]
    blocks.append(
        f"request cache: {cache['requests']} targets, mean miss "
        f"{cache['mean_miss_seconds'] * 1e3:.2f} ms vs hit "
        f"{cache['mean_hit_seconds'] * 1e6:.0f} us "
        f"({cache['hit_speedup']:.0f}x)")
    batch = report["batch"]
    scaling = batch["scaling"]
    blocks.append(format_table(
        ["workers", "seconds", "rows/s"],
        [["cold x1", f"{batch['cold_single_process_seconds']:.3f}",
          f"{batch['requests'] / batch['cold_single_process_seconds']:.2f}"]]
        + [[s["workers"], f"{s['seconds']:.3f}",
            f"{s['rows_per_second']:.2f}"] for s in scaling],
        title=f"batch throughput, {batch['requests']} requests "
              f"({batch['repeat']}x repeated stream) over worker count "
              f"on a {batch['host_cpus']}-CPU host "
              "(snapshot-seeded workers; identical costs asserted)"))
    return "\n\n".join(blocks)


def main(argv: list[str]) -> int:
    smoke = "--smoke" in argv
    rows = SMOKE_ROWS if smoke else FULL_ROWS
    batch_rows = SMOKE_BATCH_ROWS if smoke else FULL_BATCH_ROWS
    repeat = SMOKE_BATCH_REPEAT if smoke else FULL_BATCH_REPEAT
    worker_counts = SMOKE_WORKER_COUNTS if smoke else FULL_WORKER_COUNTS
    warm_floor = SMOKE_WARM_THRESHOLD if smoke else FULL_WARM_THRESHOLD
    cache_floor = SMOKE_CACHE_THRESHOLD if smoke else FULL_CACHE_THRESHOLD
    report = run_benchmark(rows, batch_rows, repeat, worker_counts)
    report["mode"] = "smoke" if smoke else "full"
    report["thresholds"] = {"warm_speedup": warm_floor,
                            "cache_hit_speedup": cache_floor}
    text = render_table(report)
    print(text)

    results_dir = REPO_ROOT / "benchmarks" / "results"
    results_dir.mkdir(exist_ok=True)
    suffix = "_smoke" if smoke else ""
    (results_dir / f"bench_service{suffix}.txt").write_text(
        text + "\n", encoding="utf-8")
    # only the full run may refresh the committed headline snapshot
    out = (REPO_ROOT / "BENCH_service.json" if not smoke
           else results_dir / "bench_service_smoke.json")
    out.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
    print(f"\nwrote {out}")

    warm = report["snapshot"]["warm_speedup"]
    cache = report["cache"]["hit_speedup"]
    failed = False
    if warm < warm_floor:
        print(f"FAIL: snapshot-warm family speedup {warm:.2f}x "
              f"< required {warm_floor:.1f}x", file=sys.stderr)
        failed = True
    if cache < cache_floor:
        print(f"FAIL: cache hit speedup {cache:.1f}x "
              f"< required {cache_floor:.1f}x", file=sys.stderr)
        failed = True
    if failed:
        return 1
    print(f"OK: snapshot-warm {warm:.2f}x >= {warm_floor:.1f}x, "
          f"cache hit {cache:.1f}x >= {cache_floor:.1f}x, batch costs "
          f"identical across worker counts")
    return 0


def test_service_benchmark_smoke(results_emitter):
    """Pytest entry: smoke rows + the regression floors (CI satellite)."""
    report = run_benchmark(SMOKE_ROWS, SMOKE_BATCH_ROWS,
                           SMOKE_BATCH_REPEAT, SMOKE_WORKER_COUNTS)
    results_emitter("bench_service_smoke", render_table(report))
    assert report["snapshot"]["warm_speedup"] >= SMOKE_WARM_THRESHOLD
    assert report["cache"]["hit_speedup"] >= SMOKE_CACHE_THRESHOLD


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))

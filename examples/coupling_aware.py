"""Coupling-constraint-aware synthesis costs (extension).

Run with::

    python examples/coupling_aware.py

The paper motivates CNOT minimization partly through device coupling
constraints.  This example synthesizes a GHZ-like state, then evaluates
what its circuit costs once CNOTs must be routed on a line, a ring, and a
grid — and how much a better wire placement recovers (wire relabeling is
free for state preparation).
"""

from __future__ import annotations

import networkx as nx

from repro import ghz_state, synthesize_exact
from repro.opt.mapping import (
    best_placement,
    grid_coupling,
    line_coupling,
    ring_coupling,
    routed_cnot_cost,
)
from repro.utils.tables import format_table


def main() -> None:
    state = ghz_state(6)
    result = synthesize_exact(state, max_nodes=100_000, time_limit=60)
    circuit = result.circuit
    print(f"GHZ(6): {result.cnot_cost} CNOTs on all-to-all coupling")
    print(circuit.draw())

    couplings = {
        "line":  line_coupling(6),
        "ring":  ring_coupling(6),
        "grid 2x3": grid_coupling(2, 3),
        "all-to-all": nx.complete_graph(6),
    }
    rows = []
    for name, graph in couplings.items():
        identity = routed_cnot_cost(circuit, graph)
        placement, placed = best_placement(circuit, graph, max_trials=720)
        rows.append([name, identity, placed, str(placement)])
    print(format_table(
        ["coupling", "routed CNOTs (identity)", "after placement search",
         "placement"], rows,
        title="Routing cost of the synthesized circuit by coupling graph"))


if __name__ == "__main__":
    main()

"""Dicke state preparation: automation vs manual design (paper Sec. VI-B).

Run with::

    python examples/dicke_states.py

Reproduces the paper's headline: exact synthesis prepares ``|D^2_4>`` with
6 CNOTs where the best manual design needs 12 — the first time design
automation beat hand-crafted circuits for this family.  Also compares the
W-state rows, where the 3n-5 manual cascade is already optimal.
"""

from __future__ import annotations

from repro import assert_prepares, dicke_state, synthesize_exact
from repro.baselines.dicke_manual import (
    dicke_circuit,
    manual_cnot_count,
    w_state_circuit,
)
from repro.utils.tables import format_table


def main() -> None:
    print("== The headline: |D^2_4> ==")
    target = dicke_state(4, 2)
    result = synthesize_exact(target, max_nodes=200_000, time_limit=120)
    assert_prepares(result.circuit, target)
    print(f"manual design (Mukherjee et al.): {manual_cnot_count(4, 2)} CNOTs")
    print(f"exact synthesis                 : {result.cnot_cost} CNOTs "
          f"(optimal: {result.optimal})")
    print("\nsynthesized circuit (cf. paper Fig. 6):")
    print(result.circuit.draw())

    print("\n== W states (k = 1): manual cascade is already optimal ==")
    rows = []
    for n in (3, 4, 5):
        manual = w_state_circuit(n)
        assert_prepares(manual, dicke_state(n, 1))
        exact = synthesize_exact(dicke_state(n, 1), max_nodes=150_000,
                                 time_limit=120)
        rows.append([n, manual.cnot_cost(), exact.cnot_cost,
                     "yes" if exact.optimal else "best-effort"])
    print(format_table(["n", "manual 3n-5", "exact", "proven optimal"], rows))

    print("\n== Deterministic Bartschi-Eidenbenz circuits (verified) ==")
    rows = []
    for n, k in ((4, 2), (5, 2), (6, 3)):
        circuit = dicke_circuit(n, k)
        assert_prepares(circuit, dicke_state(n, k))
        rows.append([n, k, circuit.cnot_cost(), manual_cnot_count(n, k)])
    print(format_table(["n", "k", "B-E circuit CNOTs",
                        "best manual count"], rows))


if __name__ == "__main__":
    main()

"""Amplitude encoding of classical distributions (QML/finance workload).

Run with::

    python examples/distribution_loading.py

Loading ``sum_x sqrt(p_x)|x>`` is the QSP workload behind quantum
Monte-Carlo pricing and QML feature maps — one of the applications the
paper's introduction cites.  This example encodes a Gaussian and a
binomial distribution, synthesizes preparation circuits through the
paper's workflow, verifies them, and compares the CNOT cost against the
n-flow baseline.
"""

from __future__ import annotations

from repro import prepare_state
from repro.baselines.nflow import nflow_cnot_count
from repro.sim.sparse import sparse_prepares
from repro.states.special import (
    binomial_state,
    domain_wall_state,
    gaussian_state,
)


def main() -> None:
    workloads = [
        ("gaussian(3 qubits)", gaussian_state(3)),
        ("gaussian(4 qubits)", gaussian_state(4)),
        ("binomial(3 qubits)", binomial_state(3)),
        ("domain-wall(6)", domain_wall_state(6)),
    ]

    header = (f"{'distribution':>19}  {'n':>2}  {'m':>3}  {'ours':>5}  "
              f"{'n-flow':>6}  verified")
    print(header)
    print("-" * len(header))
    for label, state in workloads:
        result = prepare_state(state)
        ok = sparse_prepares(result.circuit, state)
        print(f"{label:>19}  {state.num_qubits:>2}  {state.cardinality:>3}  "
              f"{result.cnot_cost:>5}  "
              f"{nflow_cnot_count(state.num_qubits):>6}  {ok}")

    print("\nDense encodings (gaussian/binomial over all 2^n points) cost")
    print("close to the n-flow's 2^n - 2 bound; structured sparse families")
    print("like domain walls are far cheaper through the sparse workflow.")


if __name__ == "__main__":
    main()

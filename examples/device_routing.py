"""Device-aware preparation: paying the topology tax.

Run with::

    python examples/device_routing.py

The paper's CNOT counts assume all-to-all coupling.  This example prepares
a W state on progressively harsher topologies (full, grid, ring, line,
star) with the architecture pipeline — placement, SWAP routing, and
simulator verification — and reports the routed CNOT cost per topology
and placement strategy.
"""

from __future__ import annotations

from repro.arch import CouplingMap, prepare_on_device
from repro.states.families import w_state


def main() -> None:
    target = w_state(5)
    print(f"target: |W_5>  (5 qubits, cardinality {target.cardinality})\n")

    devices = [
        CouplingMap.full(5),
        CouplingMap.grid(2, 3),
        CouplingMap.ring(5),
        CouplingMap.line(5),
        CouplingMap.star(5),
    ]

    header = (f"{'topology':>9}  {'placement':>9}  {'logical':>7}  "
              f"{'routed':>6}  {'SWAPs':>5}  {'overhead':>8}  verified")
    print(header)
    print("-" * len(header))
    for device in devices:
        for placement in ("trivial", "greedy"):
            result = prepare_on_device(target, device, placement=placement)
            overhead = result.overhead_cnots
            print(f"{device.name:>9}  {placement:>9}  "
                  f"{result.logical_cnots:>7}  {result.physical_cnots:>6}  "
                  f"{result.routed.swap_count:>5}  {overhead:>8}  "
                  f"{result.verified}")

    print("\nEvery routed circuit is verified against the target up to the")
    print("final layout permutation (wire labels are free for state prep).")


if __name__ == "__main__":
    main()

"""Quickstart: synthesize a minimum-CNOT preparation circuit.

Run with::

    python examples/quickstart.py

Builds the motivating-example state of the paper (Sec. III), synthesizes
it exactly (2 CNOTs, vs 6-7 for the reduction flows), verifies the circuit
on the statevector simulator, and exports OpenQASM.
"""

from __future__ import annotations

from repro import QState, assert_prepares, synthesize_exact, to_qasm
from repro.circuits.resources import estimate_resources


def main() -> None:
    # |psi> = (|000> + |011> + |101> + |110>) / 2
    target = QState.uniform(3, [0b000, 0b011, 0b101, 0b110])
    print(f"target state : {target.pretty()}")
    print(f"qubits       : {target.num_qubits}")
    print(f"cardinality  : {target.cardinality}")
    print(f"sparse?      : {target.is_sparse()}")

    result = synthesize_exact(target)
    print(f"\nCNOT count   : {result.cnot_cost} "
          f"(proven optimal: {result.optimal})")
    print(f"search stats : {result.stats.nodes_expanded} nodes expanded "
          f"in {result.stats.elapsed_seconds:.3f}s")

    print("\ncircuit:")
    print(result.circuit.draw())

    # Every synthesized circuit can be independently verified by simulation.
    assert_prepares(result.circuit, target)
    print("\nverified: circuit prepares the target (up to global sign)")

    print("\nresource report:")
    print(estimate_resources(result.circuit))

    print("\nOpenQASM 2.0:")
    print(to_qasm(result.circuit))


if __name__ == "__main__":
    main()

"""Noise-aware comparison: CNOT savings as preparation fidelity.

Run with::

    python examples/noise_fidelity.py

The paper minimizes CNOT count because CNOTs dominate NISQ noise (Sec. I).
This example makes that concrete: it prepares |D^2_4> with the exact
synthesis (6 CNOTs), the m-flow (18), and the n-flow (14), then scores all
three circuits under the same depolarizing noise model with the exact
density-matrix simulator and the analytic no-fault bound.
"""

from __future__ import annotations

from repro import dicke_state, prepare_state
from repro.baselines.mflow import mflow_synthesize
from repro.baselines.nflow import nflow_synthesize
from repro.sim.noise import (
    NoiseModel,
    analytic_fidelity_bound,
    density_matrix_fidelity,
    monte_carlo_fidelity,
)


def main() -> None:
    target = dicke_state(4, 2)
    noise = NoiseModel(p_cx=1e-2, p_1q=1e-3)
    print(f"target : |D^2_4>  ({target.cardinality} basis states)")
    print(f"noise  : depolarizing p_cx={noise.p_cx}, p_1q={noise.p_1q}\n")

    circuits = {
        "ours (exact)": prepare_state(target).circuit,
        "m-flow": mflow_synthesize(target),
        "n-flow": nflow_synthesize(target),
    }

    header = (f"{'method':>14}  {'CNOTs':>5}  {'bound':>8}  "
              f"{'exact':>8}  {'sampled':>8}")
    print(header)
    print("-" * len(header))
    for name, circuit in circuits.items():
        bound = analytic_fidelity_bound(circuit, noise)
        exact = density_matrix_fidelity(circuit, target, noise)
        sampled = monte_carlo_fidelity(circuit, target, noise,
                                       shots=2000, seed=1)
        print(f"{name:>14}  {circuit.cnot_cost():>5}  {bound:>8.4f}  "
              f"{exact:>8.4f}  {sampled:>8.4f}")

    ours = density_matrix_fidelity(circuits["ours (exact)"], target, noise)
    mflow = density_matrix_fidelity(circuits["m-flow"], target, noise)
    print(f"\nexact synthesis cuts the infidelity by "
          f"{100 * (1 - (1 - ours) / (1 - mflow)):.0f}% vs m-flow "
          f"on this state")


if __name__ == "__main__":
    main()

"""The scalable workflow on realistic sparse states (paper Fig. 5 / Sec. VI-C).

Run with::

    python examples/sparse_workflow.py

Sparse states (``m`` nonzero amplitudes out of ``2**n``) are the regime
where quantum state preparation is practical at larger ``n`` — e.g. loading
a handful of basis patterns for machine-learning feature maps or
combinatorial-optimization warm starts.  This example prepares random
sparse states at n = 6..12 and compares every method's CNOT count.
"""

from __future__ import annotations

from repro import compare_methods, prepare_state, random_sparse_state
from repro.utils.tables import format_table, improvement_percent


def main() -> None:
    rows = []
    for n in range(6, 13, 2):
        state = random_sparse_state(n, seed=n)
        row = compare_methods(state)
        impr = improvement_percent(row.mflow, row.ours)
        rows.append([n, row.cardinality, row.mflow, row.nflow, row.hybrid,
                     row.ours, f"{impr:.0f}%"])
    print(format_table(
        ["n", "m", "m-flow", "n-flow (2^n-2)", "hybrid (+1 ancilla)",
         "ours", "impr vs m-flow"],
        rows,
        title="Sparse state preparation (m = n), one random state per row"))

    print("\nWorkflow trace for the n = 10 instance:")
    result = prepare_state(random_sparse_state(10, seed=10))
    for line in result.trace:
        print(f"  - {line}")
    print(f"  => {result.cnot_cost} CNOTs")


if __name__ == "__main__":
    main()

"""Preparing complex-amplitude states with the phase oracle (extension).

Run with::

    python examples/complex_amplitudes.py

The paper's flows handle real amplitudes; its Sec. VI-A notes that a phase
oracle extends them to arbitrary complex states.  This example prepares a
complex state (e.g. a discrete-Fourier-like profile), verifying the result
against the simulator up to global phase.
"""

from __future__ import annotations

import numpy as np

from repro.opt.phase import phase_oracle_circuit, prepare_complex
from repro.sim.statevector import simulate_circuit
from repro.circuits.resources import estimate_resources


def main() -> None:
    n = 3
    dim = 1 << n
    # A Fourier-like complex profile over a sparse support.
    vec = np.zeros(dim, dtype=complex)
    support = [0, 3, 5, 6]
    for rank, idx in enumerate(support):
        vec[idx] = np.exp(2j * np.pi * rank / len(support)) / 2.0

    circuit = prepare_complex(vec)
    out = simulate_circuit(circuit)
    ref = support[0]
    phase = out[ref] / vec[ref]
    ok = np.allclose(out, phase * vec, atol=1e-7)
    print(f"target  : {np.round(vec, 3)}")
    print(f"prepared: {np.round(out, 3)}")
    print(f"match up to global phase: {ok}")
    print("\nresources:")
    print(estimate_resources(circuit))

    print("\nStandalone phase oracle on a uniform superposition:")
    phases = np.linspace(0, np.pi, dim)
    oracle = phase_oracle_circuit(phases)
    print(f"oracle CNOTs: {oracle.cnot_cost()} "
          f"(diagonal over {dim} basis states)")


if __name__ == "__main__":
    main()

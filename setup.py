"""Build hook for the optional native kernel extension.

``python setup.py build_ext --inplace`` compiles
``src/repro/core/_fastcore.c`` with the system compiler and drops the
shared object next to the Python sources, where import-time detection in
``repro.core.fastcore`` picks it up.  The flags matter:

* ``-ffp-contract=off`` — the extension replays NumPy float expressions
  (``c*a0 - s*a1`` etc.) and must not FMA-fuse them, or results drift
  from the pure-Python reference by one ulp.
* ``-fno-strict-aliasing`` — defensive; float<->uint64 punning goes
  through ``memcpy`` but the flag keeps any future edit safe.

The extension is strictly optional: environments without a compiler run
the pure-Python kernel (``repro.core.fastcore`` handles detection and
fallback), so this setup script is never a hard install dependency.
"""

from setuptools import Extension, setup

setup(
    name="repro-fastcore",
    version="0.1",
    package_dir={"": "src"},
    packages=[],
    ext_modules=[
        Extension(
            "repro.core._fastcore",
            sources=["src/repro/core/_fastcore.c"],
            depends=["src/repro/core/_splitmix.h"],
            extra_compile_args=[
                "-O2",
                "-ffp-contract=off",
                "-fno-strict-aliasing",
            ],
        )
    ],
)

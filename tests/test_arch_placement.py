"""Unit tests for repro.arch.placement and repro.arch.flow."""

from __future__ import annotations

import numpy as np
import pytest

from repro.arch.flow import (
    expected_physical_vector,
    prepare_on_device,
    routed_prepares,
)
from repro.arch.placement import (
    annealed_placement,
    greedy_placement,
    interaction_graph,
    placement_cost,
    trivial_placement,
    validate_placement,
)
from repro.arch.router import route_circuit
from repro.arch.topologies import CouplingMap
from repro.circuits.circuit import QCircuit
from repro.exceptions import CircuitError
from repro.states.families import dicke_state, ghz_state, w_state
from repro.states.qstate import QState


class TestInteractionGraph:
    def test_counts_decomposed_cnots(self):
        qc = QCircuit(3).cx(0, 1).cx(0, 1).cx(1, 2)
        weights = interaction_graph(qc)
        assert weights[0, 1] == 2
        assert weights[1, 0] == 2
        assert weights[1, 2] == 1
        assert weights[0, 2] == 0

    def test_cry_contributes_two(self):
        qc = QCircuit(2).cry(0, 1, 0.7)
        weights = interaction_graph(qc)
        assert weights[0, 1] == 2

    def test_single_qubit_gates_ignored(self):
        qc = QCircuit(2).ry(0, 0.5).x(1)
        assert interaction_graph(qc).sum() == 0


class TestPlacements:
    def test_trivial_identity(self):
        assert trivial_placement(3, CouplingMap.line(5)) == [0, 1, 2]

    def test_trivial_too_many_qubits(self):
        with pytest.raises(CircuitError):
            trivial_placement(4, CouplingMap.line(3))

    def test_validate_rejects_duplicates(self):
        with pytest.raises(CircuitError):
            validate_placement([0, 0], 2, CouplingMap.line(3))

    def test_validate_rejects_out_of_range(self):
        with pytest.raises(CircuitError):
            validate_placement([0, 9], 2, CouplingMap.line(3))

    def test_greedy_puts_hot_pair_adjacent(self):
        # qubits 0 and 2 interact heavily; a good line placement makes
        # them adjacent even though their labels are 2 apart
        qc = QCircuit(3)
        for _ in range(5):
            qc.cx(0, 2)
        qc.cx(0, 1)
        cmap = CouplingMap.line(3)
        placement = greedy_placement(qc, cmap)
        validate_placement(placement, 3, cmap)
        assert cmap.distance(placement[0], placement[2]) == 1

    def test_greedy_on_star_uses_hub_for_hot_qubit(self):
        qc = QCircuit(4).cx(0, 1).cx(0, 2).cx(0, 3)
        placement = greedy_placement(qc, CouplingMap.star(4))
        assert placement[0] == 0  # the hub

    def test_greedy_handles_no_interactions(self):
        qc = QCircuit(3).ry(0, 0.5)
        placement = greedy_placement(qc, CouplingMap.line(4))
        validate_placement(placement, 3, CouplingMap.line(4))

    def test_annealed_never_worse_than_start(self):
        qc = QCircuit(4).cx(0, 3).cx(0, 3).cx(1, 2)
        cmap = CouplingMap.line(4)
        weights = interaction_graph(qc)
        start = trivial_placement(4, cmap)
        annealed = annealed_placement(qc, cmap, iterations=500, seed=1,
                                      start=start)
        assert placement_cost(weights, annealed, cmap) <= \
            placement_cost(weights, start, cmap)

    def test_annealed_deterministic_per_seed(self):
        qc = QCircuit(4).cx(0, 3).cx(1, 2).cx(0, 2)
        cmap = CouplingMap.grid(2, 2)
        a = annealed_placement(qc, cmap, iterations=300, seed=7)
        b = annealed_placement(qc, cmap, iterations=300, seed=7)
        assert a == b

    def test_annealed_uses_spare_physical_qubits(self):
        qc = QCircuit(2)
        for _ in range(4):
            qc.cx(0, 1)
        cmap = CouplingMap.line(5)
        placement = annealed_placement(qc, cmap, iterations=400, seed=3)
        validate_placement(placement, 2, cmap)
        assert cmap.distance(placement[0], placement[1]) == 1

    def test_placement_cost_zero_when_all_adjacent(self):
        qc = QCircuit(2).cx(0, 1)
        weights = interaction_graph(qc)
        assert placement_cost(weights, [0, 1], CouplingMap.line(2)) == 1.0


class TestExpectedPhysicalVector:
    def test_identity_layout(self):
        state = QState.uniform(2, [0b00, 0b11])
        vec = expected_physical_vector(state, [0, 1], 2)
        assert vec[0b00] == pytest.approx(state.amplitude(0b00))
        assert vec[0b11] == pytest.approx(state.amplitude(0b11))

    def test_wider_register_padding(self):
        state = QState.basis(1, 1)  # |1>
        vec = expected_physical_vector(state, [2], 3)
        # logical qubit 0 on physical wire 2 (LSB under MSB-first convention)
        assert vec[0b001] == pytest.approx(1.0)

    def test_swapped_layout(self):
        state = QState.from_bitstring_weights({"10": 1.0})
        vec = expected_physical_vector(state, [1, 0], 2)
        assert vec[0b01] == pytest.approx(1.0)

    def test_layout_width_mismatch(self):
        with pytest.raises(CircuitError):
            expected_physical_vector(QState.basis(2, 0), [0], 2)


class TestPrepareOnDevice:
    def test_ghz_on_line(self):
        result = prepare_on_device(ghz_state(4), CouplingMap.line(4))
        assert result.verified is True
        assert result.physical_cnots >= result.logical_cnots

    def test_w_state_on_ring(self):
        result = prepare_on_device(w_state(4), CouplingMap.ring(4))
        assert result.verified is True

    def test_dicke_on_grid(self):
        result = prepare_on_device(dicke_state(4, 2), CouplingMap.grid(2, 2))
        assert result.verified is True

    def test_full_map_no_overhead(self):
        result = prepare_on_device(ghz_state(3), CouplingMap.full(3))
        assert result.overhead_cnots == 0

    def test_placement_strategies_all_verify(self):
        state = w_state(4)
        cmap = CouplingMap.line(5)
        for strategy in ("trivial", "greedy", "annealed"):
            result = prepare_on_device(state, cmap, placement=strategy)
            assert result.verified is True, strategy
            assert result.placement_strategy == strategy

    def test_unknown_strategy_rejected(self):
        with pytest.raises(CircuitError):
            prepare_on_device(ghz_state(3), CouplingMap.line(3),
                              placement="magic")

    def test_state_too_wide_rejected(self):
        with pytest.raises(CircuitError):
            prepare_on_device(ghz_state(4), CouplingMap.line(3))

    def test_disconnected_map_rejected(self):
        cmap = CouplingMap([(0, 1)], size=4)
        with pytest.raises(CircuitError):
            prepare_on_device(ghz_state(3), cmap)

    def test_routed_prepares_detects_wrong_state(self):
        state = ghz_state(3)
        result = prepare_on_device(state, CouplingMap.line(3))
        assert routed_prepares(result.routed, state)
        assert not routed_prepares(result.routed, w_state(3))

    def test_line_overhead_is_reasonable(self):
        # GHZ on a line is still a CNOT chain: good placement should keep
        # the routed count close to the logical count.
        result = prepare_on_device(ghz_state(5), CouplingMap.line(5),
                                   placement="greedy")
        # each of the <= n-1 long-range CNOTs needs at most one SWAP chain
        # across the 5-qubit line (4 swaps = 12 CX) in the worst case
        assert result.physical_cnots <= 4 * result.logical_cnots


def test_routed_cost_dominates_logical_cost_random():
    rng = np.random.default_rng(11)
    from repro.states.random_states import random_sparse_state

    for seed in range(3):
        state = random_sparse_state(4, seed=int(rng.integers(1 << 30)))
        result = prepare_on_device(state, CouplingMap.line(4))
        assert result.verified is True
        assert result.physical_cnots >= result.logical_cnots

"""Tests for the extended CLI subcommands (route / fidelity / verify)."""

from __future__ import annotations

import pytest

from repro.cli import main


class TestRoute:
    def test_route_ghz_line(self, capsys):
        assert main(["route", "--ghz", "4", "--topology", "line"]) == 0
        out = capsys.readouterr().out
        assert "device    : line" in out
        assert "physical" in out
        assert "verified  : True" in out

    def test_route_full_no_overhead(self, capsys):
        assert main(["route", "--w", "3", "--topology", "full"]) == 0
        out = capsys.readouterr().out
        assert "overhead  : 0 CNOTs" in out

    def test_route_placements(self, capsys):
        for placement in ("trivial", "greedy", "annealed"):
            assert main(["route", "--ghz", "3", "--topology", "ring",
                         "--placement", placement]) == 0

    def test_route_grid(self, capsys):
        assert main(["route", "--dicke", "4", "2", "--topology",
                     "grid"]) == 0
        assert "grid" in capsys.readouterr().out

    def test_route_star(self, capsys):
        assert main(["route", "--ghz", "4", "--topology", "star"]) == 0


class TestFidelity:
    def test_fidelity_output(self, capsys):
        assert main(["fidelity", "--dicke", "4", "2"]) == 0
        out = capsys.readouterr().out
        assert "no-fault bound" in out
        assert "exact fidelity" in out

    def test_fidelity_custom_noise(self, capsys):
        assert main(["fidelity", "--ghz", "3", "--p-cx", "0.05",
                     "--p-1q", "0.0"]) == 0
        out = capsys.readouterr().out
        assert "p_cx=0.05" in out

    def test_fidelity_wide_register_skips_exact(self, capsys):
        assert main(["fidelity", "--random-sparse", "9"]) == 0
        out = capsys.readouterr().out
        assert "too wide" in out


class TestVerify:
    def test_verify_roundtrip(self, tmp_path, capsys):
        qasm_path = tmp_path / "w4.qasm"
        assert main(["prepare", "--w", "4", "--qasm", str(qasm_path)]) == 0
        capsys.readouterr()
        assert main(["verify", str(qasm_path), "--w", "4"]) == 0
        assert "PREPARES" in capsys.readouterr().out

    def test_verify_wrong_state_fails(self, tmp_path, capsys):
        qasm_path = tmp_path / "ghz4.qasm"
        main(["prepare", "--ghz", "4", "--qasm", str(qasm_path)])
        capsys.readouterr()
        assert main(["verify", str(qasm_path), "--w", "4"]) == 1
        assert "DOES NOT PREPARE" in capsys.readouterr().out


class TestNewStateOptions:
    @pytest.mark.parametrize("flag,value", [
        ("--cluster", "3"),
        ("--gaussian", "3"),
        ("--binomial", "3"),
        ("--domain-wall", "4"),
    ])
    def test_prepare_new_families(self, flag, value, capsys):
        assert main(["prepare", flag, value]) == 0
        out = capsys.readouterr().out
        assert "CNOTs" in out

    def test_compare_cluster(self, capsys):
        assert main(["compare", "--cluster", "3"]) == 0
        assert "ours" in capsys.readouterr().out


class TestFamily:
    def test_family_warm_runs(self, capsys):
        assert main(["family", "--max-n", "4", "--max-nodes",
                     "50000"]) == 0
        out = capsys.readouterr().out
        assert "D(4,2)" in out
        assert "memory:" in out

    def test_family_cold_baseline(self, capsys):
        assert main(["family", "--max-n", "3", "--cold"]) == 0
        out = capsys.readouterr().out
        assert "cold" in out
        assert "memory:" not in out

    def test_family_repeat_reuses_memory(self, capsys):
        assert main(["family", "--max-n", "4", "--engine", "idastar",
                     "--repeat", "2", "--max-nodes", "50000"]) == 0
        out = capsys.readouterr().out
        assert "warm pass 2" in out
        assert "transposition" in out

    def test_family_beam_engine(self, capsys):
        assert main(["family", "--max-n", "4", "--engine", "beam"]) == 0
        assert "beam family run" in capsys.readouterr().out

"""Unit tests for gate definitions and the Table-I cost model."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.circuits.gates import (
    CRYGate,
    CRZGate,
    CXGate,
    MCRYGate,
    MCXGate,
    RYGate,
    RZGate,
    XGate,
    normalize_angle,
)
from repro.exceptions import CircuitError


class TestCosts:
    """Table I of the paper."""

    def test_free_gates(self):
        assert XGate(target=0).cnot_cost() == 0
        assert RYGate(target=0, theta=1.0).cnot_cost() == 0
        assert RZGate(target=0, theta=1.0).cnot_cost() == 0

    def test_cx_cost_one_either_polarity(self):
        assert CXGate.make(0, 1).cnot_cost() == 1
        assert CXGate.make(0, 1, phase=0).cnot_cost() == 1

    def test_cry_cost_two(self):
        assert CRYGate.make(0, 1, 0.5).cnot_cost() == 2
        assert CRZGate.make(0, 1, 0.5).cnot_cost() == 2

    @pytest.mark.parametrize("k", [1, 2, 3, 4])
    def test_mcry_cost_exponential(self, k):
        controls = tuple((i, 1) for i in range(k))
        gate = MCRYGate(target=k, controls=controls, theta=0.3)
        assert gate.cnot_cost() == 2 ** k

    def test_mcx_cost(self):
        gate = MCXGate(target=2, controls=((0, 1), (1, 1)))
        assert gate.cnot_cost() == 4


class TestMatrices:
    def test_ry_matrix(self):
        mat = RYGate(target=0, theta=math.pi).base_matrix()
        assert np.allclose(mat, [[0, -1], [1, 0]])

    def test_ry_zero_is_identity(self):
        assert np.allclose(RYGate(target=0, theta=0.0).base_matrix(),
                           np.eye(2))

    def test_x_matrix(self):
        assert np.allclose(XGate(target=0).base_matrix(), [[0, 1], [1, 0]])

    def test_rz_matrix_unitary(self):
        mat = RZGate(target=0, theta=0.7).base_matrix()
        assert np.allclose(mat @ mat.conj().T, np.eye(2))

    def test_ry_inverse_matrix(self):
        g = RYGate(target=0, theta=0.9)
        prod = g.base_matrix() @ g.inverse().base_matrix()
        assert np.allclose(prod, np.eye(2))


class TestValidation:
    def test_duplicate_qubit_rejected(self):
        with pytest.raises(CircuitError):
            CXGate(target=1, controls=((1, 1),))

    def test_bad_phase_rejected(self):
        with pytest.raises(CircuitError):
            CXGate(target=1, controls=((0, 2),))

    def test_cx_needs_one_control(self):
        with pytest.raises(CircuitError):
            CXGate(target=1, controls=())

    def test_mcry_needs_controls(self):
        with pytest.raises(CircuitError):
            MCRYGate(target=0, controls=(), theta=0.5)

    def test_mcx_needs_two_controls(self):
        with pytest.raises(CircuitError):
            MCXGate(target=0, controls=((1, 1),))

    def test_controlled_base_gates_rejected(self):
        with pytest.raises(CircuitError):
            XGate(target=0, controls=((1, 1),))
        with pytest.raises(CircuitError):
            RYGate(target=0, controls=((1, 1),), theta=0.5)


class TestStructure:
    def test_qubits_order(self):
        gate = MCRYGate(target=3, controls=((0, 1), (2, 0)), theta=0.1)
        assert gate.qubits() == (0, 2, 3)

    def test_remap(self):
        gate = CRYGate.make(0, 1, 0.4)
        remapped = gate.remap({0: 2, 1: 0})
        assert remapped.control == 2
        assert remapped.target == 0
        assert remapped.theta == 0.4

    def test_inverse_negates_angle(self):
        gate = CRYGate.make(0, 1, 0.4)
        assert gate.inverse().theta == -0.4
        assert gate.inverse().controls == gate.controls

    def test_self_inverse_gates(self):
        assert XGate(target=0).inverse() == XGate(target=0)
        cx = CXGate.make(1, 0)
        assert cx.inverse() == cx

    def test_str_rendering(self):
        text = str(CRYGate.make(0, 1, 0.25))
        assert "cry" in text and "t=1" in text

    def test_normalize_angle(self):
        assert abs(normalize_angle(5 * math.pi) - math.pi) < 1e-12
        assert normalize_angle(0.0) == 0.0

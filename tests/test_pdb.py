"""Tests for the pattern database, signature index, and fast serving.

Covers the PR's differential acceptance criteria: exact modes with the
PDB enabled return identical costs to PDB-off runs (with never-more
expansions), fast/near-hit responses are always simulator-verified, and
deadline-truncated adaptations are never cached.
"""

from __future__ import annotations

import pytest

from repro.core.idastar import IDAStarConfig, idastar_search
from repro.core.memory import SearchMemory
from repro.core.pdb import (
    PatternDatabase,
    coarse_signature,
    entanglement_signature,
    signature_from_list,
    signature_to_list,
    state_from_payload,
    structural_bound,
)
from repro.exceptions import MemoryCompatibilityError
from repro.service.cache import (
    RequestCache,
    request_cache_from_dict,
    request_cache_to_dict,
)
from repro.service.server import ServiceConfig, SynthesisService
from repro.sim.verify import prepares_state
from repro.states.families import dicke_state, ghz_state, w_state
from repro.states.qstate import QState
from repro.utils.serialization import (
    memory_from_dict,
    memory_to_dict,
    state_to_dict,
)


class TestSignature:
    def test_ghz4_value(self):
        # Every bipartition of GHZ has Schmidt rank 2: 7 canonical cuts
        # on 4 qubits, one MI cluster spanning the register.
        assert entanglement_signature(ghz_state(4)) == \
            (4, 4, ((2, 7),), (4,))

    def test_deterministic(self):
        s = dicke_state(5, 2)
        assert entanglement_signature(s) == entanglement_signature(s)

    def test_fully_separable(self):
        s = QState.uniform(3, list(range(8)))  # |+>^3
        assert entanglement_signature(s) == (3, 0, (), ())

    def test_ground_state(self):
        assert entanglement_signature(QState.ground(4)) == (4, 0, (), ())

    def test_ghz_and_w_collide(self):
        # Both are rank 2 across every cut with one full-register MI
        # cluster — exactly the abstraction the PDB is built to exploit.
        assert entanglement_signature(ghz_state(4)) == \
            entanglement_signature(w_state(4))

    def test_coarse_drops_rank_profile(self):
        sig = entanglement_signature(dicke_state(5, 2))
        assert coarse_signature(sig) == (5, 5, (5,))

    def test_roundtrip_encoding(self):
        sig = entanglement_signature(dicke_state(5, 2))
        assert signature_from_list(signature_to_list(sig)) == sig

    def test_corrupt_encoding_raises(self):
        with pytest.raises(MemoryCompatibilityError):
            signature_from_list([4, "not-a-count"])


class TestStructuralBound:
    def test_ghz4(self):
        assert structural_bound(entanglement_signature(ghz_state(4))) == 2

    def test_separable_zero(self):
        assert structural_bound((4, 0, (), ())) == 0

    def test_rank_component_can_dominate(self):
        # A rank-8 cut forces ceil(log2 8) = 3 even with few entangled
        # qubits claimed; max of the two components wins.
        assert structural_bound((4, 2, ((8, 1),), (2,))) == 3

    def test_dicke52(self):
        sig = entanglement_signature(dicke_state(5, 2))
        assert structural_bound(sig) == 3  # k=5 -> 3; ranks <= 3 -> 2


class TestPayloadCodec:
    def test_roundtrip_through_cache_key(self):
        from repro.core.kernel import StatePool

        for state in (ghz_state(4), w_state(5), dicke_state(4, 2)):
            payload = bytes(StatePool().from_qstate(state).payload)
            back = state_from_payload(payload)
            assert back.num_qubits == state.num_qubits
            assert entanglement_signature(back) == \
                entanglement_signature(state)
            # payloads hold *quantized* amplitudes: match to that grid
            for idx, amp in state.items():
                assert abs(back.amplitude(idx) - amp) < 1e-9

    def test_malformed_payload_raises(self):
        with pytest.raises(MemoryCompatibilityError):
            state_from_payload(b"\x04")
        with pytest.raises(MemoryCompatibilityError):
            state_from_payload(b"\x04\x00" + b"\x00" * 7)


class TestPatternDatabase:
    def test_admissible_matches_structural(self):
        pdb = PatternDatabase()
        sig = entanglement_signature(ghz_state(4))
        assert pdb.admissible_bound(sig) == structural_bound(sig)

    def test_evidence_never_raises_admissible(self):
        pdb = PatternDatabase()
        sig = entanglement_signature(ghz_state(4))
        before = pdb.admissible_bound(sig)
        pdb.observe(sig, solved_cost=9, optimal=True)
        assert pdb.admissible_bound(sig) == before

    def test_learned_seeded_by_solved_min(self):
        pdb = PatternDatabase()
        sig = entanglement_signature(ghz_state(4))
        pdb.observe(sig, solved_cost=7)
        pdb.observe(sig, solved_cost=5)
        pdb.observe(sig, solved_cost=6)  # worse: must not regress
        assert pdb.learned_bound(sig) == 5
        pdb.observe(sig, lower_bound=8)
        assert pdb.learned_bound(sig) == 8

    def test_audit_flags_planted_violation(self):
        pdb = PatternDatabase()
        sig = entanglement_signature(ghz_state(4))  # structural bound 2
        pdb.observe(sig, solved_cost=1, optimal=True)  # impossible claim
        violations = pdb.audit()
        assert len(violations) == 1
        assert violations[0]["structural_bound"] == 2
        assert violations[0]["optimal_cost"] == 1

    def test_audit_clean_on_real_costs(self):
        pdb = PatternDatabase()
        pdb.observe(entanglement_signature(ghz_state(4)),
                    solved_cost=3, optimal=True)
        pdb.observe(entanglement_signature(dicke_state(4, 2)),
                    solved_cost=6, optimal=True)
        assert pdb.audit() == []

    def test_merge_roundtrip_idempotent(self):
        pdb = PatternDatabase()
        sig_a = entanglement_signature(ghz_state(4))
        sig_b = entanglement_signature(dicke_state(4, 2))
        pdb.observe(sig_a, solved_cost=3, optimal=True)
        pdb.observe(sig_b, lower_bound=4)
        dump = pdb.to_dict()
        other = PatternDatabase()
        other.merge_dict(dump)
        other.merge_dict(dump)  # WAL crash-recovery replays twice
        assert other.to_dict() == dump
        assert other.learned_bound(sig_a) == pdb.learned_bound(sig_a)

    def test_delta_marker_ships_only_new(self):
        pdb = PatternDatabase()
        pdb.observe(entanglement_signature(ghz_state(4)), solved_cost=3)
        marker = pdb.marker()
        sig_b = entanglement_signature(dicke_state(4, 2))
        pdb.observe(sig_b, solved_cost=6)
        delta = pdb.to_dict(since=marker)
        assert [signature_from_list(enc) for enc, _ in delta["entries"]] \
            == [sig_b]

    def test_delta_marker_ships_improvements(self):
        pdb = PatternDatabase()
        sig = entanglement_signature(ghz_state(4))
        pdb.observe(sig, solved_cost=7)
        marker = pdb.marker()
        pdb.observe(sig, solved_cost=5)  # improves an old entry
        delta = pdb.to_dict(since=marker)
        assert [signature_from_list(enc) for enc, _ in delta["entries"]] \
            == [sig]

    def test_eviction_invalidates_positional_skip(self):
        pdb = PatternDatabase(cap=2)
        sigs = [(4, 0, (), ()), (5, 0, (), ()), (6, 0, (), ())]
        pdb.observe(sigs[0], solved_cost=1)
        marker = pdb.marker()
        pdb.observe(sigs[1], solved_cost=1)
        pdb.observe(sigs[2], solved_cost=1)  # evicts sigs[0]
        assert pdb.evictions == 1
        delta = pdb.to_dict(since=marker)
        # the whole surviving database ships, not a positional suffix
        assert len(delta["entries"]) == len(pdb)

    def test_merge_corruption_raises(self):
        pdb = PatternDatabase()
        with pytest.raises(MemoryCompatibilityError):
            pdb.merge_dict({"entries": [[[4, 0, [], []], ["x", None,
                                                          None, 1]]]})
        with pytest.raises(MemoryCompatibilityError):
            pdb.merge_dict({"no_entries": []})


class TestMemoryPersistence:
    def test_pdb_rides_memory_snapshot(self):
        memory = SearchMemory()
        sig = entanglement_signature(ghz_state(4))
        memory.pdb.observe(sig, solved_cost=3, optimal=True)
        restored = memory_from_dict(memory_to_dict(memory))
        assert restored.pdb.learned_bound(sig) == 3
        assert restored.pdb.audit() == []

    def test_predates_pdb_section_loads(self):
        memory = SearchMemory()
        data = memory_to_dict(memory)
        data.pop("pdb", None)  # snapshot written by an older build
        restored = memory_from_dict(data)
        assert len(restored.pdb) == 0


class TestDifferential:
    """Exact IDA* with the admissible PDB tier is behavior-identical."""

    STATES = [ghz_state(3), ghz_state(4), w_state(4), dicke_state(4, 2)]

    @pytest.mark.parametrize("state", STATES,
                             ids=["ghz3", "ghz4", "w4", "dicke42"])
    def test_identical_costs_never_more_expansions(self, state):
        off = idastar_search(state, IDAStarConfig(pdb_tier="off"),
                             memory=SearchMemory())
        on = idastar_search(state, IDAStarConfig(pdb_tier="admissible"),
                            memory=SearchMemory())
        assert on.cnot_cost == off.cnot_cost
        assert on.optimal == off.optimal
        assert on.stats.nodes_expanded <= off.stats.nodes_expanded
        assert prepares_state(on.circuit, state)

    def test_learned_tier_never_claims_unproven_optimality(self):
        # Plant inflated class evidence: the learned seed may skip
        # deepening rounds, so the first found cost is only *marked*
        # optimal when the sound bound reaches it.
        memory = SearchMemory()
        state = ghz_state(4)
        sig = entanglement_signature(state)
        memory.pdb.observe(sig, solved_cost=7)  # true optimum is 3
        result = idastar_search(state, IDAStarConfig(pdb_tier="learned"),
                                memory=memory)
        assert prepares_state(result.circuit, state)
        assert result.cnot_cost <= 7
        if result.optimal:
            # only a sound certificate may claim it
            assert result.cnot_cost <= structural_bound(sig)

    def test_unknown_tier_rejected(self):
        with pytest.raises(ValueError):
            idastar_search(ghz_state(3), IDAStarConfig(pdb_tier="best"))


class TestSignatureIndex:
    def test_near_returns_exact_then_coarse(self):
        cache = RequestCache()
        ghz = ghz_state(4)
        service = SynthesisService()
        result = service.handle({"op": "exact", "ghz": 4})
        assert result["ok"]
        donor = service.cache.get("exact", ghz)
        sig = entanglement_signature(ghz)
        cache.put("exact", ghz, donor, signature=sig)
        rows = cache.near("exact", sig)
        assert len(rows) == 1
        # W(4) shares the signature entirely -> nominated as donor
        assert cache.near("exact", entanglement_signature(w_state(4)))

    def test_snapshot_keeps_occupancy_drops_donors(self):
        service = SynthesisService()
        assert service.handle({"op": "exact", "ghz": 4})["ok"]
        data = request_cache_to_dict(service.cache)
        loaded = request_cache_from_dict(data)
        occ = loaded.signature_occupancy()
        assert occ["entries"] == service.cache.signature_occupancy()["entries"]
        assert occ["donors"] == 0  # loaded results travel without moves
        assert loaded.near("exact", entanglement_signature(ghz_state(4))) \
            == []


class TestFastServing:
    def test_cache_hit_rewrites_op(self):
        service = SynthesisService()
        exact = service.handle({"op": "exact", "ghz": 4})
        fast = service.handle({"op": "fast", "ghz": 4})
        assert fast["ok"] and fast["op"] == "fast"
        assert fast["cached"] and fast["cnot_cost"] == exact["cnot_cost"]

    def test_near_hit_is_verified(self):
        service = SynthesisService()
        assert service.handle({"op": "exact", "ghz": 4})["ok"]
        response = service.handle({"op": "fast", "w": 4,
                                   "return_circuit": True})
        assert response["ok"]
        if response.get("near_hit"):
            assert response["verified"]
            assert response["engine"] == "nearhit"
            from repro.utils.serialization import circuit_from_dict
            assert prepares_state(circuit_from_dict(response["circuit"]),
                                  w_state(4))

    def test_fast_results_never_answer_exact_traffic(self):
        service = SynthesisService()
        assert service.handle({"op": "exact", "ghz": 4})["ok"]
        fast = service.handle({"op": "fast", "w": 4})
        assert fast["ok"]
        exact = service.handle({"op": "exact", "w": 4})
        assert exact["ok"]
        # the fast result lives in its own namespace: exact traffic
        # searches (and proves optimality) rather than reusing it
        assert exact["engine"] != "cache"
        assert exact["optimal"]

    def test_fast_fresh_search_is_verified(self):
        service = SynthesisService()
        response = service.handle({"op": "fast", "dicke": [4, 2]})
        assert response["ok"] and response["verified"]
        assert response["cnot_cost"] == 6

    def test_truncated_never_cached(self):
        service = SynthesisService()
        assert service.handle({"op": "exact", "ghz": 4})["ok"]
        response = service.handle({"op": "fast", "w": 4,
                                   "deadline_ms": 0.0001})
        if response.get("deadline_expired"):
            assert service.cache.get("fast", w_state(4)) is None
        elif response.get("ok") and "cnot_cost" in response:
            assert service.cache.get("fast", w_state(4)) is not None

    def test_stats_expose_pdb_and_signature_index(self):
        service = SynthesisService()
        assert service.handle({"op": "exact", "ghz": 4})["ok"]
        stats = service.handle({"op": "stats"})
        assert stats["ok"]
        assert "pdb" in stats["memory"]
        assert stats["signature_index"]["entries"] >= 1
        assert "nearhit" in stats


class TestDistillCli:
    def test_distill_roundtrip(self, tmp_path):
        from repro.cli import main
        from repro.service.persistence import (
            load_memory_snapshot,
            save_request_cache,
        )

        service = SynthesisService()
        for request in ({"op": "exact", "ghz": 4},
                        {"op": "exact", "dicke": [4, 2]}):
            assert service.handle(request)["ok"]
        cache_path = tmp_path / "cache.qspreq.gz"
        save_request_cache(service.cache, cache_path)
        out_path = tmp_path / "pdb.qspmem.gz"
        assert main(["distill", str(cache_path),
                     "--snapshot-out", str(out_path)]) == 0
        memory = load_memory_snapshot(out_path)
        assert len(memory.pdb) == 2
        sig = entanglement_signature(ghz_state(4))
        assert memory.pdb.learned_bound(sig) == 3
        assert memory.pdb.audit() == []


class TestFastCli:
    def test_prepare_fast(self, capsys):
        from repro.cli import main

        assert main(["prepare", "--ghz", "4", "--mode", "fast"]) == 0
        out = capsys.readouterr().out
        assert "CNOTs  : 3" in out
        assert "simulator-verified" in out

"""Integration tests for the Fig.-5 workflow."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.mflow import mflow_cnot_count
from repro.baselines.nflow import nflow_cnot_count
from repro.qsp.config import QSPConfig
from repro.qsp.workflow import prepare_state
from repro.sim.verify import prepares_state
from repro.states.families import dicke_state, ghz_state, w_state
from repro.states.qstate import QState
from repro.states.random_states import (
    random_dense_state,
    random_real_state,
    random_sparse_state,
)


class TestDispatch:
    def test_sparse_flag(self):
        res = prepare_state(random_sparse_state(6, seed=1))
        assert res.sparse_path

    def test_dense_flag(self):
        res = prepare_state(random_dense_state(5, seed=1))
        assert not res.sparse_path

    def test_small_state_goes_direct(self):
        res = prepare_state(ghz_state(3))
        assert any("core" in line for line in res.trace)
        assert res.cnot_cost == 2


class TestCorrectness:
    @pytest.mark.parametrize("n", [3, 4, 5, 6, 7, 8])
    def test_sparse_states_verified(self, n):
        s = random_sparse_state(n, seed=60 + n)
        res = prepare_state(s)
        assert prepares_state(res.circuit, s)
        assert res.cnot_cost == res.circuit.cnot_cost()

    @pytest.mark.parametrize("n", [3, 4, 5, 6])
    def test_dense_states_verified(self, n):
        s = random_dense_state(n, seed=70 + n)
        res = prepare_state(s)
        assert prepares_state(res.circuit, s)

    def test_signed_amplitudes(self):
        s = random_real_state(5, 5, seed=2)
        res = prepare_state(s)
        assert prepares_state(res.circuit, s)

    def test_named_states(self):
        for s in (ghz_state(5), w_state(5), dicke_state(5, 2)):
            res = prepare_state(s)
            assert prepares_state(res.circuit, s)

    def test_basis_state_free(self):
        res = prepare_state(QState.basis(6, 0b101010))
        assert res.cnot_cost == 0


class TestQuality:
    """The paper's evaluation claims, at test scale."""

    def test_sparse_beats_or_ties_mflow(self):
        for seed in range(3):
            s = random_sparse_state(8, seed=seed)
            ours = prepare_state(s).cnot_cost
            assert ours <= mflow_cnot_count(s)

    def test_dense_beats_or_ties_nflow(self):
        for seed in range(2):
            s = random_dense_state(6, seed=seed)
            ours = prepare_state(s).cnot_cost
            assert ours <= nflow_cnot_count(6)

    def test_dicke42_beats_manual(self):
        """The 2x headline: |D^2_4> below the 12-CNOT manual design."""
        res = prepare_state(dicke_state(4, 2))
        assert res.cnot_cost == 6

    def test_ghz_large(self):
        res = prepare_state(ghz_state(8))
        assert prepares_state(res.circuit, ghz_state(8))
        assert res.cnot_cost == 7  # GHZ(n) optimum is n-1


class TestConfig:
    def test_exact_disabled_ablation(self):
        cfg = QSPConfig(use_exact=False)
        s = random_sparse_state(6, seed=11)
        res = prepare_state(s, cfg)
        assert prepares_state(res.circuit, s)
        assert res.exact_optimal is None

    def test_plain_reduction_ablation(self):
        cfg = QSPConfig(improved_reduction=False)
        s = random_sparse_state(7, seed=12)
        res = prepare_state(s, cfg)
        assert prepares_state(res.circuit, s)

    def test_improved_not_worse_than_plain(self):
        s = random_sparse_state(8, seed=13)
        improved = prepare_state(s).cnot_cost
        plain = prepare_state(s, QSPConfig(improved_reduction=False)).cnot_cost
        assert improved <= plain

    def test_verification_can_be_skipped(self):
        cfg = QSPConfig(verify_max_qubits=0)
        res = prepare_state(random_sparse_state(5, seed=14), cfg)
        assert "verified by simulation" not in res.trace

    def test_trace_is_informative(self):
        res = prepare_state(random_sparse_state(6, seed=15))
        assert any("sparse path" in t for t in res.trace)
        assert any("exact" in t for t in res.trace)

"""Integration tests for the Fig.-5 workflow."""

from __future__ import annotations

import numpy as np
import pytest

import repro.qsp.workflow as workflow_module

from repro.baselines.mflow import mflow_cnot_count
from repro.baselines.nflow import nflow_cnot_count
from repro.core.engine import RunStatus
from repro.exceptions import SynthesisError
from repro.qsp.config import QSPConfig
from repro.qsp.reduction import reduce_cardinality
from repro.qsp.workflow import WorkflowRun, prepare_state
from repro.sim.verify import prepares_state
from repro.states.families import dicke_state, ghz_state, w_state
from repro.states.qstate import QState
from repro.states.random_states import (
    random_dense_state,
    random_real_state,
    random_sparse_state,
)


class TestDispatch:
    def test_sparse_flag(self):
        res = prepare_state(random_sparse_state(6, seed=1))
        assert res.sparse_path

    def test_dense_flag(self):
        res = prepare_state(random_dense_state(5, seed=1))
        assert not res.sparse_path

    def test_small_state_goes_direct(self):
        res = prepare_state(ghz_state(3))
        assert any("core" in line for line in res.trace)
        assert res.cnot_cost == 2


class TestCorrectness:
    @pytest.mark.parametrize("n", [3, 4, 5, 6, 7, 8])
    def test_sparse_states_verified(self, n):
        s = random_sparse_state(n, seed=60 + n)
        res = prepare_state(s)
        assert prepares_state(res.circuit, s)
        assert res.cnot_cost == res.circuit.cnot_cost()

    @pytest.mark.parametrize("n", [3, 4, 5, 6])
    def test_dense_states_verified(self, n):
        s = random_dense_state(n, seed=70 + n)
        res = prepare_state(s)
        assert prepares_state(res.circuit, s)

    def test_signed_amplitudes(self):
        s = random_real_state(5, 5, seed=2)
        res = prepare_state(s)
        assert prepares_state(res.circuit, s)

    def test_named_states(self):
        for s in (ghz_state(5), w_state(5), dicke_state(5, 2)):
            res = prepare_state(s)
            assert prepares_state(res.circuit, s)

    def test_basis_state_free(self):
        res = prepare_state(QState.basis(6, 0b101010))
        assert res.cnot_cost == 0


class TestQuality:
    """The paper's evaluation claims, at test scale."""

    def test_sparse_beats_or_ties_mflow(self):
        for seed in range(3):
            s = random_sparse_state(8, seed=seed)
            ours = prepare_state(s).cnot_cost
            assert ours <= mflow_cnot_count(s)

    def test_dense_beats_or_ties_nflow(self):
        for seed in range(2):
            s = random_dense_state(6, seed=seed)
            ours = prepare_state(s).cnot_cost
            assert ours <= nflow_cnot_count(6)

    def test_dicke42_beats_manual(self):
        """The 2x headline: |D^2_4> below the 12-CNOT manual design."""
        res = prepare_state(dicke_state(4, 2))
        assert res.cnot_cost == 6

    def test_ghz_large(self):
        res = prepare_state(ghz_state(8))
        assert prepares_state(res.circuit, ghz_state(8))
        assert res.cnot_cost == 7  # GHZ(n) optimum is n-1


class TestConfig:
    def test_exact_disabled_ablation(self):
        cfg = QSPConfig(use_exact=False)
        s = random_sparse_state(6, seed=11)
        res = prepare_state(s, cfg)
        assert prepares_state(res.circuit, s)
        assert res.exact_optimal is None

    def test_plain_reduction_ablation(self):
        cfg = QSPConfig(improved_reduction=False)
        s = random_sparse_state(7, seed=12)
        res = prepare_state(s, cfg)
        assert prepares_state(res.circuit, s)

    def test_improved_not_worse_than_plain(self):
        s = random_sparse_state(8, seed=13)
        improved = prepare_state(s).cnot_cost
        plain = prepare_state(s, QSPConfig(improved_reduction=False)).cnot_cost
        assert improved <= plain

    def test_verification_can_be_skipped(self):
        cfg = QSPConfig(verify_max_qubits=0)
        res = prepare_state(random_sparse_state(5, seed=14), cfg)
        assert "verified by simulation" not in res.trace

    def test_trace_is_informative(self):
        res = prepare_state(random_sparse_state(6, seed=15))
        assert any("sparse path" in t for t in res.trace)
        assert any("exact" in t for t in res.trace)


class TestWorkflowRun:
    """Stepwise surface of the Fig.-5 flow (PR 10)."""

    @pytest.mark.parametrize("state", [
        ghz_state(4), w_state(5), dicke_state(5, 2),
        random_sparse_state(6, seed=1), random_dense_state(5, seed=1),
    ], ids=["ghz4", "w5", "dicke52", "sparse6", "dense5"])
    def test_stepwise_equals_one_shot(self, state):
        """Driving a run one expansion at a time must be differentially
        identical to ``prepare_state``: costs, flags, and full trace."""
        one_shot = prepare_state(state)
        run = WorkflowRun(state)
        steps = 0
        while not run.status.terminal:
            run.step(1)
            steps += 1
        assert steps > 1  # genuinely stepwise, not one opaque blob
        stepped = run.result()
        assert stepped.cnot_cost == one_shot.cnot_cost
        assert stepped.exact_optimal == one_shot.exact_optimal
        assert stepped.sparse_path == one_shot.sparse_path
        assert stepped.trace == one_shot.trace

    def test_cancel_mid_flow(self):
        run = WorkflowRun(dicke_state(6, 3))
        status = run.step(1)
        assert status is RunStatus.RUNNING
        run.cancel()
        assert run.status is RunStatus.CANCELLED
        with pytest.raises(SynthesisError):
            run.result()
        # cancelling twice is harmless
        run.cancel()
        assert run.status is RunStatus.CANCELLED

    def test_deadline_flush_returns_verified_best_so_far(self):
        state = dicke_state(6, 3)
        run = WorkflowRun(state)
        run.step(1)
        assert not run.status.terminal
        result = run.flush_feasible()
        assert result is not None
        assert prepares_state(result.circuit, state)
        assert any("deadline flush" in line for line in result.trace)
        assert result.trace[-1] == "verified by simulation"

    def test_incumbent_injection_is_monotone(self):
        run = WorkflowRun(random_sparse_state(6, seed=1))
        run.step(1)
        run.inject_incumbent(100)
        run.inject_incumbent(200)  # looser bound must not regress
        result = run.run_to_completion()
        assert result.cnot_cost <= 100 or not result.exact_optimal

    def test_identical_cores_searched_once(self, monkeypatch):
        """Satellite (a): when two reduction candidates end at the same
        entangled core, the second exact search is a cache hit — and the
        trace still reports both candidates."""
        state = random_sparse_state(6, seed=1)
        config = QSPConfig()
        moves, reduced = reduce_cardinality(
            state,
            stop_cardinality=config.exact_cardinality,
            stop_entangled=config.exact_qubits,
            config=config.reduction)
        monkeypatch.setattr(workflow_module, "_gh_reduction_to_thresholds",
                            lambda s, c: (moves, reduced))
        run = WorkflowRun(state, config)
        result = run.run_to_completion()
        assert run.core_reuse == 1
        assert prepares_state(result.circuit, state)
        assert any("selected reduction strategy" in line
                   for line in result.trace)

"""End-to-end integration tests: every synthesis flow against the
simulator on shared targets, plus the paper's headline claims at test
scale."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.dicke_manual import manual_cnot_count
from repro.baselines.hybrid import hybrid_synthesize
from repro.baselines.mflow import mflow_synthesize
from repro.baselines.nflow import nflow_synthesize
from repro.core.exact import synthesize_exact
from repro.opt.passes import optimize_circuit
from repro.qsp.solver import compare_methods
from repro.qsp.workflow import prepare_state
from repro.sim.statevector import simulate_circuit
from repro.sim.verify import prepares_state
from repro.states.families import dicke_state
from repro.states.qstate import QState
from repro.states.random_states import random_sparse_state, random_uniform_state


class TestMotivatingExample:
    """Section III of the paper, all three circuits."""

    PSI = None

    @pytest.fixture(autouse=True)
    def _target(self):
        self.psi = QState.uniform(3, [0b000, 0b011, 0b101, 0b110])

    def test_qubit_reduction_costs_six(self):
        circuit = nflow_synthesize(self.psi)
        assert circuit.cnot_cost() == 6
        assert prepares_state(circuit, self.psi)

    def test_cardinality_reduction_around_seven(self):
        circuit = mflow_synthesize(self.psi)
        assert prepares_state(circuit, self.psi)
        # paper's Fig. 2 shows 7; our GH implementation may find slightly
        # fewer, but must stay above the optimum.
        assert 2 <= circuit.cnot_cost() <= 7

    def test_exact_costs_two(self):
        result = synthesize_exact(self.psi)
        assert result.cnot_cost == 2
        assert result.optimal


class TestDicke42Headline:
    def test_2x_improvement_over_manual(self):
        result = synthesize_exact(dicke_state(4, 2))
        assert result.cnot_cost == 6
        assert manual_cnot_count(4, 2) == 12  # 2x reduction, Fig. 6


class TestAllMethodsAgree:
    """Every flow prepares the same target (different costs)."""

    @pytest.mark.parametrize("seed", range(3))
    def test_sparse_target(self, seed):
        s = random_sparse_state(5, seed=seed)
        for circuit in (mflow_synthesize(s), nflow_synthesize(s),
                        prepare_state(s).circuit):
            assert prepares_state(circuit, s)
        hybrid = hybrid_synthesize(s)
        vec = simulate_circuit(hybrid)
        target = np.kron(s.to_vector(), [1.0, 0.0]).astype(complex)
        assert abs(np.vdot(target, vec)) ** 2 >= 1 - 1e-7

    def test_comparison_row_is_consistent(self):
        s = random_uniform_state(5, 8, seed=5)
        row = compare_methods(s)
        assert row.nflow == 30
        assert row.ours <= row.nflow


class TestOptimizePostpass:
    @pytest.mark.parametrize("seed", range(3))
    def test_optimizer_preserves_prepared_state(self, seed):
        s = random_sparse_state(5, seed=40 + seed)
        circuit = prepare_state(s).circuit
        slim = optimize_circuit(circuit.decompose())
        assert slim.cnot_cost() <= circuit.cnot_cost()
        assert prepares_state(slim, s)


class TestQasmRoundTripEndToEnd:
    def test_synthesized_circuit_survives_export(self):
        from repro.circuits.qasm import from_qasm, to_qasm
        s = dicke_state(4, 2)
        circuit = synthesize_exact(s).circuit
        back = from_qasm(to_qasm(circuit))
        assert prepares_state(back, s)

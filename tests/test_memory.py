"""Tests for the persistent cross-search memory (repro.core.memory).

Covers the container semantics, the warm-vs-cold equivalence guarantee
(memory only skips recomputation), the persistent-table IDA* differential
against A*, and the transposition soundness regression: the pre-fix write
rule records path-dependent exhaustion claims as unconditional, and such
an entry provably misleads a later search.
"""

from __future__ import annotations

import pytest

from repro.constants import SEARCH_PERM_CAP, SEARCH_TIE_CAP
from repro.core.astar import SearchConfig, astar_search
from repro.core.beam import BeamConfig, beam_search
from repro.core.canonical import CanonLevel
from repro.core.idastar import IDAStarConfig, idastar_search
from repro.core.kernel import CanonContext, CanonKey, StatePool
from repro.core.memory import HashStore, SearchMemory, TranspositionTable
from repro.exceptions import MemoryCompatibilityError
from repro.sim.verify import prepares_state
from repro.states.families import dicke_state, ghz_state, w_state
from repro.states.qstate import QState
from repro.states.random_states import random_uniform_state


def _canon_key(state: QState) -> CanonKey:
    """The PU2 search-default canonical key of a state (fresh context)."""
    ctx = CanonContext(CanonLevel.PU2, SEARCH_TIE_CAP, SEARCH_PERM_CAP,
                       cache_cap=64)
    return ctx.key(StatePool().from_qstate(state))


class _FakeState:
    """Minimal stand-in carrying the two fields HashStore keys on."""

    __slots__ = ("hash64", "payload")

    def __init__(self, hash64: int, payload: bytes):
        self.hash64 = hash64
        self.payload = payload


class TestHashStore:
    def test_put_get_roundtrip(self):
        store = HashStore(cap=8)
        a = _FakeState(1, b"a")
        store.put(a, "va")
        assert store.get(a) == "va"
        assert store.hits == 1

    def test_miss_counts(self):
        store = HashStore(cap=8)
        assert store.get(_FakeState(5, b"x")) is None
        assert store.misses == 1

    def test_hash_collision_spills_by_payload(self):
        store = HashStore(cap=8)
        a = _FakeState(7, b"a")
        b = _FakeState(7, b"b")  # same 64-bit hash, different state
        store.put(a, "va")
        store.put(b, "vb")
        assert store.get(a) == "va"
        assert store.get(b) == "vb"
        assert store.collisions == 1

    def test_eviction_respects_cap(self):
        store = HashStore(cap=4)
        for i in range(10):
            store.put(_FakeState(i, bytes([i])), i)
        assert len(store._primary) <= 4
        assert store.evictions > 0

    def test_items_payload_delta_survives_eviction(self):
        # positional skipping must account for front-eviction: without
        # the eviction adjustment a full store would ship an empty delta
        # and batch workers would silently lose what they learned
        store = HashStore(cap=8)
        for i in range(8):
            store.put(_FakeState(i, bytes([i])), i)
        marker = store.size_marker()
        for i in range(8, 16):
            store.put(_FakeState(i, bytes([i])), i)
        delta = dict(store.items_payload(marker))
        survivors = dict(store.items_payload())
        assert delta  # the pre-fix bug: empty delta after eviction
        # exactly the surviving post-marker additions, nothing pre-marker
        assert delta == {payload: value
                         for payload, value in survivors.items()
                         if value >= 8}


class TestTranspositionTable:
    def test_unconditional_roundtrip(self):
        table = TranspositionTable(cap=16)
        table.record("C", 3.0, frozenset())
        assert table.lookup("C", 3.0, set()) == frozenset()
        assert table.lookup("C", 2.0, set()) == frozenset()
        assert table.lookup("C", 4.0, set()) is None  # budget too small

    def test_record_only_raises_budget(self):
        table = TranspositionTable(cap=16)
        table.record("C", 3.0, frozenset())
        table.record("C", 1.0, frozenset())
        assert table.data["C"] == 3.0
        table.record("C", 5.0, frozenset())
        assert table.data["C"] == 5.0

    def test_conditional_requires_path_superset(self):
        table = TranspositionTable(cap=16)
        table.record("C", 3.0, frozenset({"A", "B"}))
        assert table.lookup("C", 2.0, {"A", "B", "X"}) == frozenset({"A", "B"})
        assert table.lookup("C", 2.0, {"A", "X"}) is None  # B missing
        assert table.lookup("C", 4.0, {"A", "B"}) is None  # budget too small

    def test_conditional_prefers_weaker_condition(self):
        table = TranspositionTable(cap=16)
        table.record("C", 3.0, frozenset({"A", "B"}))
        table.record("C", 3.0, frozenset({"A"}))  # strictly weaker: replaces
        assert table.cond["C"] == (3.0, frozenset({"A"}))
        table.record("C", 3.0, frozenset({"B", "D"}))  # not weaker: kept
        assert table.cond["C"] == (3.0, frozenset({"A"}))

    def test_eviction_respects_caps(self):
        table = TranspositionTable(cap=4)
        for i in range(10):
            table.record(i, 1.0, frozenset())
            table.record(f"c{i}", 1.0, frozenset({"A"}))
        assert len(table.data) <= 4
        assert len(table.cond) <= 4
        assert table.evictions > 0

    def test_eviction_drops_smallest_budgets_first(self):
        # budget-weighted replacement: an eviction sweep must sacrifice
        # the entries proving the smallest remaining budgets — a
        # large-budget proof subsumes every prune a small one provides
        table = TranspositionTable(cap=8)
        for i in range(8):
            table.record(f"k{i}", float(i), frozenset())
        table.record("overflow", 100.0, frozenset())  # triggers the sweep
        assert "k7" in table.data and "overflow" in table.data
        dropped = max(1, 8 // 8)
        survivors = {f"k{i}" for i in range(8)} & set(table.data)
        assert survivors == {f"k{i}" for i in range(dropped, 8)}

    def test_conditional_eviction_drops_smallest_budgets_first(self):
        table = TranspositionTable(cap=8)
        for i in range(8):
            table.record(f"k{i}", float(i), frozenset({"P"}))
        table.record("overflow", 100.0, frozenset({"P"}))
        assert "k7" in table.cond and "overflow" in table.cond
        assert "k0" not in table.cond  # the smallest budget went first

    def test_exhausted_budget_reads_only_unconditional(self):
        table = TranspositionTable(cap=8)
        table.record("C", 3.0, frozenset({"P"}))  # conditional: invisible
        assert table.exhausted_budget("C") is None
        table.record("C", 2.0, frozenset())
        assert table.exhausted_budget("C") == 2.0
        hits, misses = table.hits, table.misses
        table.exhausted_budget("C")
        assert (table.hits, table.misses) == (hits, misses)


class TestSearchMemoryLifecycle:
    def test_incompatible_attach_rejected(self):
        memory = SearchMemory()
        astar_search(ghz_state(3), SearchConfig(), memory=memory)
        with pytest.raises(MemoryCompatibilityError):
            astar_search(ghz_state(3), SearchConfig(tie_cap=7),
                         memory=memory)

    def test_incompatible_heuristic_rejected(self):
        from repro.core.heuristic import zero_heuristic

        memory = SearchMemory()
        astar_search(ghz_state(3), SearchConfig(), memory=memory)
        with pytest.raises(MemoryCompatibilityError):
            astar_search(ghz_state(3), SearchConfig(), memory=memory,
                         heuristic=zero_heuristic)

    def test_memory_requires_kernel_loop(self):
        with pytest.raises(ValueError):
            astar_search(ghz_state(3), SearchConfig(use_kernel=False),
                         memory=SearchMemory())

    def test_pool_rotation_preserves_stores(self):
        memory = SearchMemory(pool_rotate_cap=1)
        astar_search(dicke_state(4, 2), SearchConfig(), memory=memory)
        hits_before = memory.canon_store.hits
        astar_search(dicke_state(4, 2), SearchConfig(), memory=memory)
        assert memory.pool_rotations >= 1
        # the hash-keyed store kept serving keys across the rotation
        assert memory.canon_store.hits > hits_before

    def test_snapshot_is_json_serializable(self):
        import json

        memory = SearchMemory()
        astar_search(ghz_state(3), SearchConfig(), memory=memory)
        json.dumps(memory.snapshot())


class TestWarmColdEquivalence:
    """Same circuits, same costs, with and without persistent memory."""

    @pytest.mark.parametrize("seed", range(6))
    def test_astar_warm_equals_cold(self, seed):
        state = random_uniform_state(3, 4, seed=seed)
        config = SearchConfig(max_nodes=80_000)
        cold = astar_search(state, config)
        memory = SearchMemory()
        warm1 = astar_search(state, config, memory=memory)
        warm2 = astar_search(state, config, memory=memory)
        for warm in (warm1, warm2):
            assert warm.cnot_cost == cold.cnot_cost
            assert warm.optimal == cold.optimal
            assert [m.cost for m in warm.moves] == \
                [m.cost for m in cold.moves]
            assert prepares_state(warm.circuit, state)

    @pytest.mark.parametrize("seed", range(4))
    def test_beam_warm_equals_cold(self, seed):
        state = random_uniform_state(4, 4, seed=seed)
        config = BeamConfig(width=32)
        cold = beam_search(state, config)
        memory = SearchMemory()
        warm1 = beam_search(state, config, memory=memory)
        warm2 = beam_search(state, config, memory=memory)
        for warm in (warm1, warm2):
            assert warm.cnot_cost == cold.cnot_cost
            assert [m.cost for m in warm.moves] == \
                [m.cost for m in cold.moves]
            assert prepares_state(warm.circuit, state)

    def test_idastar_warm_equals_cold_on_rerun(self):
        state = dicke_state(4, 2)
        cold = idastar_search(state)
        memory = SearchMemory()
        warm1 = idastar_search(state, memory=memory)
        warm2 = idastar_search(state, memory=memory)
        assert warm1.cnot_cost == cold.cnot_cost == warm2.cnot_cost
        # the warm re-run reused exhausted subtrees instead of re-probing
        assert warm2.stats.nodes_expanded < warm1.stats.nodes_expanded
        assert warm2.stats.transposition_hits > 0
        assert prepares_state(warm2.circuit, state)

    def test_family_runner_warm_equals_cold(self):
        from repro.experiments.family_runner import (
            FamilyRunConfig,
            dicke_family_targets,
            run_family,
        )

        targets = dicke_family_targets(4)
        cold = run_family(targets, FamilyRunConfig(warm=False))
        warm = run_family(targets, FamilyRunConfig(warm=True))
        assert cold.solved_costs == warm.solved_costs
        assert warm.memory is not None and cold.memory is None


class TestPersistentIDAStarDifferential:
    """A* vs IDA*-with-persistent-table on randomized instances, one
    shared memory across the whole batch (cross-search reuse active)."""

    @pytest.mark.parametrize("n,m,seeds", [(3, 4, range(8)),
                                           (4, 3, range(4))])
    def test_same_optimum_with_shared_memory(self, n, m, seeds):
        memory = SearchMemory()
        for seed in seeds:
            state = random_uniform_state(n, m, seed=seed)
            a = astar_search(state, SearchConfig(max_nodes=120_000))
            b = idastar_search(state, memory=memory)
            assert b.cnot_cost == a.cnot_cost, f"seed {seed}"
            assert b.optimal
            assert prepares_state(b.circuit, state)

    def test_mixed_engines_one_memory(self):
        memory = SearchMemory()
        state = dicke_state(4, 2)
        a = astar_search(state, SearchConfig(), memory=memory)
        b = idastar_search(state, memory=memory)
        c = beam_search(state, BeamConfig(width=64), memory=memory)
        assert a.cnot_cost == b.cnot_cost == 6
        assert c.cnot_cost >= 6


class TestTranspositionSoundnessRegression:
    """The pre-fix table recorded path-dependent exhaustion claims as
    unconditional; these tests pin the bug and its consequence."""

    def test_old_rule_drops_conditions_the_fix_keeps(self):
        state = dicke_state(4, 2)
        fixed_mem = SearchMemory()
        fixed = idastar_search(state, IDAStarConfig(), memory=fixed_mem)
        legacy_mem = SearchMemory()
        legacy = idastar_search(
            state, IDAStarConfig(record_truncated=True), memory=legacy_mem)
        assert fixed.cnot_cost == legacy.cnot_cost == 6
        # the fixed probe proves most exhausted subtrees path-dependent...
        assert fixed.stats.transposition_poisoned > 0
        assert len(fixed_mem.transposition.cond) > 0
        # ...which the old rule wrote as unconditional, universal claims
        assert len(legacy_mem.transposition.cond) == 0
        assert len(legacy_mem.transposition.data) > \
            len(fixed_mem.transposition.data)

    def test_unconditional_path_dependent_entry_misleads_idastar(self):
        """End-to-end consequence: an entry of exactly the shape the old
        rule writes (unconditional exhaustion whose claim only held
        relative to the writer's path) makes a later IDA* return a
        provably suboptimal cost flagged optimal.  This test fails under
        the pre-fix write semantics."""
        state = w_state(4)
        opt = astar_search(state, SearchConfig(max_nodes=150_000)).cnot_cost
        assert opt == 7  # paper Table IV
        memory = SearchMemory()
        # the old rule's write shape: "class exhausted within OPT budget,
        # no condition" — false, its proof leaned on the writer's path
        memory.transposition.data[_canon_key(state)] = float(opt)
        poisoned = idastar_search(state, memory=memory)
        assert poisoned.cnot_cost != opt  # unsound reuse: missed optimum
        assert poisoned.optimal  # ...while still claiming optimality

    def test_conditional_entry_with_same_claim_is_harmless(self):
        """The fix records the identical exhaustion with its path
        condition; a fresh search whose path lacks the named classes is
        then unaffected and finds the true optimum."""
        state = w_state(4)
        memory = SearchMemory()
        foreign = _canon_key(ghz_state(4))  # never on a W4 search path
        memory.transposition.cond[_canon_key(state)] = (7.0,
                                                        frozenset({foreign}))
        result = idastar_search(state, memory=memory)
        assert result.cnot_cost == 7

    def test_sound_entries_survive_claim_audit(self):
        """Every unconditional entry the fixed rule records states 'no
        goal within r from this class' — audit each claim against A*'s
        ground truth using a member state recovered from the canon store."""
        import numpy as np

        state = w_state(4)
        memory = SearchMemory()
        idastar_search(state, memory=memory)
        members: dict = {}
        for _h, (payload, key, _hits) in memory.canon_store._primary.items():
            n = int.from_bytes(payload[:2], "little")
            rest = payload[2:]
            m = len(rest) // 16
            idx = np.frombuffer(rest[:8 * m], dtype=np.int64)
            amp = np.frombuffer(rest[8 * m:], dtype=np.float64)
            members.setdefault(key, QState.from_packed(n, idx, amp.copy()))
        audited = 0
        for key, budget in memory.transposition.data.items():
            member = members.get(key)
            if member is None:
                continue
            true_cost = astar_search(
                member, SearchConfig(max_nodes=100_000)).cnot_cost
            assert true_cost > budget, \
                f"false exhaustion claim: OPT {true_cost} <= {budget}"
            audited += 1
        assert audited > 0


class TestAStarIncumbentBranchAndBound:
    """A* consults unconditional transposition exhaustion entries once it
    holds an incumbent: identical costs, never more expansions."""

    @pytest.mark.parametrize("seed", range(6))
    def test_same_cost_fewer_expansions(self, seed):
        from repro.core.beam import BeamConfig, beam_search

        state = random_uniform_state(3, 4, seed=seed)
        config = SearchConfig(max_nodes=120_000)
        cold = astar_search(state, config)
        memory = SearchMemory()
        idastar_search(state, memory=memory)  # deposit exhaustion proofs
        incumbent = beam_search(state, BeamConfig(width=64), memory=memory)
        bnb = astar_search(state, config, memory=memory,
                           incumbent=incumbent)
        assert bnb.cnot_cost == cold.cnot_cost
        assert bnb.optimal
        assert bnb.stats.nodes_expanded <= cold.stats.nodes_expanded
        assert prepares_state(bnb.circuit, state)

    def test_differential_on_dicke_row(self):
        from repro.core.beam import BeamConfig, beam_search

        state = dicke_state(4, 2)
        cold = astar_search(state, SearchConfig())
        memory = SearchMemory()
        idastar_search(state, memory=memory)
        incumbent = beam_search(state, BeamConfig(width=128), memory=memory)
        bnb = astar_search(state, SearchConfig(), memory=memory,
                           incumbent=incumbent)
        assert bnb.cnot_cost == cold.cnot_cost == 6
        assert bnb.stats.nodes_expanded < cold.stats.nodes_expanded
        assert bnb.stats.incumbent_prunes + \
            bnb.stats.bnb_transposition_prunes > 0

    def test_plain_incumbent_without_memory_prunes(self):
        state = dicke_state(4, 2)
        cold = astar_search(state, SearchConfig())
        bnb = astar_search(state, SearchConfig(), incumbent=cold)
        assert bnb.cnot_cost == cold.cnot_cost
        assert bnb.stats.nodes_expanded <= cold.stats.nodes_expanded
        assert bnb.stats.incumbent_prunes > 0

    def test_integer_bound_without_circuit(self):
        # an int incumbent bound prunes everything >= the bound: a
        # strictly better solution is returned, but when the bound *is*
        # the optimum there is no circuit to return and the engine must
        # refuse loudly (carrying the bound as a proven lower bound)
        from repro.exceptions import SearchBudgetExceeded

        state = dicke_state(4, 2)
        result = astar_search(state, SearchConfig(), incumbent=7)
        assert result.cnot_cost == 6 and result.optimal
        with pytest.raises(SearchBudgetExceeded) as excinfo:
            astar_search(state, SearchConfig(), incumbent=6)
        assert excinfo.value.lower_bound == 6

    def test_incumbent_requires_kernel_loop(self):
        with pytest.raises(ValueError):
            astar_search(ghz_state(3), SearchConfig(use_kernel=False),
                         incumbent=2)


class TestBeamSatellites:
    def test_include_x_moves_passed_through(self, monkeypatch):
        import repro.core.beam as beam_mod

        observed: list[bool] = []
        real = beam_mod.successors_packed

        def spy(pool, ps, max_merge_controls=None, include_x_moves=False,
                topology=None):
            observed.append(include_x_moves)
            return real(pool, ps, max_merge_controls=max_merge_controls,
                        include_x_moves=include_x_moves, topology=topology)

        monkeypatch.setattr(beam_mod, "successors_packed", spy)
        beam_search(ghz_state(3), BeamConfig(width=8, include_x_moves=True))
        assert observed and all(observed)
        observed.clear()
        beam_search(ghz_state(3), BeamConfig(width=8))
        assert observed and not any(observed)

    def test_elapsed_set_on_normal_return(self):
        result = beam_search(dicke_state(4, 2), BeamConfig(width=32))
        assert result.stats.elapsed_seconds > 0.0
        assert result.stats.canon_cache_misses > 0

    def test_elapsed_set_on_completion_path(self):
        # an immediately-expired stopwatch forces the mflow-completion
        # return path; its stats must still carry a real elapsed time
        result = beam_search(dicke_state(4, 2),
                             BeamConfig(width=32, time_limit=0.0))
        assert result.cnot_cost > 0
        assert result.stats.elapsed_seconds > 0.0

    def test_seen_g_is_bounded(self):
        config = BeamConfig(width=32, cache_cap=16, max_depth=12)
        result = beam_search(dicke_state(4, 2), config)
        assert result.cnot_cost > 0
        assert result.stats.dedup_evictions > 0

"""Unit tests for circuit equivalence checking."""

from __future__ import annotations

import math

import pytest

from repro.circuits.circuit import QCircuit
from repro.sim.equivalence import circuits_equivalent, probe_equivalent


class TestExactPath:
    def test_identical(self):
        a = QCircuit(2).ry(0, 0.4).cx(0, 1)
        assert circuits_equivalent(a, a)

    def test_decomposition_equivalent(self):
        a = QCircuit(3)
        a.mcry([(0, 1), (1, 0)], 2, 0.9)
        assert circuits_equivalent(a, a.decompose())

    def test_different_circuits(self):
        a = QCircuit(2).cx(0, 1)
        b = QCircuit(2).cx(1, 0)
        assert not circuits_equivalent(a, b)

    def test_width_mismatch(self):
        assert not circuits_equivalent(QCircuit(2), QCircuit(3))

    def test_global_phase_toggle(self):
        # Ry(2pi) = -I: equal only up to global phase.
        a = QCircuit(1).ry(0, 2 * math.pi)
        b = QCircuit(1)
        assert circuits_equivalent(a, b, up_to_global_phase=True)
        assert not circuits_equivalent(a, b, up_to_global_phase=False)


class TestProbePath:
    def test_wide_equivalence_uses_probing(self):
        # 9 qubits: above the exact-unitary cutoff.
        a = QCircuit(9)
        b = QCircuit(9)
        for q in range(8):
            a.cx(q, q + 1)
            b.cx(q, q + 1)
        assert circuits_equivalent(a, b)

    def test_probe_detects_difference(self):
        a = QCircuit(9)
        b = QCircuit(9)
        a.cx(0, 8)
        b.cx(8, 0)
        assert not probe_equivalent(a, b)

    def test_probe_accepts_commuted_gates(self):
        a = QCircuit(9).x(0).x(5)
        b = QCircuit(9).x(5).x(0)
        assert probe_equivalent(a, b)

    def test_probe_strict_phase(self):
        a = QCircuit(9).ry(0, 2 * math.pi)  # = -I
        b = QCircuit(9)
        assert probe_equivalent(a, b, up_to_global_phase=True)
        assert not probe_equivalent(a, b, up_to_global_phase=False)

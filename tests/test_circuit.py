"""Unit tests for the circuit container."""

from __future__ import annotations

import math

import pytest

from repro.circuits.circuit import QCircuit
from repro.circuits.gates import CRYGate, CXGate, MCRYGate, RYGate
from repro.exceptions import CircuitError


class TestBuilding:
    def test_fluent_api(self):
        qc = QCircuit(3).x(0).ry(1, 0.5).cx(0, 2)
        assert len(qc) == 3
        assert [g.name for g in qc] == ["x", "ry", "cx"]

    def test_append_validates_width(self):
        with pytest.raises(CircuitError):
            QCircuit(2).cx(0, 2)

    def test_mcry_dispatch(self):
        qc = QCircuit(4)
        qc.mcry([], 0, 0.3)
        qc.mcry([(1, 1)], 0, 0.3)
        qc.mcry([(1, 1), (2, 0)], 0, 0.3)
        assert [g.name for g in qc] == ["ry", "cry", "mcry"]

    def test_compose_width_mismatch(self):
        with pytest.raises(CircuitError):
            QCircuit(2).compose(QCircuit(3))

    def test_compose(self):
        a = QCircuit(2).x(0)
        b = QCircuit(2).cx(0, 1)
        a.compose(b)
        assert len(a) == 2

    def test_zero_qubits_rejected(self):
        with pytest.raises(CircuitError):
            QCircuit(0)


class TestAnalysis:
    def test_cnot_cost_sums_table1(self):
        qc = QCircuit(4)
        qc.ry(0, 1.0)                 # 0
        qc.cx(0, 1)                   # 1
        qc.cry(0, 1, 0.5)             # 2
        qc.mcry([(0, 1), (1, 1), (2, 1)], 3, 0.5)  # 8
        assert qc.cnot_cost() == 11

    def test_count_by_name(self):
        qc = QCircuit(2).x(0).x(1).cx(0, 1)
        assert qc.count_by_name() == {"x": 2, "cx": 1}

    def test_depth(self):
        qc = QCircuit(3).x(0).x(1).cx(0, 1).x(2)
        assert qc.depth() == 2

    def test_two_qubit_depth_ignores_free_gates(self):
        qc = QCircuit(2).ry(0, 1.0).ry(1, 1.0).cx(0, 1).ry(0, 0.5)
        assert qc.two_qubit_depth() == 1

    def test_empty_depth(self):
        assert QCircuit(3).depth() == 0


class TestTransforms:
    def test_inverse_reverses_and_inverts(self):
        qc = QCircuit(2).ry(0, 0.7).cx(0, 1)
        inv = qc.inverse()
        assert inv[0].name == "cx"
        assert inv[1].name == "ry"
        assert inv[1].theta == -0.7

    def test_remap(self):
        qc = QCircuit(2).cx(0, 1)
        out = qc.remap({0: 1, 1: 0})
        assert out[0].control == 1 and out[0].target == 0

    def test_remap_invalid(self):
        with pytest.raises(CircuitError):
            QCircuit(2).remap({0: 0, 1: 0})

    def test_embedded(self):
        qc = QCircuit(2).cx(0, 1)
        wide = qc.embedded(4, [2, 3])
        assert wide.num_qubits == 4
        assert wide[0].control == 2 and wide[0].target == 3

    def test_embedded_narrower_rejected(self):
        with pytest.raises(CircuitError):
            QCircuit(3).embedded(2)

    def test_embedded_bad_placement(self):
        with pytest.raises(CircuitError):
            QCircuit(2).embedded(4, [1, 1])


class TestEquality:
    def test_eq(self):
        a = QCircuit(2).cx(0, 1)
        b = QCircuit(2).cx(0, 1)
        assert a == b

    def test_neq_gate_order(self):
        a = QCircuit(2).x(0).x(1)
        b = QCircuit(2).x(1).x(0)
        assert a != b


class TestDraw:
    def test_draw_nonempty(self):
        qc = QCircuit(3).ry(0, math.pi / 2).cx(0, 1).cry(1, 2, 0.3, phase=0)
        art = qc.draw()
        assert art.count("\n") == 2
        assert "RY" in art and "X" in art and "o" in art

    def test_draw_empty(self):
        assert QCircuit(2).draw().count("\n") == 1

    def test_repr(self):
        qc = QCircuit(2).cx(0, 1)
        assert "cnots=1" in repr(qc)

"""Differential tests: compiled ``_fastcore`` vs the pure-Python kernel.

The compiled extension is an *optional* accelerator — every fast path in
:mod:`repro.core.kernel` keeps its Python twin, selected at call time via
``repro.core.fastcore.active``.  The contract is strict bit-identity: with
the extension on or off, searches must visit the same nodes, produce the
same canonical keys, and intern byte-identical states.  These tests pin
that contract:

* canonical keys, move sets, and successor states are compared bit-for-bit
  between the two paths on randomized sparse states (including the tiny
  candidate-count regime that exercises the scalar orbit-hash path);
* a forced global 64-bit hash collision must stay harmless with the native
  ``U64Map`` containers active, exactly as with dicts;
* ``U64Map`` itself is differentially tested against a plain dict;
* ``REPRO_NO_FASTCORE=1`` must select the fallback in a fresh process;
* the splitmix64 constant table in ``_splitmix.h`` is parsed and compared
  against :mod:`repro.core.splitmix` so the two single-source copies can
  never drift apart silently — even on machines without a compiler.

When the extension is unavailable the differential tests skip; the
source-level tests (header parse, collision counting, fallback selection)
always run.
"""

from __future__ import annotations

import os
import re
import subprocess
import sys
from contextlib import contextmanager
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.core.kernel as kernel
from repro.core import fastcore
from repro.core.astar import SearchConfig, astar_search
from repro.core.canonical import CanonLevel
from repro.core.kernel import (
    CanonKey,
    HashKeyedMap,
    StatePool,
    canonical_key_packed,
    enumerate_cx_packed,
    enumerate_merges_packed,
    quantize_array,
    successors_packed,
)
from repro.core.splitmix import SPLITMIX_CONSTANTS
from repro.sim.verify import prepares_state
from repro.states.families import dicke_state, ghz_state, w_state
from repro.states.qstate import QState

HAVE_FASTCORE = fastcore.available()
needs_fastcore = pytest.mark.skipif(
    not HAVE_FASTCORE,
    reason="compiled _fastcore unavailable (no compiler / REPRO_NO_FASTCORE)",
)

SRC_ROOT = Path(__file__).resolve().parent.parent / "src"


def random_state(seed: int, uniform_bias: float = 0.4) -> QState:
    rng = np.random.default_rng(seed)
    n = int(rng.integers(2, 7))
    m = int(rng.integers(2, min(10, 1 << n) + 1))
    idx = rng.choice(1 << n, size=m, replace=False)
    if rng.random() < uniform_bias:
        amps = np.ones(m)
    else:
        amps = rng.standard_normal(m)
    return QState(n, {int(i): float(a) for i, a in zip(idx, amps)})


@contextmanager
def python_path():
    """Run the body with the compiled path disabled, restoring it after."""
    fastcore.set_enabled(False)
    try:
        yield
    finally:
        fastcore.set_enabled(True)


def assert_states_bit_identical(a, b) -> None:
    """PackedState equality down to the float bit patterns (catches -0.0)."""
    assert a.n == b.n
    assert a.payload == b.payload
    assert a.idx.tobytes() == b.idx.tobytes()
    assert a.amp.tobytes() == b.amp.tobytes()
    assert a.qamp.tobytes() == b.qamp.tobytes()


# ----------------------------------------------------------------------
# Differential identity: compiled path vs Python path
# ----------------------------------------------------------------------

@needs_fastcore
class TestCompiledPythonParity:
    @given(st.integers(0, 600))
    @settings(max_examples=120, deadline=None)
    def test_canonical_keys_bit_identical(self, seed):
        state = random_state(seed)
        native = canonical_key_packed(StatePool().from_qstate(state),
                                      CanonLevel.PU2, 256, 24)
        with python_path():
            pure = canonical_key_packed(StatePool().from_qstate(state),
                                        CanonLevel.PU2, 256, 24)
        assert native.h == pure.h
        assert native.full == pure.full

    @given(st.integers(0, 600))
    @settings(max_examples=80, deadline=None)
    def test_move_sets_identical(self, seed):
        state = random_state(seed)
        ps = StatePool().from_qstate(state)
        native_cx = enumerate_cx_packed(ps)
        native_merges = [enumerate_merges_packed(ps, t, max_controls=cap)
                         for t in range(ps.n) for cap in (None, 1, 2)]
        with python_path():
            ps2 = StatePool().from_qstate(state)
            assert enumerate_cx_packed(ps2) == native_cx
            pure_merges = [enumerate_merges_packed(ps2, t, max_controls=cap)
                           for t in range(ps2.n) for cap in (None, 1, 2)]
        assert pure_merges == native_merges

    @given(st.integers(0, 600))
    @settings(max_examples=80, deadline=None)
    def test_successor_states_bit_identical(self, seed):
        state = random_state(seed)
        native = successors_packed(StatePool(),
                                   StatePool().from_qstate(state),
                                   include_x_moves=True)
        with python_path():
            pure = successors_packed(StatePool(),
                                     StatePool().from_qstate(state),
                                     include_x_moves=True)
        assert [mv for mv, _ in native] == [mv for mv, _ in pure]
        for (_, a), (_, b) in zip(native, pure):
            assert_states_bit_identical(a, b)

    @given(st.integers(0, 600))
    @settings(max_examples=100, deadline=None)
    def test_interned_states_bit_identical(self, seed):
        state = random_state(seed, uniform_bias=0.2)
        native = StatePool().from_qstate(state)
        with python_path():
            pure = StatePool().from_qstate(state)
        assert native.hash64 == pure.hash64
        assert_states_bit_identical(native, pure)

    @given(st.integers(0, 400))
    @settings(max_examples=60, deadline=None)
    def test_quantize_bit_identical(self, seed):
        rng = np.random.default_rng(seed)
        amp = rng.standard_normal(int(rng.integers(1, 40)))
        amp *= 10.0 ** rng.integers(-12, 3)
        if rng.random() < 0.3:
            amp[:: 2] = -0.0  # the sign-of-zero normalization case
        native = quantize_array(amp)
        with python_path():
            pure = quantize_array(amp)
        assert native.tobytes() == pure.tobytes()

    @given(st.integers(0, 400))
    @settings(max_examples=60, deadline=None)
    def test_scalar_orbit_regime_matches_compiled(self, seed):
        """Tiny candidate counts route the Python path through
        ``_orbit_hash_scalar``; the compiled hash must agree there too."""
        state = random_state(seed)
        native = canonical_key_packed(StatePool().from_qstate(state),
                                      CanonLevel.PU2, 256, 24)
        saved = kernel._SCALAR_ORBIT_LIMIT
        try:
            kernel._SCALAR_ORBIT_LIMIT = 10 ** 9  # force scalar everywhere
            with python_path():
                scalar = canonical_key_packed(StatePool().from_qstate(state),
                                              CanonLevel.PU2, 256, 24)
        finally:
            kernel._SCALAR_ORBIT_LIMIT = saved
        assert native.h == scalar.h
        assert native.full == scalar.full

    def test_known_family_search_identical(self):
        """End-to-end A* parity on a known family: same cost, same node
        counts, so the native path explores the identical search tree."""
        config = SearchConfig(max_nodes=30_000, time_limit=120)
        native = astar_search(dicke_state(4, 2), config)
        with python_path():
            pure = astar_search(dicke_state(4, 2), config)
        assert native.cnot_cost == pure.cnot_cost == 6
        assert native.optimal and pure.optimal
        assert native.stats.nodes_expanded == pure.stats.nodes_expanded
        assert native.stats.nodes_generated == pure.stats.nodes_generated

    def test_forced_hash_collision_with_native_containers(self, monkeypatch):
        """A global 64-bit collision must stay harmless when the native
        U64Map backs the interning-side containers."""
        monkeypatch.setattr(kernel, "state_hash64", lambda payload: 42)
        pool = StatePool()
        a = pool.from_qstate(ghz_state(3))
        b = pool.from_qstate(w_state(3))
        c = pool.from_qstate(ghz_state(3))
        assert a is not b
        assert a is c
        assert pool.hash_collisions >= 1

    def test_search_correct_under_forced_collision_native(self, monkeypatch):
        monkeypatch.setattr(kernel, "state_hash64", lambda payload: 7)
        result = astar_search(w_state(3),
                              SearchConfig(max_nodes=50_000, time_limit=60))
        assert result.cnot_cost == 4
        assert result.optimal
        assert prepares_state(result.circuit, w_state(3))

    def test_compiled_constants_report(self):
        assert fastcore.active is not None
        assert dict(fastcore.active.splitmix_constants()) == \
            SPLITMIX_CONSTANTS


# ----------------------------------------------------------------------
# U64Map container semantics
# ----------------------------------------------------------------------

@needs_fastcore
class TestU64Map:
    def test_dict_semantics_random_ops(self):
        rng = np.random.default_rng(0)
        native = fastcore.active.U64Map()
        ref: dict[int, int] = {}
        keys = [int(k) for k in rng.integers(0, 2 ** 63, size=200)]
        keys += [0, 1, 2 ** 64 - 1, 2 ** 63, 2 ** 63 - 1]
        for step in range(4000):
            key = keys[int(rng.integers(0, len(keys)))]
            op = int(rng.integers(0, 10))
            if op < 6:
                native[key] = step
                ref[key] = step
            elif op < 8:
                assert native.get(key, -1) == ref.get(key, -1)
                assert (key in native) == (key in ref)
            elif key in ref:
                del native[key]
                del ref[key]
            assert len(native) == len(ref)
        assert list(native.items()) == list(ref.items())  # insertion order
        assert list(native.keys()) == list(ref.keys())
        assert list(native.values()) == list(ref.values())

    def test_missing_key_raises(self):
        native = fastcore.active.U64Map()
        with pytest.raises(KeyError):
            native[123]
        with pytest.raises(KeyError):
            del native[123]

    def test_low64_mask_aliasing_is_explicit(self):
        """Keys are compared by their low 64 bits (documented contract:
        every map instance is fed a single-sourced 64-bit key space)."""
        native = fastcore.active.U64Map()
        native[-1] = "neg"
        assert native[2 ** 64 - 1] == "neg"
        assert len(native) == 1


# ----------------------------------------------------------------------
# Always-on source-level tests (no extension required)
# ----------------------------------------------------------------------

class TestSplitmixSingleSource:
    def test_header_matches_python_table(self):
        """Parse ``_splitmix.h`` and compare with ``splitmix.py`` so the C
        and Python copies of the constants cannot drift independently."""
        header = (SRC_ROOT / "repro" / "core" / "_splitmix.h").read_text()
        macros = dict(
            (name, int(value, 16))
            for name, value in re.findall(
                r"#define\s+SM_(\w+)\s+0[xX]([0-9A-Fa-f]+)ULL", header)
        )
        assert macros == SPLITMIX_CONSTANTS

    def test_kernel_uses_shared_constants(self):
        from repro.core import splitmix

        assert kernel.GOLDEN is splitmix.GOLDEN
        assert kernel.MIX_A1 is splitmix.MIX_A1
        assert kernel.ORBIT_MUL is splitmix.ORBIT_MUL


class TestHashKeyedMapCollisions:
    def test_counts_distinct_spilled_keys_once(self):
        """Regression for the collision double-count: re-putting an
        already-spilled key is an update, not a new collision."""
        table = HashKeyedMap()
        k1 = CanonKey(3, 5, ("a",))
        k2 = CanonKey(3, 5, ("b",))
        k3 = CanonKey(3, 5, ("c",))
        table.put(k1, 1)
        assert table.collisions == 0
        table.put(k2, 2)
        assert table.collisions == 1
        table.put(k2, 20)  # update of a spilled key: not a new collision
        assert table.collisions == 1
        assert table.get(k2) == 20
        table.put(k3, 3)
        assert table.collisions == 2
        assert len(table) == 3
        assert [table.get(k) for k in (k1, k2, k3)] == [1, 20, 3]


class TestFallbackSelection:
    def test_env_var_disables_extension_in_fresh_process(self):
        """``REPRO_NO_FASTCORE=1`` must select the pure-Python path and the
        kernel must stay fully functional without the extension."""
        code = (
            "from repro.core import fastcore\n"
            "assert fastcore.active is None, fastcore.active\n"
            "assert not fastcore.available()\n"
            "from repro.core.astar import SearchConfig, astar_search\n"
            "from repro.states.families import w_state\n"
            "res = astar_search(w_state(3), SearchConfig(max_nodes=20000))\n"
            "assert res.cnot_cost == 4 and res.optimal\n"
            "print('fallback-ok')\n"
        )
        env = dict(os.environ, REPRO_NO_FASTCORE="1",
                   PYTHONPATH=str(SRC_ROOT))
        proc = subprocess.run([sys.executable, "-c", code],
                              capture_output=True, text=True, env=env,
                              timeout=300)
        assert proc.returncode == 0, proc.stderr
        assert "fallback-ok" in proc.stdout

    def test_set_enabled_round_trip(self):
        before = fastcore.active
        try:
            assert fastcore.set_enabled(False) is False
            assert fastcore.active is None
            restored = fastcore.set_enabled(True)
            assert restored == (fastcore._module is not None)
        finally:
            fastcore.active = before

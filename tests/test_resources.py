"""Unit tests for resource estimation."""

from __future__ import annotations

from repro.circuits.circuit import QCircuit
from repro.circuits.resources import estimate_resources


class TestResources:
    def test_counts(self):
        qc = QCircuit(3)
        qc.ry(0, 0.5).cx(0, 1).cry(1, 2, 0.7)
        report = estimate_resources(qc)
        assert report.num_qubits == 3
        assert report.num_gates == 3
        assert report.cnot_count == 3  # 1 + 2
        assert report.single_qubit_rotations == 3  # ry + 2 from cry
        assert report.histogram == {"ry": 1, "cx": 1, "cry": 1}

    def test_depths(self):
        qc = QCircuit(2).cx(0, 1)
        report = estimate_resources(qc)
        assert report.depth == 1
        assert report.two_qubit_depth == 1

    def test_str_render(self):
        report = estimate_resources(QCircuit(2).cx(0, 1))
        text = str(report)
        assert "CNOTs" in text and "depth" in text

    def test_empty_circuit(self):
        report = estimate_resources(QCircuit(2))
        assert report.cnot_count == 0
        assert report.depth == 0

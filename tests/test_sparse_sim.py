"""Tests for the sparse circuit simulator (repro.sim.sparse)."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits.circuit import QCircuit
from repro.exceptions import CircuitError
from repro.qsp.workflow import prepare_state
from repro.sim.sparse import (
    apply_gate_sparse,
    simulate_sparse,
    sparse_fidelity,
    sparse_prepares,
)
from repro.sim.statevector import simulate_circuit
from repro.states.families import dicke_state, ghz_state, w_state
from repro.states.qstate import QState
from repro.states.random_states import random_sparse_state, random_uniform_state


class TestApplyGateSparse:
    def test_x_flips_index(self):
        state = QState.basis(3, 0b000)
        qc = QCircuit(3).x(1)
        out = simulate_sparse(qc, state)
        assert out == QState.basis(3, 0b010)

    def test_cx_action(self):
        state = QState.basis(2, 0b10)
        out = simulate_sparse(QCircuit(2).cx(0, 1), state)
        assert out == QState.basis(2, 0b11)

    def test_negated_cx(self):
        state = QState.basis(2, 0b00)
        out = simulate_sparse(QCircuit(2).cx(0, 1, phase=0), state)
        assert out == QState.basis(2, 0b01)

    def test_ry_splits_amplitude(self):
        out = simulate_sparse(QCircuit(1).ry(0, math.pi / 2))
        assert out.cardinality == 2
        assert out.amplitude(0) == pytest.approx(1 / math.sqrt(2))
        assert out.amplitude(1) == pytest.approx(1 / math.sqrt(2))

    def test_rz_rejected(self):
        with pytest.raises(CircuitError):
            simulate_sparse(QCircuit(1).rz(0, 0.4))

    def test_gate_outside_register_rejected(self):
        from repro.circuits.gates import XGate

        with pytest.raises(CircuitError):
            apply_gate_sparse(QState.ground(2), XGate(target=5))

    def test_initial_width_mismatch(self):
        with pytest.raises(CircuitError):
            simulate_sparse(QCircuit(3), QState.ground(2))


class TestAgainstDenseSimulator:
    @pytest.mark.parametrize("seed", range(5))
    def test_matches_dense_on_random_circuits(self, seed):
        rng = np.random.default_rng(seed)
        n = 4
        qc = QCircuit(n)
        for _ in range(12):
            kind = rng.integers(4)
            if kind == 0:
                qc.ry(int(rng.integers(n)), float(rng.normal()))
            elif kind == 1:
                qc.x(int(rng.integers(n)))
            elif kind == 2:
                a, b = rng.choice(n, size=2, replace=False)
                qc.cx(int(a), int(b))
            else:
                a, b = rng.choice(n, size=2, replace=False)
                qc.cry(int(a), int(b), float(rng.normal()))
        dense = simulate_circuit(qc)
        sparse = simulate_sparse(qc).to_vector()
        assert np.allclose(dense, sparse, atol=1e-8)

    def test_mcry_matches_dense(self):
        qc = QCircuit(3).ry(0, 1.0).ry(1, 0.5)
        qc.mcry([(0, 1), (1, 0)], 2, 0.8)
        dense = simulate_circuit(qc)
        sparse = simulate_sparse(qc).to_vector()
        assert np.allclose(dense, sparse, atol=1e-8)


class TestVerification:
    def test_prepared_states_verify(self):
        for state in (ghz_state(4), w_state(4), dicke_state(4, 2)):
            circuit = prepare_state(state).circuit
            assert sparse_prepares(circuit, state)

    def test_wrong_state_rejected(self):
        circuit = prepare_state(ghz_state(3)).circuit
        assert not sparse_prepares(circuit, w_state(3))

    def test_global_sign_ignored(self):
        state = ghz_state(3)
        circuit = prepare_state(state).circuit
        assert sparse_prepares(circuit, state.negate())

    def test_fidelity_range(self):
        circuit = prepare_state(ghz_state(3)).circuit
        fid = sparse_fidelity(circuit, ghz_state(3))
        assert fid == pytest.approx(1.0, abs=1e-9)

    def test_wide_register_verification(self):
        # 18 qubits: far beyond the dense simulator's reach
        state = random_sparse_state(18, seed=3)
        result = prepare_state(state)
        assert sparse_prepares(result.circuit, state)

    def test_ghz16(self):
        state = ghz_state(16)
        result = prepare_state(state)
        assert sparse_prepares(result.circuit, state)


@given(st.integers(min_value=2, max_value=5), st.integers(min_value=0,
                                                          max_value=60))
@settings(max_examples=25, deadline=None)
def test_sparse_simulation_preserves_norm(n, seed):
    state = random_uniform_state(n, min(n, 1 << n), seed=seed)
    circuit = prepare_state(state).circuit
    out = simulate_sparse(circuit)
    assert out.norm() == pytest.approx(1.0, abs=1e-7)


@given(st.integers(min_value=0, max_value=40))
@settings(max_examples=15, deadline=None)
def test_sparse_verifies_workflow_output(seed):
    state = random_uniform_state(4, 5, seed=seed)
    result = prepare_state(state)
    assert sparse_prepares(result.circuit, state)

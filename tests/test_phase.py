"""Unit tests for the complex-amplitude phase oracle extension."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import StateError
from repro.opt.phase import phase_oracle_circuit, prepare_complex
from repro.sim.statevector import simulate_circuit


def _equal_up_to_global_phase(a: np.ndarray, b: np.ndarray,
                              atol: float = 1e-7) -> bool:
    ref = np.argmax(np.abs(b))
    if abs(b[ref]) < atol:
        return False
    phase = a[ref] / b[ref]
    return bool(np.allclose(a, phase * b, atol=atol))


class TestPhaseOracle:
    def test_diagonal_action(self, rng):
        phases = rng.uniform(-np.pi, np.pi, size=8)
        circuit = phase_oracle_circuit(phases)
        # Apply to a uniform superposition and compare phases.
        vec = np.full(8, 1 / np.sqrt(8), dtype=complex)
        out = simulate_circuit(circuit, initial=vec)
        expected = vec * np.exp(1j * phases)
        assert _equal_up_to_global_phase(out, expected)

    def test_zero_phases_empty_after_pruning(self):
        circuit = phase_oracle_circuit(np.zeros(8))
        assert len(circuit) == 0

    def test_cost_bounded(self, rng):
        phases = rng.uniform(-np.pi, np.pi, size=16)
        circuit = phase_oracle_circuit(phases)
        assert circuit.cnot_cost() <= 16 - 2

    def test_rejects_bad_length(self):
        with pytest.raises(StateError):
            phase_oracle_circuit(np.zeros(3))


class TestPrepareComplex:
    @pytest.mark.parametrize("seed", range(4))
    def test_random_complex_states(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(2, 5))
        vec = rng.standard_normal(1 << n) + 1j * rng.standard_normal(1 << n)
        vec /= np.linalg.norm(vec)
        circuit = prepare_complex(vec)
        out = simulate_circuit(circuit)
        assert _equal_up_to_global_phase(out, vec)

    def test_sparse_complex_state(self):
        vec = np.zeros(8, dtype=complex)
        vec[1] = 0.6
        vec[6] = 0.8j
        circuit = prepare_complex(vec)
        out = simulate_circuit(circuit)
        assert _equal_up_to_global_phase(out, vec)

    def test_real_state_needs_no_rz(self):
        vec = np.zeros(4)
        vec[0] = vec[3] = 1 / np.sqrt(2)
        circuit = prepare_complex(vec)
        assert all(g.name != "rz" for g in circuit)

    def test_unnormalized_input_normalized(self):
        vec = np.array([3.0, 0.0, 0.0, 4.0j])
        circuit = prepare_complex(vec)
        out = simulate_circuit(circuit)
        assert _equal_up_to_global_phase(out, vec / 5.0)

"""Unit tests for entanglement analysis (heuristic substrate)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.states.analysis import (
    entangled_pairs_mi,
    entangled_qubits,
    entanglement_lower_bound,
    mutual_information,
    mutual_information_matrix,
    num_entangled_qubits,
    pair_distribution,
    qubit_marginal,
    qubit_separable,
    schmidt_coefficients,
    schmidt_rank,
    separable_qubits,
)
from repro.states.families import dicke_state, ghz_state, w_state
from repro.states.qstate import QState


class TestSeparability:
    def test_ground_fully_separable(self):
        g = QState.ground(4)
        assert separable_qubits(g) == [0, 1, 2, 3]
        assert num_entangled_qubits(g) == 0

    def test_ghz_fully_entangled(self):
        s = ghz_state(3)
        assert entangled_qubits(s) == [0, 1, 2]

    def test_product_of_bell_pairs(self):
        # (|00>+|11>)/sqrt2 (x) |0>: qubit 2 separable, 0/1 entangled.
        s = QState.uniform(3, [0b000, 0b110])
        assert qubit_separable(s, 2)
        assert not qubit_separable(s, 0)
        assert not qubit_separable(s, 1)

    def test_plus_state_separable(self):
        s = QState.uniform(2, [0b00, 0b01])  # |0> (x) |+>
        assert separable_qubits(s) == [0, 1]

    def test_proportional_cofactors_with_signs(self):
        # q0 cofactors proportional with ratio -1: still separable.
        s = QState(2, {0b00: 0.5, 0b01: 0.5, 0b10: -0.5, 0b11: -0.5},
                   normalize=False)
        assert qubit_separable(s, 0)

    def test_w_state_entangled(self):
        assert num_entangled_qubits(w_state(4)) == 4


class TestLowerBound:
    def test_ghz4_paper_example(self):
        # Paper Sec. V-A: 4 entangled qubits -> bound 2 (true optimum 3).
        assert entanglement_lower_bound(ghz_state(4)) == 2

    def test_ground_zero(self):
        assert entanglement_lower_bound(QState.ground(5)) == 0

    def test_odd_count_rounds_up(self):
        assert entanglement_lower_bound(ghz_state(3)) == 2

    @pytest.mark.parametrize("n,k", [(3, 1), (4, 2), (5, 2)])
    def test_dicke_bound_positive(self, n, k):
        assert entanglement_lower_bound(dicke_state(n, k)) == (n + 1) // 2


class TestMutualInformation:
    def test_marginal(self):
        p0, p1 = qubit_marginal(ghz_state(2), 0)
        assert abs(p0 - 0.5) < 1e-12 and abs(p1 - 0.5) < 1e-12

    def test_pair_distribution_sums_to_one(self):
        dist = pair_distribution(w_state(3), 0, 1)
        assert abs(dist.sum() - 1.0) < 1e-12

    def test_ghz_pair_mi_is_one_bit(self):
        assert abs(mutual_information(ghz_state(3), 0, 1) - 1.0) < 1e-9

    def test_product_pair_mi_zero(self):
        s = QState.uniform(2, [0b00, 0b01])
        assert mutual_information(s, 0, 1) < 1e-9

    def test_matrix_symmetric(self):
        mi = mutual_information_matrix(w_state(4))
        assert np.allclose(mi, mi.T)
        assert np.allclose(np.diag(mi), 0.0)


class TestSchmidtRank:
    def test_product_rank_one(self):
        s = QState.uniform(3, [0b000, 0b001])
        assert schmidt_rank(s, [0]) == 1

    def test_ghz_rank_two(self):
        assert schmidt_rank(ghz_state(4), [0, 1]) == 2

    def test_w_rank_two(self):
        assert schmidt_rank(w_state(4), [0]) == 2


class TestEdgeCases:
    """Degenerate registers and borderline spectra (signature substrate).

    The pattern database keys abstractions on these functions, so their
    behavior at the edges — empty entanglement, one-qubit registers,
    rank decisions at the tolerance — must be pinned down, not
    incidental.
    """

    def test_fully_separable_product_state(self):
        # |+>^4: every qubit separable, no MI pairs, every cut rank 1.
        s = QState.uniform(4, list(range(16)))
        assert separable_qubits(s) == [0, 1, 2, 3]
        assert entanglement_lower_bound(s) == 0
        assert entangled_pairs_mi(s) == []
        assert schmidt_rank(s, [0, 1]) == 1

    def test_single_qubit_register(self):
        s = QState.uniform(1, [0, 1])  # |+> on one qubit
        assert qubit_separable(s, 0)
        assert entangled_qubits(s) == []
        assert entanglement_lower_bound(s) == 0
        assert entangled_pairs_mi(s) == []

    def test_single_qubit_full_subset_coefficients(self):
        # The full-register "cut" has no other side: one coefficient,
        # the state's norm.
        s = QState.uniform(1, [0, 1])
        coeffs = schmidt_coefficients(s, [0])
        assert len(coeffs) == 1
        assert abs(coeffs[0] - 1.0) < 1e-12

    def test_near_degenerate_coefficients_keep_rank(self):
        # Almost-equal Schmidt coefficients (split ~1e-4) are both far
        # above the rank tolerance: the rank must stay 2, not collapse.
        eps = 1e-4
        s = QState(2, {0b00: np.sqrt(0.5 + eps), 0b11: np.sqrt(0.5 - eps)},
                   normalize=False)
        assert schmidt_rank(s, [0]) == 2
        coeffs = schmidt_coefficients(s, [0])
        assert len([c for c in coeffs if c > 1e-9]) == 2
        assert abs(coeffs[0] - coeffs[1]) < 1e-3

    def test_sub_tolerance_coefficient_drops_rank(self):
        # A Schmidt coefficient below the 1e-9 rank tolerance is
        # quantization noise, not structure: rank 1, and the signature
        # built on it stays stable under such perturbations.
        s = QState(2, {0b00: 1.0, 0b11: 1e-10}, normalize=False)
        assert schmidt_rank(s, [0]) == 1

    def test_mi_threshold_is_wired(self):
        # Default threshold reports all GHZ pairs; an absurdly high one
        # reports none — the pinned constant actually gates the edges.
        s = ghz_state(3)
        assert len(entangled_pairs_mi(s)) == 3
        assert entangled_pairs_mi(s, threshold=2.0) == []

"""Unit tests for the sparse state representation."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.exceptions import NormalizationError, StateError
from repro.states.qstate import QState


def random_state_strategy(max_qubits: int = 5):
    """Hypothesis strategy producing small random QStates."""

    @st.composite
    def build(draw):
        n = draw(st.integers(1, max_qubits))
        dim = 1 << n
        m = draw(st.integers(1, min(dim, 8)))
        indices = draw(st.lists(st.integers(0, dim - 1), min_size=m,
                                max_size=m, unique=True))
        amps = draw(st.lists(
            st.floats(min_value=-2.0, max_value=2.0,
                      allow_nan=False, allow_infinity=False)
            .filter(lambda x: abs(x) > 1e-3),
            min_size=m, max_size=m))
        return QState(n, dict(zip(indices, amps)))

    return build()


class TestConstruction:
    def test_ground(self):
        g = QState.ground(3)
        assert g.is_ground()
        assert g.cardinality == 1
        assert g.amplitude(0) == 1.0

    def test_normalization(self):
        s = QState(2, {0: 3.0, 3: 4.0})
        assert abs(s.amplitude(0) - 0.6) < 1e-12
        assert abs(s.amplitude(3) - 0.8) < 1e-12
        assert abs(s.norm() - 1.0) < 1e-12

    def test_unnormalized_rejected(self):
        with pytest.raises(NormalizationError):
            QState(2, {0: 0.5, 1: 0.5}, normalize=False)

    def test_zero_state_rejected(self):
        with pytest.raises(StateError):
            QState(2, {})
        with pytest.raises(StateError):
            QState(2, {0: 1e-15})

    def test_index_out_of_range(self):
        with pytest.raises(StateError):
            QState(2, {4: 1.0})

    def test_zero_qubits_rejected(self):
        with pytest.raises(StateError):
            QState(0, {0: 1.0})

    def test_drops_tiny_amplitudes(self):
        s = QState(2, {0: 1.0, 1: 1e-14})
        assert s.cardinality == 1

    def test_from_vector_roundtrip(self):
        s = QState(3, {1: 0.6, 5: -0.8})
        assert QState.from_vector(s.to_vector()) == s

    def test_from_vector_rejects_complex(self):
        with pytest.raises(StateError):
            QState.from_vector(np.array([1j, 0.0]))

    def test_from_vector_rejects_bad_length(self):
        with pytest.raises(StateError):
            QState.from_vector(np.array([1.0, 0.0, 0.0]))

    def test_from_bitstring_weights(self):
        s = QState.from_bitstring_weights({"01": 1.0, "10": 1.0})
        assert s.index_set == frozenset({1, 2})

    def test_from_bitstring_weights_inconsistent(self):
        with pytest.raises(StateError):
            QState.from_bitstring_weights({"01": 1.0, "100": 1.0})


class TestAccessors:
    def test_sparsity_test(self):
        # n*m < 2^n: 4 qubits, m=3 -> 12 < 16 sparse.
        assert QState.uniform(4, [0, 1, 2]).is_sparse()
        # m = 8 -> 32 >= 16 dense.
        assert not QState.uniform(4, list(range(8))).is_sparse()

    def test_cofactor_indices(self):
        s = QState.uniform(2, [0b00, 0b11])
        assert s.cofactor_indices(0, 0) == frozenset({0b00})
        assert s.cofactor_indices(0, 1) == frozenset({0b11})

    def test_cofactor_aligned_keys(self):
        s = QState.uniform(2, [0b00, 0b11])
        assert set(s.cofactor(0, 0)) == {0b00}
        assert set(s.cofactor(0, 1)) == {0b01}  # bit cleared

    def test_qubit_column(self):
        s = QState.uniform(3, [0b000, 0b011, 0b101])
        assert s.qubit_column(0) == (0, 0, 1)
        assert s.qubit_column(2) == (0, 1, 1)


class TestEquality:
    def test_eq_hash(self):
        a = QState(2, {0: 1.0, 3: 1.0})
        b = QState.uniform(2, [0, 3])
        assert a == b
        assert hash(a) == hash(b)

    def test_quantized_equality(self):
        a = QState(1, {0: 1.0, 1: 1.0})
        b = QState(1, {0: 1.0 + 1e-13, 1: 1.0})
        assert a == b

    def test_different_signs_differ(self):
        a = QState(1, {0: 1.0, 1: 1.0})
        b = QState(1, {0: 1.0, 1: -1.0})
        assert a != b

    def test_approx_equal_global_sign(self):
        a = QState(2, {0: 1.0, 3: -1.0})
        b = a.negate()
        assert a.approx_equal(b)
        assert not a.approx_equal(b, up_to_global_sign=False)


class TestTransforms:
    def test_apply_x(self):
        s = QState.uniform(3, [0b000, 0b011])
        t = s.apply_x(0)
        assert t.index_set == frozenset({0b100, 0b111})

    def test_apply_cx_permutes(self):
        s = QState.uniform(2, [0b00, 0b10])
        t = s.apply_cx(0, 1)
        assert t.index_set == frozenset({0b00, 0b11})

    def test_apply_cx_negative_control(self):
        s = QState.uniform(2, [0b00, 0b10])
        t = s.apply_cx(0, 1, phase=0)
        assert t.index_set == frozenset({0b01, 0b10})

    def test_apply_cx_same_qubit_rejected(self):
        with pytest.raises(StateError):
            QState.ground(2).apply_cx(1, 1)

    def test_permute(self):
        s = QState.uniform(3, [0b100])
        t = s.permute([2, 0, 1])
        assert t.index_set == frozenset({0b010})

    def test_permute_invalid(self):
        with pytest.raises(StateError):
            QState.ground(3).permute([0, 0, 1])

    @given(random_state_strategy())
    def test_x_involution(self, s):
        assert s.apply_x(0).apply_x(0) == s

    @given(random_state_strategy())
    def test_cx_involution(self, s):
        if s.num_qubits >= 2:
            assert s.apply_cx(0, 1).apply_cx(0, 1) == s

    @given(random_state_strategy())
    def test_norm_preserved_by_transforms(self, s):
        assert abs(s.apply_x(0).norm() - 1.0) < 1e-9
        perm = list(range(s.num_qubits))[::-1]
        assert abs(s.permute(perm).norm() - 1.0) < 1e-9


class TestDisplay:
    def test_str_contains_bitstrings(self):
        s = QState.uniform(3, [0b101])
        assert "|101>" in str(s)

    def test_pretty_truncates(self):
        s = QState.uniform(5, list(range(20)))
        out = s.pretty(max_terms=4)
        assert "more" in out

    def test_repr(self):
        assert "n=3" in repr(QState.ground(3))

"""Tests for the extended state families (repro.states.special)."""

from __future__ import annotations

import math

import networkx as nx
import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import StateError
from repro.states.special import (
    bell_state,
    binomial_state,
    bitstring_superposition,
    cluster_state_1d,
    cluster_state_2d,
    distribution_state,
    domain_wall_state,
    exponential_state,
    gaussian_state,
    graph_state,
    hypergraph_state,
    unary_encoding_state,
)
from repro.states.families import ghz_state, w_state
from repro.states.qstate import QState


class TestBellStates:
    def test_all_four_normalized_and_distinct(self):
        states = [bell_state(k) for k in range(4)]
        for s in states:
            assert s.norm() == pytest.approx(1.0)
            assert s.cardinality == 2
        keys = {s.key() for s in states}
        assert len(keys) == 4

    def test_phi_plus_is_ghz2(self):
        assert bell_state(0) == ghz_state(2)

    def test_signs(self):
        psi_minus = bell_state(3)
        assert psi_minus.amplitude(0b01) * psi_minus.amplitude(0b10) < 0

    def test_bad_kind(self):
        with pytest.raises(StateError):
            bell_state(7)


class TestGraphStates:
    def test_empty_graph_is_plus_state(self):
        state = graph_state(nx.empty_graph(2), 2)
        assert state.cardinality == 4
        assert all(a == pytest.approx(0.5) for _, a in state.items())

    def test_single_edge_sign_pattern(self):
        state = graph_state(nx.path_graph(2), 2)
        assert state.amplitude(0b11) == pytest.approx(-0.5)
        for idx in (0b00, 0b01, 0b10):
            assert state.amplitude(idx) == pytest.approx(0.5)

    def test_triangle_signs(self):
        state = graph_state(nx.cycle_graph(3), 3)
        # |110>, |101>, |011> have one induced edge each -> negative;
        # |111> has three -> negative
        for idx in (0b110, 0b101, 0b011, 0b111):
            assert state.amplitude(idx) < 0
        for idx in (0b000, 0b001, 0b010, 0b100):
            assert state.amplitude(idx) > 0

    def test_normalized(self):
        assert graph_state(nx.cycle_graph(4), 4).norm() == pytest.approx(1.0)

    def test_cluster_1d_matches_path_graph(self):
        assert cluster_state_1d(3) == graph_state(nx.path_graph(3), 3)

    def test_cluster_2d_shape(self):
        state = cluster_state_2d(2, 2)
        assert state.num_qubits == 4
        assert state.cardinality == 16

    def test_nodes_outside_register_rejected(self):
        g = nx.Graph([(0, 5)])
        with pytest.raises(StateError):
            graph_state(g, 3)

    def test_width_guard(self):
        with pytest.raises(StateError):
            graph_state(nx.empty_graph(25), 25)

    def test_graph_state_is_preparable(self):
        from repro.qsp.workflow import prepare_state
        from repro.sim.verify import prepares_state

        state = graph_state(nx.path_graph(3), 3)
        result = prepare_state(state)
        assert prepares_state(result.circuit, state)


class TestHypergraphStates:
    def test_pairwise_edges_match_graph_state(self):
        edges = [(0, 1), (1, 2)]
        hyper = hypergraph_state(3, edges)
        plain = graph_state(nx.Graph(edges), 3)
        assert hyper == plain

    def test_three_body_edge(self):
        state = hypergraph_state(3, [(0, 1, 2)])
        assert state.amplitude(0b111) < 0
        assert state.amplitude(0b110) > 0

    def test_single_vertex_edge_acts_as_z(self):
        state = hypergraph_state(2, [(0,)])
        assert state.amplitude(0b10) < 0
        assert state.amplitude(0b11) < 0
        assert state.amplitude(0b00) > 0

    def test_duplicate_qubits_collapse(self):
        assert hypergraph_state(2, [(0, 0, 1)]) == \
            hypergraph_state(2, [(0, 1)])

    def test_empty_hyperedge_rejected(self):
        with pytest.raises(StateError):
            hypergraph_state(2, [()])

    def test_out_of_range_rejected(self):
        with pytest.raises(StateError):
            hypergraph_state(2, [(0, 3)])


class TestDistributionStates:
    def test_normalization(self):
        state = distribution_state([1, 2, 3, 4])
        assert state.norm() == pytest.approx(1.0)
        assert state.amplitude(3) == pytest.approx(math.sqrt(0.4))

    def test_zero_weights_dropped(self):
        state = distribution_state([1, 0, 0, 1])
        assert state.cardinality == 2

    def test_width_inference(self):
        assert distribution_state([1] * 5).num_qubits == 3

    def test_explicit_width(self):
        assert distribution_state([1, 1], num_qubits=4).num_qubits == 4

    def test_too_many_weights(self):
        with pytest.raises(StateError):
            distribution_state([1] * 5, num_qubits=2)

    def test_negative_weight_rejected(self):
        with pytest.raises(StateError):
            distribution_state([1, -1])

    def test_all_zero_rejected(self):
        with pytest.raises(StateError):
            distribution_state([0, 0])

    def test_gaussian_symmetric(self):
        state = gaussian_state(3)
        vec = state.to_vector()
        assert np.allclose(vec, vec[::-1], atol=1e-12)

    def test_gaussian_peak_at_mean(self):
        state = gaussian_state(3, mean=2.0, std=1.0)
        amps = state.to_vector()
        assert int(np.argmax(amps)) == 2

    def test_gaussian_bad_std(self):
        with pytest.raises(StateError):
            gaussian_state(3, std=0.0)

    def test_binomial_matches_comb(self):
        state = binomial_state(2, probability=0.5)
        # B(3, 0.5): weights 1,3,3,1 over 8
        assert state.amplitude(0) == pytest.approx(math.sqrt(1 / 8))
        assert state.amplitude(1) == pytest.approx(math.sqrt(3 / 8))

    def test_binomial_bad_probability(self):
        with pytest.raises(StateError):
            binomial_state(2, probability=1.0)

    def test_exponential_decays(self):
        state = exponential_state(3, rate=4.0)
        vec = state.to_vector()
        assert all(vec[i] > vec[i + 1] for i in range(7))

    def test_exponential_bad_rate(self):
        with pytest.raises(StateError):
            exponential_state(3, rate=-1.0)


class TestBitstringSuperposition:
    def test_uniform(self):
        state = bitstring_superposition(["000", "011", "101", "110"])
        assert state.cardinality == 4
        assert state.amplitude(0b011) == pytest.approx(0.5)

    def test_weighted(self):
        state = bitstring_superposition(["00", "11"], [1.0, -1.0])
        assert state.amplitude(0b00) == pytest.approx(1 / math.sqrt(2))
        assert state.amplitude(0b11) == pytest.approx(-1 / math.sqrt(2))

    def test_width_mismatch_rejected(self):
        with pytest.raises(StateError):
            bitstring_superposition(["00", "111"])

    def test_duplicates_rejected(self):
        with pytest.raises(StateError):
            bitstring_superposition(["01", "01"])

    def test_amplitude_count_mismatch(self):
        with pytest.raises(StateError):
            bitstring_superposition(["01"], [0.5, 0.5])


class TestStructuredFamilies:
    def test_domain_wall_cardinality(self):
        state = domain_wall_state(4)
        assert state.cardinality == 5
        assert state.amplitude(0b0000) != 0.0
        assert state.amplitude(0b0111) != 0.0
        assert state.amplitude(0b0101) == 0.0

    def test_domain_wall_sparse(self):
        assert domain_wall_state(6).is_sparse()

    def test_unary_encoding_is_w_like(self):
        state = unary_encoding_state([1.0, 1.0, 1.0])
        assert state == w_state(3)

    def test_unary_encoding_signs(self):
        state = unary_encoding_state([3.0, -4.0])
        assert state.amplitude(0b10) == pytest.approx(0.6)
        assert state.amplitude(0b01) == pytest.approx(-0.8)

    def test_unary_zero_vector_rejected(self):
        with pytest.raises(StateError):
            unary_encoding_state([0.0, 0.0])


@given(st.integers(min_value=1, max_value=5))
@settings(max_examples=10, deadline=None)
def test_distribution_states_normalized(n):
    for maker in (gaussian_state, exponential_state):
        assert maker(n).norm() == pytest.approx(1.0)
    assert binomial_state(n).norm() == pytest.approx(1.0)


@given(st.integers(min_value=2, max_value=6), st.integers(min_value=0,
                                                          max_value=100))
@settings(max_examples=20, deadline=None)
def test_random_graph_states_normalized(n, seed):
    graph = nx.gnp_random_graph(n, 0.5, seed=seed)
    state = graph_state(graph, n)
    assert state.norm() == pytest.approx(1.0)
    assert state.cardinality == 1 << n


@given(st.integers(min_value=2, max_value=4), st.integers(min_value=0,
                                                          max_value=20))
@settings(max_examples=10, deadline=None)
def test_small_graph_states_preparable(n, seed):
    from repro.qsp.workflow import prepare_state
    from repro.sim.verify import prepares_state

    graph = nx.gnp_random_graph(n, 0.6, seed=seed)
    state = graph_state(graph, n)
    result = prepare_state(state)
    assert prepares_state(result.circuit, state)

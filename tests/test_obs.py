"""Observability layer (PR 8): metrics registry, tracer, service wiring.

Covers the observability acceptance criteria: the metrics registry's
label/bucket/escaping semantics and JSON round-trip, span/event tracing
with balanced per-request timelines (including cancellation and deadline
flush), the ``op: trace`` / ``op: stats`` surfacing, trace-file JSONL
streaming, WAL torn-tail warnings, the engine phase timers behind
``SearchConfig(profile=True)``, and the HTTP metrics exposition.  The
zero-overhead differential (obs disabled == obs enabled, bit for bit)
lives with the scheduler tests in ``test_server_concurrent.py``.
"""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.core.astar import SearchConfig
from repro.core.beam import BeamConfig, beam_search
from repro.core.idastar import IDAStarConfig, idastar_search
from repro.obs import ObsConfig, build_obs
from repro.obs.metrics import Gauge, Histogram, MetricsRegistry
from repro.obs.trace import Tracer, read_jsonl, reconstruct_timelines
from repro.service.asyncserver import AsyncFrontEnd
from repro.service.persistence import MemoryWAL
from repro.service.server import ServiceConfig, SynthesisService
from repro.states.families import dicke_state


def _cfg(**kwargs) -> ServiceConfig:
    kwargs.setdefault("search", SearchConfig(max_nodes=50_000,
                                             time_limit=20.0))
    kwargs.setdefault("portfolio_mode", "interleaved")
    kwargs.setdefault("use_cache", False)
    return ServiceConfig(**kwargs)


def _drive(service: SynthesisService, requests, client=None):
    replies: list[dict] = []
    for request in requests:
        service.submit(request, replies.append, client=client)
    while service.scheduler.pending:
        service.scheduler.run_turn()
    return {r["id"]: r for r in replies}


# ----------------------------------------------------------------------
# metrics registry
# ----------------------------------------------------------------------

class TestMetricsRegistry:
    def test_counter_inc_and_value(self):
        r = MetricsRegistry()
        c = r.counter("c_total", "plain counter")
        assert c.value == 0
        c.inc()
        c.inc(3)
        assert c.value == 4
        assert c.snapshot() == {"type": "counter", "help": "plain counter",
                                "value": 4}

    def test_label_arity_enforced(self):
        r = MetricsRegistry()
        c = r.counter("lc_total", labelnames=("op", "outcome"))
        c.labels("exact", "ok").inc()
        with pytest.raises(ValueError):
            c.labels("exact")
        with pytest.raises(ValueError):
            c.inc()  # labelled family has no unlabelled cell

    def test_gauge_set_and_dec(self):
        g = Gauge("g")
        g.set(7)
        g.dec(2)
        assert g.value == 5

    def test_histogram_bucket_edges(self):
        h = Histogram("h_seconds", buckets=(1.0, 2.0, 4.0))
        h.observe(1.0)   # exactly on an edge lands in that bucket (le)
        h.observe(1.5)
        h.observe(2.0)
        h.observe(4.1)   # beyond the last edge: overflow
        snap = h.snapshot()
        assert snap["buckets"] == [[1.0, 1], [2.0, 2], [4.0, 0]]
        assert snap["overflow"] == 1
        assert snap["count"] == 4
        assert snap["sum"] == pytest.approx(8.6)

    def test_histogram_rejects_bad_buckets(self):
        with pytest.raises(ValueError):
            Histogram("bad", buckets=())
        with pytest.raises(ValueError):
            Histogram("bad", buckets=(2.0, 1.0))
        with pytest.raises(ValueError):
            Histogram("bad", buckets=(1.0, 1.0))

    def test_histogram_quantile(self):
        h = Histogram("q_seconds", buckets=(1.0, 2.0, 4.0))
        for v in (0.5, 0.5, 1.5, 1.5):
            h.observe(v)
        assert h.quantile(0.5) == pytest.approx(1.0)
        assert h.quantile(1.0) == pytest.approx(2.0)
        with pytest.raises(ValueError):
            h.quantile(1.5)
        empty = Histogram("e_seconds", buckets=(1.0,))
        assert empty.quantile(0.5) == 0.0
        over = Histogram("o_seconds", buckets=(1.0, 4.0))
        over.observe(100.0)  # overflow-only clamps to the last edge
        assert over.quantile(0.5) == pytest.approx(4.0)

    def test_registry_idempotent_and_conflicting(self):
        r = MetricsRegistry()
        a = r.counter("same_total", labelnames=("x",))
        assert r.counter("same_total", labelnames=("x",)) is a
        with pytest.raises(ValueError):
            r.gauge("same_total", labelnames=("x",))
        with pytest.raises(ValueError):
            r.counter("same_total", labelnames=("y",))

    def test_prometheus_escaping(self):
        r = MetricsRegistry()
        c = r.counter("esc_total", 'help with "newline"\nhere',
                      labelnames=("path",))
        c.labels('a"b\\c\nd').inc()
        text = r.render_prometheus()
        assert '# HELP esc_total help with "newline"\\nhere' in text
        assert 'path="a\\"b\\\\c\\nd"' in text

    def test_prometheus_histogram_shape(self):
        r = MetricsRegistry()
        h = r.histogram("lat_seconds", "latency", buckets=(0.1, 1.0))
        h.observe(0.05)
        h.observe(0.5)
        lines = r.render_prometheus().splitlines()
        assert 'lat_seconds_bucket{le="0.1"} 1' in lines
        assert 'lat_seconds_bucket{le="1"} 2' in lines  # cumulative
        assert 'lat_seconds_bucket{le="+Inf"} 2' in lines
        assert 'lat_seconds_count 2' in lines
        assert any(line.startswith("lat_seconds_sum ") for line in lines)

    def test_snapshot_json_round_trip(self):
        r = MetricsRegistry()
        r.counter("a_total", labelnames=("k",)).labels("v").inc(2)
        r.gauge("b").set(1.5)
        r.histogram("c_seconds", buckets=(1.0,)).observe(0.3)
        snap = r.snapshot()
        assert json.loads(json.dumps(snap)) == snap


# ----------------------------------------------------------------------
# tracer
# ----------------------------------------------------------------------

class TestTracer:
    def test_ring_cap_and_emitted(self):
        t = Tracer(ring_cap=3, clock=lambda: 0.0)
        for i in range(5):
            t.event("e", rid=i)
        assert t.emitted == 5
        assert [r["rid"] for r in t.last()] == [2, 3, 4]
        assert [r["rid"] for r in t.last(2)] == [3, 4]

    def test_stream_jsonl_round_trip(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with open(path, "w", encoding="utf-8") as stream:
            t = Tracer(stream=stream, clock=lambda: 1.0)
            t.begin("request", rid="a", op="exact")
            t.event("turn", rid="a", policy="edf")
            t.end("request", rid="a", outcome="ok")
        records = read_jsonl(path)
        assert records == list(t.ring)
        timelines = reconstruct_timelines(records)
        assert timelines["a"]["balanced"]
        (span,) = timelines["a"]["spans"]
        assert span["name"] == "request" and span["outcome"] == "ok"

    def test_reconstruct_flags_imbalance(self):
        t = Tracer(clock=lambda: 0.0)
        t.end("request", rid="x")  # end without begin
        t.begin("request", rid="y")  # begin without end
        t.event("boot")  # rid-less records group under None
        timelines = reconstruct_timelines(t.last())
        assert timelines["x"]["balanced"] is False
        assert timelines["y"]["balanced"] is False
        assert timelines[None]["events"][0]["name"] == "boot"


# ----------------------------------------------------------------------
# service integration (real searches, small targets)
# ----------------------------------------------------------------------

class TestServiceObs:
    def test_request_span_tree_balanced(self):
        service = SynthesisService(_cfg(obs=ObsConfig.on()))
        got = _drive(service, [{"id": "w4", "op": "exact", "w": 4},
                               {"id": "ghz4", "op": "exact", "ghz": 4}])
        assert all(r["ok"] for r in got.values())
        timelines = reconstruct_timelines(service.obs.trace_tail())
        for rid in ("w4", "ghz4"):
            tl = timelines[rid]
            assert tl["balanced"]
            (span,) = tl["spans"]
            assert span["name"] == "request"
            assert span["outcome"] == "ok"
            assert span["duration"] >= 0
            names = {e["name"] for e in tl["events"]}
            assert {"turn", "first_turn", "slice",
                    "lane_settled"} <= names
        requests = service.obs.registry.get("qsp_requests_total")
        assert requests.labels("exact", "ok").value == 2
        settled = service.obs.registry.get("qsp_sessions_settled_total")
        assert settled.labels("ok").value == 2

    def test_lane_settled_promotes_profile_stats(self):
        # SearchConfig(profile=True) phase timers surface as span-event
        # attributes via the lane_settled hook (engine profiling promotion)
        service = SynthesisService(_cfg(
            search=SearchConfig(max_nodes=50_000, time_limit=20.0,
                                profile=True),
            obs=ObsConfig.on()))
        _drive(service, [{"id": "d42", "op": "exact", "dicke": [4, 2]}])
        settles = [r for r in service.obs.trace_tail()
                   if r["name"] == "lane_settled"]
        assert settles
        profiled = [r for r in settles if r.get("phase_seconds")]
        assert profiled, "no lane promoted its phase timers"
        for record in profiled:
            assert record["expanded"] >= 0
            assert all(v >= 0.0
                       for v in record["phase_seconds"].values())

    def test_op_trace_and_stats_metrics(self):
        service = SynthesisService(_cfg(obs=ObsConfig.on()))
        _drive(service, [{"id": 1, "op": "exact", "w": 4}])
        trace = service.handle({"id": 2, "op": "trace", "limit": 5})
        assert trace["ok"] and trace["op"] == "trace"
        assert len(trace["records"]) == 5
        assert trace["emitted"] >= len(trace["records"])
        stats = service.handle({"id": 3, "op": "stats"})
        metrics = stats["metrics"]
        assert metrics["qsp_requests_total"]["values"]
        assert json.loads(json.dumps(metrics)) == metrics

    def test_op_trace_requires_obs(self):
        service = SynthesisService(_cfg())
        assert service.obs is None
        response = service.handle({"id": 1, "op": "trace"})
        assert response["ok"] is False
        assert "observability is disabled" in response["error"]
        stats = service.handle({"id": 2, "op": "stats"})
        assert stats["metrics"] is None

    def test_cancellation_closes_span(self):
        service = SynthesisService(_cfg(obs=ObsConfig.on()))
        token = object()
        service.submit({"id": "d52", "op": "exact", "dicke": [5, 2]},
                       lambda _: None, client=token)
        service.scheduler.run_turn()
        service.scheduler.run_turn()
        assert service.scheduler.cancel_client(token) == 1
        timelines = reconstruct_timelines(service.obs.trace_tail())
        tl = timelines["d52"]
        assert tl["balanced"]
        (span,) = tl["spans"]
        assert span["outcome"] == "cancelled"
        assert span["reason"] == "client_disconnect"
        settled = service.obs.registry.get("qsp_sessions_settled_total")
        assert settled.labels("cancelled").value == 1

    def test_deadline_flush_closes_span(self):
        service = SynthesisService(_cfg(obs=ObsConfig.on()))
        replies: list[dict] = []
        service.submit({"id": "d52", "op": "exact", "dicke": [5, 2],
                        "deadline_ms": 60_000}, replies.append)
        service.scheduler.run_turn()
        assert service.scheduler.drain(0) == 1  # force the flush path
        assert replies and replies[0].get("deadline_expired") is True
        timelines = reconstruct_timelines(service.obs.trace_tail())
        tl = timelines["d52"]
        assert tl["balanced"]
        (span,) = tl["spans"]
        assert span["outcome"] == "deadline_flush"
        assert "slack_seconds" in span
        settled = service.obs.registry.get("qsp_sessions_settled_total")
        assert settled.labels("deadline_flush").value == 1

    def test_trace_file_streams_jsonl(self, tmp_path):
        path = tmp_path / "svc.trace.jsonl"
        service = SynthesisService(_cfg(
            obs=ObsConfig.on(trace_path=str(path))))
        _drive(service, [{"id": "w4", "op": "exact", "w": 4}])
        service.shutdown()
        records = read_jsonl(path)
        assert records[-1]["name"] == "shutdown"
        timelines = reconstruct_timelines(records)
        assert timelines["w4"]["balanced"]
        assert timelines["w4"]["spans"][0]["outcome"] == "ok"


# ----------------------------------------------------------------------
# WAL boot warnings
# ----------------------------------------------------------------------

class TestWalObsWarnings:
    def test_torn_tail_warning_and_counter(self, tmp_path):
        wal_path = tmp_path / "torn.qspwal"
        writer = SynthesisService(_cfg(wal_path=str(wal_path),
                                       wal_compact_interval=0))
        _drive(writer, [{"id": "w4", "op": "exact", "w": 4},
                        {"id": "ghz4", "op": "exact", "ghz": 4}])
        writer.wal.close(compact=False)
        raw = wal_path.read_text(encoding="utf-8")
        wal_path.write_text(raw[:-40], encoding="utf-8")  # mid-append crash
        obs = build_obs(ObsConfig.on())
        _memory, wal = MemoryWAL.boot(wal_path, obs=obs)
        assert wal.truncations == {"torn_final_line": 1}
        truncations = obs.registry.get("qsp_wal_truncations_total")
        assert truncations.labels("torn_final_line").value == 1
        warnings = [r for r in obs.trace_tail()
                    if r["kind"] == "warning" and r["name"] == "wal_truncated"]
        assert warnings and warnings[0]["reason"] == "torn_final_line"
        assert warnings[0]["dropped_bytes"] > 0
        if wal.replayed:
            replayed = obs.registry.get("qsp_wal_replayed_records_total")
            assert replayed.value == wal.replayed
        snap = wal.snapshot()
        assert snap["truncations"] == {"torn_final_line": 1}
        assert snap["replayed"] == wal.replayed

    def test_clean_boot_emits_no_warning(self, tmp_path):
        obs = build_obs(ObsConfig.on())
        _memory, wal = MemoryWAL.boot(tmp_path / "clean.qspwal", obs=obs)
        assert wal.truncations == {}
        assert not [r for r in obs.trace_tail() if r["kind"] == "warning"]


# ----------------------------------------------------------------------
# engine phase timers (profiling promotion, satellite 2)
# ----------------------------------------------------------------------

class TestEnginePhaseTimers:
    def test_idastar_fills_phase_seconds(self):
        target = dicke_state(4, 2)
        plain = idastar_search(target, IDAStarConfig(
            search=SearchConfig(profile=False)))
        profiled = idastar_search(target, IDAStarConfig(
            search=SearchConfig(profile=True)))
        assert plain.stats.phase_seconds == {}
        assert {"enumeration", "canonicalization", "heuristic",
                "hashing"} <= set(profiled.stats.phase_seconds)
        # the timers never change the search itself
        assert profiled.cnot_cost == plain.cnot_cost
        assert profiled.stats.nodes_expanded == plain.stats.nodes_expanded
        assert profiled.stats.nodes_generated == plain.stats.nodes_generated
        assert profiled.stats.nodes_pruned == plain.stats.nodes_pruned

    def test_beam_fills_phase_seconds(self):
        target = dicke_state(4, 2)
        plain = beam_search(target, BeamConfig(profile=False))
        profiled = beam_search(target, BeamConfig(profile=True))
        assert plain.stats.phase_seconds == {}
        assert {"enumeration", "canonicalization", "heuristic",
                "hashing"} <= set(profiled.stats.phase_seconds)
        assert profiled.cnot_cost == plain.cnot_cost
        assert profiled.stats.nodes_expanded == plain.stats.nodes_expanded
        assert profiled.stats.nodes_generated == plain.stats.nodes_generated
        assert profiled.stats.nodes_pruned == plain.stats.nodes_pruned


# ----------------------------------------------------------------------
# HTTP metrics exposition
# ----------------------------------------------------------------------

class TestMetricsEndpoint:
    def test_metrics_requires_obs(self):
        service = SynthesisService(_cfg())
        with pytest.raises(ValueError, match="observability-enabled"):
            AsyncFrontEnd(service, "127.0.0.1", 0,
                          metrics_host="127.0.0.1", metrics_port=0)

    def test_scrape_over_http(self):
        service = SynthesisService(_cfg(obs=ObsConfig.on()))

        async def scenario():
            front = AsyncFrontEnd(service, "127.0.0.1", 0,
                                  metrics_host="127.0.0.1", metrics_port=0)
            run = asyncio.ensure_future(front.run())
            while front.bound_port is None or \
                    front.bound_metrics_port is None:
                await asyncio.sleep(0.01)
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", front.bound_port)
            writer.write(b'{"id": 1, "op": "exact", "w": 4}\n')
            await writer.drain()
            answer = json.loads(await reader.readline())
            scrape_r, scrape_w = await asyncio.open_connection(
                "127.0.0.1", front.bound_metrics_port)
            scrape_w.write(b"GET /metrics HTTP/1.0\r\n\r\n")
            await scrape_w.drain()
            scrape = (await scrape_r.read()).decode("utf-8")
            scrape_w.close()
            writer.write(b'{"id": 2, "op": "shutdown"}\n')
            await writer.drain()
            await reader.readline()
            writer.close()
            return answer, scrape, await run

        answer, scrape, summary = asyncio.run(scenario())
        assert answer["ok"] and answer["cnot_cost"] is not None
        head, _, body = scrape.partition("\r\n\r\n")
        assert head.startswith("HTTP/1.0 200 OK")
        assert "text/plain; version=0.0.4" in head
        assert 'qsp_requests_total{op="exact",outcome="ok"} 1' in body
        assert summary["metrics_scrapes"] == 1

"""Packed-kernel tests: move-set parity, canonical soundness, hashing.

The property tests here are the contract that lets every search variant
run on :mod:`repro.core.kernel`:

* the vectorized successor enumeration produces *exactly* the legacy move
  set of :mod:`repro.core.transitions` on randomized sparse states;
* kernel canonicalization is sound and as complete as the legacy
  canonicalization (identical class partitions on random state samples);
* the 64-bit structural state hash degrades gracefully: a forced global
  collision still yields correct interning and correct search results.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.core.kernel as kernel
from repro.core.astar import SearchConfig, astar_search
from repro.core.canonical import CanonLevel, canonical_key
from repro.core.kernel import (
    BoundedCache,
    CanonContext,
    CanonKey,
    HashKeyedMap,
    StatePool,
    apply_move_packed,
    canonical_key_packed,
    enumerate_cx_packed,
    enumerate_merges_packed,
    num_entangled_packed,
    successors_packed,
)
from repro.core.transitions import enumerate_cx, enumerate_merges, successors
from repro.exceptions import SearchBudgetExceeded
from repro.sim.verify import prepares_state
from repro.states.analysis import num_entangled_qubits
from repro.states.families import dicke_state, ghz_state, w_state
from repro.states.qstate import QState


def random_state(seed: int, uniform_bias: float = 0.4) -> QState:
    rng = np.random.default_rng(seed)
    n = int(rng.integers(2, 7))
    m = int(rng.integers(2, min(10, 1 << n) + 1))
    idx = rng.choice(1 << n, size=m, replace=False)
    if rng.random() < uniform_bias:
        amps = np.ones(m)
    else:
        amps = rng.standard_normal(m)
    return QState(n, {int(i): float(a) for i, a in zip(idx, amps)})


def random_free_variant(state: QState, seed: int) -> QState:
    """Apply random zero-cost transformations (class is preserved)."""
    rng = np.random.default_rng(seed)
    variant = state
    n = state.num_qubits
    for _ in range(int(rng.integers(1, 5))):
        op = int(rng.integers(0, 3))
        if op == 0:
            variant = variant.apply_x(int(rng.integers(0, n)))
        elif op == 1:
            variant = variant.permute([int(p) for p in rng.permutation(n)])
        else:
            variant = variant.negate()
    return variant


# ----------------------------------------------------------------------
# Move-set parity (acceptance criterion)
# ----------------------------------------------------------------------

class TestEnumerationParity:
    @given(st.integers(0, 400))
    @settings(max_examples=120)
    def test_cx_moves_identical(self, seed):
        state = random_state(seed)
        ps = StatePool().from_qstate(state)
        assert enumerate_cx_packed(ps) == enumerate_cx(state)

    @given(st.integers(0, 400))
    @settings(max_examples=120)
    def test_merge_moves_identical(self, seed):
        state = random_state(seed)
        ps = StatePool().from_qstate(state)
        for target in range(state.num_qubits):
            assert enumerate_merges_packed(ps, target) == \
                enumerate_merges(state, target)

    @given(st.integers(0, 400), st.integers(0, 3))
    @settings(max_examples=80)
    def test_merge_moves_identical_with_control_cap(self, seed, cap):
        state = random_state(seed)
        ps = StatePool().from_qstate(state)
        for target in range(state.num_qubits):
            assert enumerate_merges_packed(ps, target, cap) == \
                enumerate_merges(state, target, cap)

    @given(st.integers(0, 400))
    @settings(max_examples=60)
    def test_successor_arcs_identical(self, seed):
        """Same moves in the same order, and state-identical successors."""
        state = random_state(seed)
        pool = StatePool()
        ps = pool.from_qstate(state)
        legacy = successors(state, include_x_moves=True)
        packed = successors_packed(pool, ps, include_x_moves=True)
        assert [mv for mv, _ in legacy] == [mv for mv, _ in packed]
        for (_, leg_nxt), (_, ker_nxt) in zip(legacy, packed):
            assert ker_nxt.to_qstate().key() == leg_nxt.key()

    def test_known_families_successor_parity(self):
        for state in (ghz_state(3), w_state(4), dicke_state(4, 2),
                      dicke_state(5, 2)):
            pool = StatePool()
            ps = pool.from_qstate(state)
            legacy = successors(state)
            packed = successors_packed(pool, ps)
            assert [mv for mv, _ in legacy] == [mv for mv, _ in packed]

    @given(st.integers(0, 400))
    @settings(max_examples=60)
    def test_apply_move_matches_legacy(self, seed):
        state = random_state(seed)
        pool = StatePool()
        ps = pool.from_qstate(state)
        for move, _ in successors(state)[:12]:
            expected = move.apply(state)
            got = apply_move_packed(pool, ps, move)
            assert got.to_qstate().key() == expected.key()

    @given(st.integers(0, 400))
    @settings(max_examples=40)
    def test_merge_apply_numpy_path_matches_scalar(self, seed):
        """The m > _SCALAR_MERGE_LIMIT NumPy merge branch is bit-identical
        to the scalar one (random states are small, so without forcing the
        limit the vectorized branch would go untested)."""
        state = random_state(seed)
        saved = kernel._SCALAR_MERGE_LIMIT
        try:
            kernel._SCALAR_MERGE_LIMIT = -1  # force the NumPy branch
            pool = StatePool()
            ps = pool.from_qstate(state)
            for move, _ in successors(state):
                if not hasattr(move, "theta"):
                    continue
                expected = move.apply(state)
                got = apply_move_packed(pool, ps, move)
                assert got.to_qstate().key() == expected.key()
        finally:
            kernel._SCALAR_MERGE_LIMIT = saved


# ----------------------------------------------------------------------
# Separability / heuristic parity
# ----------------------------------------------------------------------

class TestSeparabilityParity:
    @given(st.integers(0, 400))
    @settings(max_examples=80)
    def test_num_entangled_matches(self, seed):
        state = random_state(seed)
        ps = StatePool().from_qstate(state)
        assert num_entangled_packed(ps) == num_entangled_qubits(state)


# ----------------------------------------------------------------------
# Canonicalization: soundness, completeness, cross-path class partition
# ----------------------------------------------------------------------

class TestKernelCanonical:
    @given(st.integers(0, 1000), st.integers(0, 1000))
    @settings(max_examples=150)
    def test_free_transformations_preserve_key(self, seed, tseed):
        """Soundness/completeness: every member of a class gets one key."""
        state = random_state(seed)
        variant = random_free_variant(state, tseed)
        for level in (CanonLevel.U2, CanonLevel.PU2):
            if level is CanonLevel.U2:
                # U2 keys are only invariant under flips and global sign
                rng = np.random.default_rng(tseed)
                variant_u2 = state
                for _ in range(3):
                    variant_u2 = variant_u2.apply_x(
                        int(rng.integers(0, state.num_qubits)))
                pair = (state, variant_u2)
            else:
                pair = (state, variant)
            keys = [canonical_key_packed(StatePool().from_qstate(s), level,
                                         256, 24) for s in pair]
            assert keys[0] == keys[1], (level, pair)

    def test_partition_exact_vs_complete_reference(self):
        """At exhaustive caps the reference canonicalization is complete
        (no candidate truncation for n=3), so its partition is the exact
        equivalence.  The kernel partition must match it set-for-set —
        this is the regression test for the orbit-hash aggregation flaw
        where per-candidate sums telescoped across candidate groupings
        (merging the cube star {0,1,2,4} with the non-star {0,1,2,5})."""
        from itertools import combinations

        kernel_of = {}
        legacy_of = {}
        for m in range(1, 9):
            for combo in combinations(range(8), m):
                state = QState.uniform(3, combo)
                kernel_of[combo] = canonical_key_packed(
                    StatePool().from_qstate(state),
                    CanonLevel.PU2, 4096, 5040).full
                legacy_of[combo] = canonical_key(
                    state, CanonLevel.PU2, tie_cap=4096, perm_cap=5040)
        pairs = {(kernel_of[c], legacy_of[c]) for c in kernel_of}
        assert len({k for k, _ in pairs}) == len(pairs)  # sound
        assert len({l for _, l in pairs}) == len(pairs)  # complete

    def test_class_partition_matches_legacy(self):
        """Kernel and legacy canonicalization induce the same partition on
        a random sample (counted via distinct keys)."""
        rng = np.random.default_rng(20260730)
        legacy_keys = set()
        kernel_keys = set()
        for _ in range(300):
            m = int(rng.integers(2, 9))
            idx = rng.choice(16, size=m, replace=False)
            amps = rng.standard_normal(m)
            state = QState(4, {int(i): float(a)
                               for i, a in zip(idx, amps)})
            legacy_keys.add(canonical_key(state, CanonLevel.PU2,
                                          tie_cap=256, perm_cap=24))
            kernel_keys.add(canonical_key_packed(
                StatePool().from_qstate(state),
                CanonLevel.PU2, 256, 24).full)
        assert len(legacy_keys) == len(kernel_keys)

    @given(st.integers(0, 400))
    @settings(max_examples=60)
    def test_scalar_and_numpy_orbit_paths_agree(self, seed):
        state = random_state(seed)
        saved = kernel._SCALAR_ORBIT_LIMIT
        try:
            kernel._SCALAR_ORBIT_LIMIT = 10 ** 9
            scalar = canonical_key_packed(StatePool().from_qstate(state),
                                          CanonLevel.PU2, 256, 24)
            kernel._SCALAR_ORBIT_LIMIT = 0
            vectorized = canonical_key_packed(StatePool().from_qstate(state),
                                              CanonLevel.PU2, 256, 24)
        finally:
            kernel._SCALAR_ORBIT_LIMIT = saved
        assert scalar == vectorized

    def test_none_level_key_is_exact(self):
        state = random_state(3, uniform_bias=0.0)
        pool = StatePool()
        key = canonical_key_packed(pool.from_qstate(state),
                                   CanonLevel.NONE, 256, 24)
        again = canonical_key_packed(pool.from_qstate(state),
                                     CanonLevel.NONE, 256, 24)
        assert key == again
        assert key.full == pool.from_qstate(state).payload


# ----------------------------------------------------------------------
# Interning pool + 64-bit hash collision handling (satellite)
# ----------------------------------------------------------------------

class TestStatePool:
    def test_interning_is_identity(self):
        pool = StatePool()
        a = pool.from_qstate(dicke_state(4, 2))
        b = pool.from_qstate(dicke_state(4, 2))
        assert a is b
        assert pool.hits == 1
        assert len(pool) == 1

    def test_quantization_level_dedupe(self):
        pool = StatePool()
        a = pool.from_qstate(QState(2, {0: 0.6, 3: 0.8}))
        b = pool.from_qstate(QState(2, {0: 0.6 + 1e-13, 3: 0.8}))
        assert a is b  # equal after amplitude quantization

    def test_forced_hash_collision_keeps_states_distinct(self, monkeypatch):
        """Regression: a 64-bit hash collision must never alias states."""
        monkeypatch.setattr(kernel, "state_hash64", lambda payload: 42)
        pool = StatePool()
        a = pool.from_qstate(ghz_state(3))
        b = pool.from_qstate(w_state(3))
        c = pool.from_qstate(ghz_state(3))
        assert a is not b
        assert a is c
        assert pool.hash_collisions >= 1
        assert a.hash64 == b.hash64 == 42

    def test_search_correct_under_forced_hash_collision(self, monkeypatch):
        """Full A* with every structural hash colliding still proves the
        known optimum (collision chains + exact payload comparison)."""
        monkeypatch.setattr(kernel, "state_hash64", lambda payload: 7)
        result = astar_search(w_state(3),
                              SearchConfig(max_nodes=50_000, time_limit=60))
        assert result.cnot_cost == 4
        assert result.optimal
        assert prepares_state(result.circuit, w_state(3))


class TestHashKeyedMap:
    def test_basic_roundtrip(self):
        table = HashKeyedMap()
        key = CanonKey(3, 123, 456)
        assert table.get(key) is None
        table.put(key, 5)
        assert table.get(CanonKey(3, 123, 456)) == 5
        table.put(CanonKey(3, 123, 456), 2)
        assert table.get(key) == 2
        assert len(table) == 1

    def test_collision_spill(self):
        table = HashKeyedMap()
        first = CanonKey(3, 99, 111)
        second = CanonKey(3, 99, 222)  # same 64-bit hash, different class
        table.put(first, 1)
        table.put(second, 2)
        assert table.get(first) == 1
        assert table.get(second) == 2
        assert table.collisions == 1
        assert len(table) == 2


class TestBoundedCache:
    def test_hit_miss_counters(self):
        cache = BoundedCache(8)
        assert cache.get("a") is None
        cache.put("a", 1)
        assert cache.get("a") == 1
        assert cache.hits == 1
        assert cache.misses == 1

    def test_eviction_keeps_size_bounded(self):
        cache = BoundedCache(16)
        for i in range(200):
            cache.put(i, i)
        assert len(cache.data) <= 16
        assert cache.evictions > 0


# ----------------------------------------------------------------------
# Search-level differential tests (kernel vs dict-based reference)
# ----------------------------------------------------------------------

class TestSearchDifferential:
    @pytest.mark.parametrize("seed", range(8))
    def test_random_states_same_cost(self, seed):
        rng = np.random.default_rng(1000 + seed)
        n = 3
        m = int(rng.integers(2, 6))
        idx = rng.choice(1 << n, size=m, replace=False)
        state = QState.uniform(n, [int(i) for i in idx])
        cfg_kernel = SearchConfig(max_nodes=50_000, time_limit=60)
        cfg_ref = SearchConfig(max_nodes=50_000, time_limit=60,
                               use_kernel=False)
        res_kernel = astar_search(state, cfg_kernel)
        res_ref = astar_search(state, cfg_ref)
        assert res_kernel.cnot_cost == res_ref.cnot_cost
        assert res_kernel.optimal == res_ref.optimal
        assert prepares_state(res_kernel.circuit, state)

    @pytest.mark.parametrize("n,k,expected",
                             [(3, 1, 4), (4, 1, 7), (4, 2, 6)])
    def test_dicke_family_same_cost(self, n, k, expected):
        cfg = SearchConfig(max_nodes=200_000, time_limit=120)
        res = astar_search(dicke_state(n, k), cfg)
        ref = astar_search(dicke_state(n, k),
                           SearchConfig(max_nodes=200_000, time_limit=120,
                                        use_kernel=False))
        assert res.cnot_cost == ref.cnot_cost == expected
        assert res.optimal and ref.optimal

    def test_canon_levels_same_cost_on_kernel(self):
        state = QState.uniform(3, [0b000, 0b011, 0b101, 0b110])
        costs = set()
        for level in (CanonLevel.NONE, CanonLevel.U2, CanonLevel.PU2):
            cfg = SearchConfig(max_nodes=100_000, time_limit=60,
                               canon_level=level)
            costs.add(astar_search(state, cfg).cnot_cost)
        assert costs == {2}

    def test_cache_stats_reported(self):
        res = astar_search(dicke_state(4, 1),
                           SearchConfig(max_nodes=50_000, time_limit=60))
        stats = res.stats
        assert stats.canon_cache_misses > 0
        assert 0.0 <= stats.canon_cache_hit_rate <= 1.0
        assert 0.0 <= stats.h_cache_hit_rate <= 1.0
        assert stats.nodes_per_second > 0.0


# ----------------------------------------------------------------------
# Proven lower bound under weighted search (satellite)
# ----------------------------------------------------------------------

class TestWeightedLowerBound:
    @pytest.mark.parametrize("use_kernel", [True, False])
    @pytest.mark.parametrize("weight", [1.0, 2.0, 4.0])
    def test_budget_bound_is_sound(self, use_kernel, weight):
        """The reported lower bound never exceeds the true optimum, even
        with an inflated heuristic weight (the old code reported the
        weighted f of the last popped node, which is not a bound)."""
        target = dicke_state(5, 2)  # true optimum: 14
        cfg = SearchConfig(max_nodes=15, weight=weight,
                           use_kernel=use_kernel)
        with pytest.raises(SearchBudgetExceeded) as err:
            astar_search(target, cfg)
        assert 0 <= err.value.lower_bound <= 14

    def test_unweighted_bound_still_informative(self):
        with pytest.raises(SearchBudgetExceeded) as err:
            astar_search(dicke_state(5, 2), SearchConfig(max_nodes=50))
        assert err.value.lower_bound >= 1


# ----------------------------------------------------------------------
# CanonContext tiers
# ----------------------------------------------------------------------

class TestCanonContext:
    def test_state_tier_memoizes(self):
        ctx = CanonContext(CanonLevel.PU2, 256, 24, cache_cap=1024)
        pool = StatePool()
        ps = pool.from_qstate(dicke_state(4, 2))
        first = ctx.key(ps)
        second = ctx.key(ps)
        assert first is second
        assert ctx.cache.hits == 1

    def test_u2_tier_shares_full_key_across_flips(self):
        ctx = CanonContext(CanonLevel.PU2, 256, 24, cache_cap=1024)
        pool = StatePool()
        state = dicke_state(4, 2)
        flipped = state.apply_x(0).apply_x(2)
        key_a = ctx.key(pool.from_qstate(state))
        key_b = ctx.key(pool.from_qstate(flipped))
        assert key_a == key_b
        # the second state's full key came from the U(2)-class tier
        assert ctx.full_computations == 1

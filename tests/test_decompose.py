"""Unit + property tests for the Gray-code multiplexor decomposition.

These pin down the central cost claim of Table I: ``MCRy`` with ``k``
controls lowers to exactly ``2**k`` CNOTs, and the lowered circuit equals
the original unitary exactly.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.circuits.circuit import QCircuit
from repro.circuits.decompose import (
    decompose_circuit,
    decompose_gate,
    multiplexed_rotation_gates,
    multiplexor_angles,
    multiplexor_cnot_count,
)
from repro.circuits.gates import (
    CRYGate,
    CRZGate,
    CXGate,
    MCRYGate,
    MCXGate,
    RYGate,
    XGate,
)
from repro.exceptions import CircuitError
from repro.sim.unitary import circuit_unitary, unitaries_equal
from repro.utils.bits import gray_code, popcount


class TestMultiplexorAngles:
    def test_single_angle(self):
        assert multiplexor_angles(np.array([0.8]))[0] == pytest.approx(0.8)

    def test_defining_equation(self):
        """sum_i (-1)^{popcount(j & gray(i))} phi_i == alpha_j."""
        rng = np.random.default_rng(3)
        for k in (1, 2, 3, 4):
            alphas = rng.standard_normal(1 << k)
            phis = multiplexor_angles(alphas)
            for j in range(1 << k):
                total = sum(
                    (-1) ** (popcount(j & gray_code(i)) & 1) * phis[i]
                    for i in range(1 << k))
                assert total == pytest.approx(alphas[j], abs=1e-9)

    def test_rejects_non_power_of_two(self):
        with pytest.raises(CircuitError):
            multiplexor_angles(np.array([0.1, 0.2, 0.3]))


class TestMultiplexedRotation:
    @pytest.mark.parametrize("k", [1, 2, 3])
    def test_matches_mcry_bank(self, k, rng):
        alphas = rng.standard_normal(1 << k)
        gates = multiplexed_rotation_gates(list(range(k)), k, alphas,
                                           prune=False)
        built = QCircuit(k + 1)
        built.extend(gates)
        reference = QCircuit(k + 1)
        for j in range(1 << k):
            controls = [(d, (j >> (k - 1 - d)) & 1) for d in range(k)]
            reference.mcry(controls, k, float(alphas[j]))
        assert unitaries_equal(circuit_unitary(built),
                               circuit_unitary(decompose_circuit(reference)))

    @pytest.mark.parametrize("k", [1, 2, 3])
    def test_unpruned_cnot_count(self, k, rng):
        alphas = rng.standard_normal(1 << k)
        gates = multiplexed_rotation_gates(list(range(k)), k, alphas,
                                           prune=False)
        assert sum(1 for g in gates if g.name == "cx") == 2 ** k
        assert multiplexor_cnot_count(k) == 2 ** k

    def test_pruning_zero_bank_empties(self):
        gates = multiplexed_rotation_gates([0, 1], 2, np.zeros(4), prune=True)
        assert gates == []

    def test_pruning_preserves_unitary(self, rng):
        alphas = rng.standard_normal(8)
        alphas[[1, 2, 5, 6]] = 0.0
        full = QCircuit(4)
        full.extend(multiplexed_rotation_gates([0, 1, 2], 3, alphas,
                                               prune=False))
        pruned = QCircuit(4)
        pruned.extend(multiplexed_rotation_gates([0, 1, 2], 3, alphas,
                                                 prune=True))
        assert unitaries_equal(circuit_unitary(full), circuit_unitary(pruned))
        assert pruned.cnot_cost() <= full.cnot_cost()

    def test_rz_axis(self, rng):
        alphas = rng.standard_normal(4)
        gates = multiplexed_rotation_gates([0, 1], 2, alphas, axis="z")
        assert any(g.name == "rz" for g in gates)

    def test_bad_axis(self):
        with pytest.raises(CircuitError):
            multiplexed_rotation_gates([0], 1, np.zeros(2), axis="x")

    def test_wrong_angle_count(self):
        with pytest.raises(CircuitError):
            multiplexed_rotation_gates([0, 1], 2, np.zeros(3))


class TestDecomposeGate:
    def test_cry_two_cnots(self):
        gate = CRYGate.make(0, 1, 0.7)
        lowered = decompose_gate(gate)
        assert sum(1 for g in lowered if g.name == "cx") == 2

    def test_cry_negative_control(self):
        gate = CRYGate.make(0, 1, 0.7, phase=0)
        circuit = QCircuit(2)
        circuit.append(gate)
        assert unitaries_equal(circuit_unitary(circuit),
                               circuit_unitary(circuit.decompose()))

    def test_cx_negative_control_free_conjugation(self):
        gate = CXGate.make(0, 1, phase=0)
        lowered = decompose_gate(gate)
        assert [g.name for g in lowered] == ["x", "cx", "x"]
        circuit = QCircuit(2)
        circuit.append(gate)
        assert unitaries_equal(circuit_unitary(circuit),
                               circuit_unitary(circuit.decompose()))

    @pytest.mark.parametrize("k", [2, 3])
    def test_mcry_cost_exact(self, k):
        controls = tuple((i, i % 2) for i in range(k))
        gate = MCRYGate(target=k, controls=controls, theta=1.1)
        lowered = decompose_gate(gate)
        assert sum(1 for g in lowered if g.name == "cx") == 2 ** k
        circuit = QCircuit(k + 1)
        circuit.append(gate)
        assert unitaries_equal(circuit_unitary(circuit),
                               circuit_unitary(circuit.decompose()))

    def test_crz_decomposes_exactly(self):
        gate = CRZGate.make(1, 0, 0.9)
        circuit = QCircuit(2)
        circuit.append(gate)
        assert unitaries_equal(circuit_unitary(circuit),
                               circuit_unitary(circuit.decompose()))

    def test_mcx_rejected(self):
        gate = MCXGate(target=2, controls=((0, 1), (1, 1)))
        with pytest.raises(CircuitError):
            decompose_gate(gate)

    def test_free_gates_pass_through(self):
        for gate in (XGate(target=0), RYGate(target=0, theta=0.2)):
            assert decompose_gate(gate) == [gate]


class TestCircuitLevel:
    @given(st.integers(0, 10_000))
    def test_cost_model_consistency(self, seed):
        """decompose() emits exactly cnot_cost() CX gates."""
        rng = np.random.default_rng(seed)
        n = int(rng.integers(2, 5))
        qc = QCircuit(n)
        for _ in range(int(rng.integers(1, 6))):
            kind = rng.integers(0, 4)
            qubits = rng.permutation(n)
            if kind == 0:
                qc.x(int(qubits[0]))
            elif kind == 1:
                qc.ry(int(qubits[0]), float(rng.standard_normal()))
            elif kind == 2:
                qc.cx(int(qubits[0]), int(qubits[1]),
                      phase=int(rng.integers(0, 2)))
            else:
                k = int(rng.integers(1, n))
                controls = [(int(q), int(rng.integers(0, 2)))
                            for q in qubits[:k]]
                qc.mcry(controls, int(qubits[k]),
                        float(rng.standard_normal()))
        lowered = qc.decompose()
        cx_count = sum(1 for g in lowered if g.name == "cx")
        assert cx_count == qc.cnot_cost()
        assert unitaries_equal(circuit_unitary(qc), circuit_unitary(lowered),
                               atol=1e-8)

"""Unit tests for bit-twiddling helpers."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.utils.bits import (
    bit_mask,
    bit_of,
    bitstring_to_index,
    changed_bit,
    flip_bit,
    gray_code,
    gray_code_sequence,
    hamming_distance,
    index_to_bitstring,
    indices_with_weight,
    iter_indices,
    permute_index,
    popcount,
    set_bit,
)


class TestBitMask:
    def test_msb_first_convention(self):
        assert bit_mask(0, 3) == 0b100
        assert bit_mask(1, 3) == 0b010
        assert bit_mask(2, 3) == 0b001

    def test_single_qubit(self):
        assert bit_mask(0, 1) == 1

    @pytest.mark.parametrize("qubit", [-1, 3, 10])
    def test_out_of_range(self, qubit):
        with pytest.raises(ValueError):
            bit_mask(qubit, 3)


class TestBitOps:
    def test_bit_of_matches_bitstring(self):
        index = 0b01101
        for q in range(5):
            assert bit_of(index, q, 5) == int(index_to_bitstring(index, 5)[q])

    def test_set_bit_idempotent(self):
        assert set_bit(0b000, 1, 3, 1) == 0b010
        assert set_bit(0b010, 1, 3, 1) == 0b010
        assert set_bit(0b010, 1, 3, 0) == 0b000

    def test_flip_bit_involution(self):
        for idx in range(8):
            for q in range(3):
                assert flip_bit(flip_bit(idx, q, 3), q, 3) == idx

    @given(st.integers(0, 255), st.integers(0, 255))
    def test_hamming_distance_symmetric(self, a, b):
        assert hamming_distance(a, b) == hamming_distance(b, a)
        assert hamming_distance(a, a) == 0

    @given(st.integers(0, 1 << 20))
    def test_popcount_matches_bin(self, x):
        assert popcount(x) == bin(x).count("1")


class TestBitstrings:
    def test_roundtrip(self):
        for idx in range(16):
            assert bitstring_to_index(index_to_bitstring(idx, 4)) == idx

    def test_bad_bitstring(self):
        with pytest.raises(ValueError):
            bitstring_to_index("01x")
        with pytest.raises(ValueError):
            bitstring_to_index("")

    def test_index_out_of_range(self):
        with pytest.raises(ValueError):
            index_to_bitstring(8, 3)


class TestEnumeration:
    def test_iter_indices(self):
        assert list(iter_indices(3)) == list(range(8))

    def test_indices_with_weight_counts(self):
        import math
        for n in range(1, 7):
            for k in range(n + 1):
                assert len(indices_with_weight(n, k)) == math.comb(n, k)

    def test_indices_with_weight_empty(self):
        assert indices_with_weight(3, 5) == []
        assert indices_with_weight(3, -1) == []

    def test_weights_correct(self):
        for idx in indices_with_weight(5, 2):
            assert popcount(idx) == 2


class TestPermutation:
    def test_identity(self):
        for idx in range(8):
            assert permute_index(idx, [0, 1, 2], 3) == idx

    def test_swap(self):
        # perm[i] = j: output qubit i takes input qubit j.
        assert permute_index(0b100, [1, 0, 2], 3) == 0b010
        assert permute_index(0b110, [1, 0, 2], 3) == 0b110

    def test_rotation(self):
        # output q0 <- input q2 (=0), q1 <- input q0 (=1), q2 <- input q1.
        assert permute_index(0b100, [2, 0, 1], 3) == 0b010

    @given(st.integers(0, 63), st.permutations(list(range(6))))
    def test_permutation_preserves_weight(self, idx, perm):
        assert popcount(permute_index(idx, perm, 6)) == popcount(idx)

    @given(st.integers(0, 63), st.permutations(list(range(6))))
    def test_permutation_bijective(self, idx, perm):
        inverse = [perm.index(i) for i in range(6)]
        assert permute_index(permute_index(idx, perm, 6), inverse, 6) == idx


class TestGrayCode:
    def test_sequence_adjacent_differ_by_one_bit(self):
        seq = gray_code_sequence(4)
        assert len(set(seq)) == 16
        for a, b in zip(seq, seq[1:]):
            assert popcount(a ^ b) == 1
        # wrap-around too
        assert popcount(seq[-1] ^ seq[0]) == 1

    def test_gray_code_values(self):
        assert [gray_code(i) for i in range(4)] == [0, 1, 3, 2]

    def test_changed_bit(self):
        assert changed_bit(0b000, 0b100) == 2
        assert changed_bit(0b011, 0b010) == 0

    def test_changed_bit_rejects_multi(self):
        with pytest.raises(ValueError):
            changed_bit(0b00, 0b11)
        with pytest.raises(ValueError):
            changed_bit(5, 5)

"""Concurrent serving: cross-request scheduler, WAL, async front end.

Covers the concurrent-model acceptance criteria: N concurrent requests
finish with costs identical to serial execution, earliest-deadline-first
ordering under mixed deadlines, mid-run cancellation frees its lanes,
admission control rejects beyond the cap, WAL replay reproduces the
full-snapshot state, and a server killed mid-burst shuts down
gracefully (drained answers, compacted WAL, exit 0) and warm-boots.
"""

from __future__ import annotations

import json
import os
import signal
import socket
import subprocess
import sys
import time
from types import SimpleNamespace

import pytest

from repro.core.astar import SearchConfig
from repro.core.memory import SearchMemory
from repro.service.persistence import MemoryWAL, merge_wal_delta, \
    save_memory_snapshot, load_memory_snapshot
from repro.service.portfolio import autotune_specs, default_portfolio
from repro.service.scheduler import RequestScheduler, RequestSession
from repro.service.server import ServiceConfig, SynthesisService, serve_loop
from repro.utils.serialization import memory_baseline, memory_to_dict, \
    memory_merge_dict, wal_record_to_dict

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def _config(**kwargs) -> ServiceConfig:
    kwargs.setdefault("search", SearchConfig(max_nodes=50_000,
                                             time_limit=20.0))
    kwargs.setdefault("portfolio_mode", "interleaved")
    return ServiceConfig(**kwargs)


def _requests():
    return [
        {"id": "w4", "op": "exact", "w": 4},
        {"id": "ghz4", "op": "exact", "ghz": 4},
        {"id": "d42", "op": "exact", "dicke": [4, 2]},
        {"id": "w5", "op": "exact", "w": 5},
        {"id": "d52", "op": "exact", "dicke": [5, 2]},
    ]


def _drive(service: SynthesisService, requests, client=None):
    """Submit everything up front, then run the scheduler dry."""
    replies: list[dict] = []
    for request in requests:
        service.submit(request, replies.append, client=client)
    while service.scheduler.pending:
        service.scheduler.run_turn()
    return {r["id"]: r for r in replies}


# ----------------------------------------------------------------------
# concurrent == serial
# ----------------------------------------------------------------------

class TestConcurrentEqualsSerial:
    def test_costs_identical_to_serial(self):
        serial = SynthesisService(_config(use_cache=False))
        rows = {r["id"]: serial.handle(r) for r in _requests()}
        concurrent = SynthesisService(_config(use_cache=False))
        got = _drive(concurrent, _requests())
        assert set(got) == set(rows)
        assert concurrent.scheduler.peak_inflight == len(rows)
        for rid, row in rows.items():
            assert got[rid]["ok"] and row["ok"]
            assert got[rid]["cnot_cost"] == row["cnot_cost"], rid
            assert got[rid]["optimal"] == row["optimal"], rid

    def test_all_sessions_advance_interleaved(self):
        service = SynthesisService(_config(use_cache=False))
        replies: list[dict] = []
        for request in _requests():
            service.submit(request, replies.append)
        # several sessions must be live at once mid-schedule
        service.scheduler.run_turn()
        assert len(service.scheduler) >= 2 or len(replies) >= 1
        while service.scheduler.pending:
            service.scheduler.run_turn()
        assert len(replies) == len(_requests())
        assert all(r["ok"] for r in replies)

    def test_cache_hit_answered_at_admission(self):
        service = SynthesisService(_config())
        _drive(service, [{"id": 1, "op": "exact", "w": 4}])
        replies: list[dict] = []
        registered = service.submit({"id": 2, "op": "exact", "w": 4},
                                    replies.append)
        assert registered is False  # answered inline, no session
        assert replies and replies[0]["cached"] is True
        assert replies[0]["engine"] == "cache"


# ----------------------------------------------------------------------
# observability zero-overhead differential
# ----------------------------------------------------------------------

class TestObsZeroOverhead:
    """Obs disabled (the default) must be bit-identical to obs enabled:
    same costs, same optimality flags, same turn counts, same expansion
    counts, same settle order — the hard contract of ``repro.obs``."""

    @staticmethod
    def _drive_recording(service, requests):
        settled: dict = {}
        order: list = []
        scheduler = service.scheduler
        original = scheduler._settle

        def record(session):
            settled[session.rid] = (session.turns,
                                    session.lanes.expansions)
            order.append(session.rid)
            original(session)

        scheduler._settle = record
        replies = _drive(service, requests)
        return replies, settled, order

    def test_disabled_obs_is_differentially_invisible(self):
        from repro.obs import ObsConfig
        from repro.obs.trace import reconstruct_timelines

        plain_service = SynthesisService(_config(use_cache=False))
        assert plain_service.obs is None  # library default: no obs at all
        plain, plain_settled, plain_order = self._drive_recording(
            plain_service, _requests())

        observed_service = SynthesisService(_config(
            use_cache=False, obs=ObsConfig.on()))
        assert observed_service.obs is not None
        rich, rich_settled, rich_order = self._drive_recording(
            observed_service, _requests())

        assert set(plain) == set(rich)
        for rid in plain:
            assert plain[rid]["ok"] == rich[rid]["ok"], rid
            assert plain[rid]["cnot_cost"] == rich[rid]["cnot_cost"], rid
            assert plain[rid]["optimal"] == rich[rid]["optimal"], rid
            assert plain[rid]["engine"] == rich[rid]["engine"], rid
        assert plain_order == rich_order
        assert plain_settled == rich_settled  # per-rid turns + expansions
        assert plain_service.scheduler.turns == \
            observed_service.scheduler.turns
        # and the observed run actually observed: every settle traced
        timelines = reconstruct_timelines(
            observed_service.obs.trace_tail())
        for rid in rich:
            assert timelines[rid]["balanced"], rid


# ----------------------------------------------------------------------
# scheduler policy (stub sessions: no real searches)
# ----------------------------------------------------------------------

def _stub_session(rid, *, deadline_at=None, rounds=3, log=None,
                  client=None):
    """A session whose lanes settle after ``rounds`` run_round calls."""
    state = {"left": rounds}

    lanes = SimpleNamespace(deadline=None, deadline_expired=False,
                            aborted=False)

    def run_round():
        state["left"] -= 1
        return state["left"] > 0

    def finish():
        return SimpleNamespace(solved=False, deadline_expired=False)

    def abort():
        lanes.aborted = True

    lanes.run_round = run_round
    lanes.finish = finish
    lanes.abort = abort

    def on_settle(session, outcome):
        return {"id": rid, "ok": True}

    def reply(response):
        if log is not None:
            log.append(rid)

    session = RequestSession(rid=rid, request={}, state=None, lanes=lanes,
                             reply=reply, on_settle=on_settle,
                             client=client)
    session.deadline_at = deadline_at
    return session


class TestSchedulerPolicy:
    def test_edf_orders_mixed_deadlines(self):
        scheduler = RequestScheduler(fairness_stride=1000)
        log: list = []
        late = _stub_session("late", deadline_at=100.0, log=log)
        soon = _stub_session("soon", deadline_at=50.0, log=log)
        scheduler.submit(late)
        scheduler.submit(soon)
        # submit() recomputes deadline_at only for real lane deadlines
        late.deadline_at, soon.deadline_at = 100.0, 50.0
        while scheduler.pending:
            scheduler.run_turn()
        assert log == ["soon", "late"]

    def test_fairness_stride_feeds_undeadlined(self):
        scheduler = RequestScheduler(fairness_stride=3)
        log: list = []
        deadlined = _stub_session("d", deadline_at=10.0, rounds=50, log=log)
        slow = _stub_session("u", rounds=50, log=log)
        scheduler.submit(deadlined)
        scheduler.submit(slow)
        deadlined.deadline_at = 10.0
        for _ in range(12):
            scheduler.run_turn()
        # every 3rd turn went to the round-robin undeadlined queue
        assert slow.turns == 4
        assert deadlined.turns == 8

    def test_admission_cap_rejects(self):
        scheduler = RequestScheduler(max_inflight=2)
        assert scheduler.submit(_stub_session("a", rounds=10))
        assert scheduler.submit(_stub_session("b", rounds=10))
        assert scheduler.full
        assert scheduler.submit(_stub_session("c", rounds=10)) is False

    def test_cancel_client_aborts_only_theirs(self):
        scheduler = RequestScheduler()
        mine = _stub_session("mine", rounds=10, client="c1")
        theirs = _stub_session("theirs", rounds=10, client="c2")
        scheduler.submit(mine)
        scheduler.submit(theirs)
        assert scheduler.cancel_client("c1") == 1
        assert len(scheduler) == 1
        assert mine.lanes.aborted and not theirs.lanes.aborted

    def test_settle_hook_failure_is_contained(self):
        scheduler = RequestScheduler()
        log: list = []
        session = _stub_session("boom", rounds=1, log=log)

        def exploding(session, outcome):
            raise RuntimeError("settle bug")

        replies: list = []
        session.on_settle = exploding
        session.reply = replies.append
        scheduler.submit(session)
        scheduler.run_turn()
        assert replies and replies[0]["ok"] is False
        assert "settle bug" in replies[0]["error"]


# ----------------------------------------------------------------------
# real cancellation + admission against live searches
# ----------------------------------------------------------------------

class TestLiveSessions:
    def test_cancellation_mid_run_frees_lanes(self):
        service = SynthesisService(_config(use_cache=False))
        seen: list[dict] = []
        service.submit({"id": "heavy", "op": "exact", "dicke": [6, 3]},
                       seen.append, client="victim")
        service.submit({"id": "other", "op": "exact", "w": 4},
                       seen.append, client="keeper")
        for _ in range(3):
            service.scheduler.run_turn()
        victim = [s for s in service.scheduler.sessions
                  if s.client == "victim"]
        if victim:  # not settled yet: cancel mid-run
            runs = [lane.run for lane in victim[0].lanes.lanes]
            assert service.scheduler.cancel_client("victim") == 1
            assert all(run.status.terminal for run in runs)
            assert not victim[0].lanes.active
        while service.scheduler.pending:
            service.scheduler.run_turn()
        # the cancelled request never replies; the other one completes
        ids = [r["id"] for r in seen]
        assert "other" in ids and "heavy" not in ids

    def test_busy_rejection_beyond_cap(self):
        service = SynthesisService(_config(use_cache=False,
                                           max_inflight=2))
        replies: list[dict] = []
        service.submit({"id": 1, "op": "exact", "dicke": [6, 3]},
                       replies.append)
        service.submit({"id": 2, "op": "exact", "dicke": [5, 2]},
                       replies.append)
        service.submit({"id": 3, "op": "exact", "w": 4}, replies.append)
        busy = [r for r in replies if r.get("busy")]
        assert len(busy) == 1 and busy[0]["id"] == 3
        assert busy[0]["ok"] is False
        assert service.busy_rejections == 1
        service.scheduler.drain(0.0)  # flush the two live sessions


# ----------------------------------------------------------------------
# WAL
# ----------------------------------------------------------------------

def _memory_state(memory: SearchMemory) -> tuple:
    """Comparable content of a memory (process-portable pieces only)."""
    return (
        dict(memory.canon_store.items_payload(None)),
        dict(memory.h_store.items_payload(None)),
        dict(memory.transposition.data),
        dict(memory.transposition.cond),
        {name: dict(row) for name, row in memory.lane_stats.items()},
    )


class TestMemoryWAL:
    def test_replay_equals_full_snapshot(self, tmp_path):
        wal_path = tmp_path / "svc.qspwal"
        service = SynthesisService(_config(
            use_cache=False, wal_path=str(wal_path),
            wal_compact_interval=0))  # no auto-compaction: records stay
        _drive(service, _requests())
        assert service.wal.records > 0
        snap_path = tmp_path / "full.qspmem.json"
        save_memory_snapshot(service.memory, snap_path)
        # replayed boot (empty sidecar + records) == the full snapshot
        replayed, _wal = MemoryWAL.boot(tmp_path / "svc.qspwal")
        full = load_memory_snapshot(snap_path)
        assert _memory_state(replayed) == _memory_state(full)

    def test_improved_entries_ride_the_delta(self):
        fresh = SearchMemory()
        from repro.core.kernel import CanonKey
        key = CanonKey(3, 7, 7)
        other = CanonKey(3, 9, 9)
        fresh.transposition.record(key, 2.0, frozenset())
        receiver = SearchMemory()
        memory_merge_dict(receiver, memory_to_dict(fresh))
        baseline = memory_baseline(fresh)
        fresh.transposition.record(key, 5.0, frozenset())  # in-place
        fresh.transposition.record(other, 1.0, frozenset([key]))
        fresh.transposition.record(other, 3.0, frozenset([key]))
        delta = memory_to_dict(fresh, since=baseline)
        assert len(delta["transposition"]["data"]) == 1  # improved key
        memory_merge_dict(receiver, delta)
        assert dict(receiver.transposition.data) == \
            dict(fresh.transposition.data)
        assert dict(receiver.transposition.cond) == \
            dict(fresh.transposition.cond)

    def test_compaction_truncates_and_preserves_state(self, tmp_path):
        wal_path = tmp_path / "c.qspwal"
        service = SynthesisService(_config(
            use_cache=False, wal_path=str(wal_path),
            wal_compact_interval=2))  # compact every 2 records
        _drive(service, _requests())
        live = _memory_state(service.memory)
        assert service.wal.compactions >= 1
        service.shutdown()
        # post-shutdown: log is just a header, sidecar holds everything
        with open(wal_path, encoding="utf-8") as handle:
            lines = [ln for ln in handle if ln.strip()]
        assert len(lines) == 1
        assert json.loads(lines[0])["kind"] == "memory_wal"
        rebooted, _wal = MemoryWAL.boot(wal_path)
        assert _memory_state(rebooted) == live

    def test_torn_final_line_is_tolerated(self, tmp_path):
        wal_path = tmp_path / "torn.qspwal"
        service = SynthesisService(_config(
            use_cache=False, wal_path=str(wal_path),
            wal_compact_interval=0))
        _drive(service, _requests()[:2])
        service.wal.close(compact=False)
        good, _ = MemoryWAL.boot(wal_path)
        good_state = _memory_state(good)
        # simulate a mid-append crash: chop the final record in half
        raw = wal_path.read_text(encoding="utf-8")
        wal_path.write_text(raw[:-40], encoding="utf-8")
        torn, wal = MemoryWAL.boot(wal_path)
        # the torn record is dropped; everything before it replays
        assert wal.records >= 0
        state = _memory_state(torn)
        for idx in (0, 1, 2, 3):  # subsets of the intact boot
            assert set(state[idx]).issubset(set(good_state[idx]))

    def test_wal_survives_warm_boot_cycle(self, tmp_path):
        wal_path = tmp_path / "cycle.qspwal"
        first = SynthesisService(_config(use_cache=False,
                                         wal_path=str(wal_path)))
        _drive(first, _requests()[:3])
        first.shutdown()
        second = SynthesisService(_config(use_cache=False,
                                          wal_path=str(wal_path)))
        assert second.memory.lane_stats  # history survived the reboot
        got = _drive(second, _requests()[3:])
        assert all(r["ok"] for r in got.values())
        second.shutdown()


# ----------------------------------------------------------------------
# autotuning
# ----------------------------------------------------------------------

class TestAutotune:
    def test_no_history_uniform_budgets(self):
        specs = default_portfolio()
        tuned, budgets = autotune_specs(specs, None, 100)
        assert tuned == specs
        assert set(budgets.values()) == {100}

    def test_winning_lane_gets_bigger_slices(self):
        memory = SearchMemory()
        for _ in range(20):
            memory.record_lane_outcome("beam", won=True, feasible=True)
            memory.record_lane_outcome("astar", won=False, feasible=False)
        tuned, budgets = autotune_specs(default_portfolio(), memory, 100)
        assert budgets["beam"] > 100
        assert budgets["astar"] < 100
        # ...but nobody is silenced by tuning alone
        assert all(b >= 50 for b in budgets.values())

    def test_chronic_loser_dropped(self):
        memory = SearchMemory()
        for _ in range(60):
            memory.record_lane_outcome("beam", won=True, feasible=True)
            memory.record_lane_outcome("astar-w2", won=False,
                                       feasible=False)
        tuned, _budgets = autotune_specs(default_portfolio(), memory)
        names = [s.name for s in tuned]
        assert "astar-w2" not in names
        assert "beam" in names

    def test_never_drops_everything(self):
        memory = SearchMemory()
        for spec in default_portfolio():
            for _ in range(60):
                memory.record_lane_outcome(spec.name, won=False,
                                           feasible=False)
        tuned, budgets = autotune_specs(default_portfolio(), memory, 100)
        assert len(tuned) == len(default_portfolio())
        assert budgets

    def test_deterministic_and_order_independent(self):
        memory = SearchMemory()
        for _ in range(10):
            memory.record_lane_outcome("idastar", won=True)
            memory.record_lane_outcome("beam", feasible=True)
        a = autotune_specs(default_portfolio(), memory, 128)
        b = autotune_specs(default_portfolio(), memory, 128)
        assert a == b


# ----------------------------------------------------------------------
# serve_loop robustness
# ----------------------------------------------------------------------

class TestServeLoopRobustness:
    def test_handler_exception_does_not_kill_loop(self, tmp_path):
        import io

        service = SynthesisService(_config())

        def exploding(request):
            raise RuntimeError("handler bug")

        service.handle = exploding
        lines = io.StringIO('{"id": 1, "op": "stats"}\n'
                            '{"id": 2, "op": "stats"}\n')
        out = io.StringIO()
        handled = serve_loop(service, lines, out)
        assert handled == 2
        responses = [json.loads(ln) for ln in
                     out.getvalue().splitlines()]
        assert [r["id"] for r in responses] == [1, 2]
        assert all(r["ok"] is False for r in responses)
        assert all("handler bug" in r["error"] for r in responses)

    def test_malformed_and_unknown_op_keep_serving(self):
        import io

        service = SynthesisService(_config())
        lines = io.StringIO('not json at all\n'
                            '{"id": 5, "op": "wat", "w": 3}\n'
                            '{"id": 6, "op": "stats"}\n')
        out = io.StringIO()
        handled = serve_loop(service, lines, out)
        assert handled == 3
        responses = [json.loads(ln) for ln in out.getvalue().splitlines()]
        assert responses[0]["ok"] is False
        assert responses[1]["ok"] is False and responses[1]["id"] == 5
        assert responses[2]["ok"] is True and responses[2]["id"] == 6


# ----------------------------------------------------------------------
# prepare as a scheduler session (stepwise WorkflowRun)
# ----------------------------------------------------------------------

class TestConcurrentPrepare:
    def test_prepare_registers_a_session(self):
        service = SynthesisService(_config(use_cache=False))
        replies: list[dict] = []
        registered = service.submit(
            {"id": "p1", "op": "prepare", "dicke": [5, 2]}, replies.append)
        assert registered is True  # scheduled, not answered at admission
        assert not replies
        while service.scheduler.pending:
            service.scheduler.run_turn()
        [row] = replies
        assert row["ok"] and row["op"] == "prepare"
        assert row["cnot_cost"] > 0 and row["cached"] is False

    def test_stepwise_equals_one_shot_differential(self):
        """Scheduler-driven prepare == inline prepare: costs AND trace."""
        requests = [
            {"id": "g", "op": "prepare", "ghz": 4, "trace": True},
            {"id": "w", "op": "prepare", "w": 5, "trace": True},
            {"id": "d", "op": "prepare", "dicke": [5, 2], "trace": True},
        ]
        inline = SynthesisService(_config(use_cache=False))
        rows = {r["id"]: inline.handle(r) for r in requests}
        concurrent = SynthesisService(_config(use_cache=False))
        got = _drive(concurrent, requests)
        assert set(got) == set(rows)
        for rid, row in rows.items():
            assert got[rid]["ok"] and row["ok"], rid
            assert got[rid]["cnot_cost"] == row["cnot_cost"], rid
            assert got[rid]["exact_optimal"] == row["exact_optimal"], rid
            assert got[rid]["sparse_path"] == row["sparse_path"], rid
            assert got[rid]["trace"] == row["trace"], rid

    def test_prepare_interleaves_with_exact(self):
        """A light exact settles while a dense prepare is still running
        (the head-of-line contract the PR-10 pool bench gates on)."""
        service = SynthesisService(_config(use_cache=False))
        order: list = []
        service.submit({"id": "dense", "op": "prepare", "dicke": [6, 3]},
                       lambda r: order.append(r["id"]))
        service.submit({"id": "light", "op": "exact", "ghz": 4},
                       lambda r: order.append(r["id"]))
        while service.scheduler.pending:
            service.scheduler.run_turn()
        assert order.index("light") < order.index("dense")

    def test_prepare_deadline_flush_verified_never_cached(self, rng=None):
        service = SynthesisService(_config())  # cache ON
        assert service.cache is not None
        replies: list[dict] = []
        request = {"id": "slow", "op": "prepare", "dicke": [6, 3],
                   "deadline_ms": 1.0, "trace": True,
                   "return_circuit": True}
        assert service.submit(request, replies.append) is True
        while service.scheduler.pending:
            service.scheduler.run_turn()
        [row] = replies
        assert row["ok"] is True
        assert row["deadline_expired"] is True
        assert any("deadline flush" in line for line in row["trace"])
        assert "verified by simulation" in row["trace"][-1]
        # the flushed circuit really prepares the state
        from repro.sim.verify import prepares_state
        from repro.states.families import dicke_state
        from repro.utils.serialization import circuit_from_dict
        assert prepares_state(circuit_from_dict(row["circuit"]),
                              dicke_state(6, 3))
        # a truncated answer must never enter the request cache
        again: list[dict] = []
        registered = service.submit(
            {"id": "again", "op": "prepare", "dicke": [6, 3]}, again.append)
        assert registered is True  # cache miss: a fresh session, no hit
        service.scheduler.drain(0.0)

    def test_prepare_cancelled_mid_flow_on_disconnect(self):
        service = SynthesisService(_config(use_cache=False))
        replies: list[dict] = []
        service.submit({"id": "gone", "op": "prepare", "dicke": [6, 3]},
                       replies.append, client="dropper")
        for _ in range(2):
            service.scheduler.run_turn()
        assert service.scheduler.pending  # still mid-flow
        run = service.scheduler.sessions[0].lanes.run
        assert service.scheduler.cancel_client("dropper") == 1
        assert run.status.terminal
        assert not service.scheduler.pending
        assert not replies  # a vanished client is never answered


# ----------------------------------------------------------------------
# worker pool: in-band delta cross-merge + routing
# ----------------------------------------------------------------------

class TestPoolCrossMerge:
    def test_delta_merge_replay_exact_commutative_idempotent(self):
        """The pool's cross-merge records reproduce worker memories
        exactly, in any order, any number of times (improve-only)."""
        worker_a = SynthesisService(_config(use_cache=False))
        worker_b = SynthesisService(_config(use_cache=False))
        for request in _requests()[:2]:
            worker_a.handle(request)
        for request in _requests()[2:]:
            worker_b.handle(request)
        record_a = wal_record_to_dict(1, memory_to_dict(worker_a.memory))
        record_b = wal_record_to_dict(1, memory_to_dict(worker_b.memory))
        # replay-exact: one worker's record rebuilds its memory
        solo = SearchMemory()
        assert merge_wal_delta(solo, record_a) == 1
        assert _memory_state(solo) == _memory_state(worker_a.memory)
        # commutative: merge order cannot matter
        ab, ba = SearchMemory(), SearchMemory()
        merge_wal_delta(ab, record_a)
        merge_wal_delta(ab, record_b)
        merge_wal_delta(ba, record_b)
        merge_wal_delta(ba, record_a)
        assert _memory_state(ab) == _memory_state(ba)
        # idempotent for the improve-only stores (canon/h/transposition/
        # pdb): re-shipping a record never regresses an entry.  Lane
        # stats are deliberately additive advisory counters, so they are
        # excluded here.
        merge_wal_delta(ab, record_a)
        assert _memory_state(ab)[:4] == _memory_state(ba)[:4]

    def test_malformed_record_rejected_before_merge(self):
        memory = SearchMemory()
        with pytest.raises(Exception):
            merge_wal_delta(memory, {"kind": "nonsense"})
        assert _memory_state(memory) == _memory_state(SearchMemory())


class TestWorkerPool:
    def test_pool_costs_identical_and_cross_merges(self, monkeypatch,
                                                   tmp_path):
        from repro.service import pool as pool_module

        monkeypatch.setattr(pool_module, "POOL_CROSS_MERGE_INTERVAL", 2)
        inline = SynthesisService(_config(use_cache=False))
        requests = [
            {"id": "p-g", "op": "prepare", "ghz": 4},
            {"id": "e-w", "op": "exact", "w": 4},
            {"id": "p-d", "op": "prepare", "dicke": [4, 2]},
            {"id": "e-g", "op": "exact", "ghz": 5},
        ]
        rows = {r["id"]: inline.handle(r) for r in requests}
        pool = pool_module.WorkerPool(
            _config(use_cache=False,
                    wal_path=str(tmp_path / "pool.qspwal")), 2)
        try:
            replies: list[dict] = []
            for request in requests:
                assert pool.submit(request, replies.append) is True
            deadline = time.time() + 120
            while pool.scheduler.pending and time.time() < deadline:
                pool.scheduler.run_turn()
            got = {r["id"]: r for r in replies}
            assert set(got) == set(rows)
            for rid, row in rows.items():
                assert got[rid]["ok"] and row["ok"], rid
                assert got[rid]["cnot_cost"] == row["cnot_cost"], rid
            assert sum(pool.routed) == len(requests)
            assert pool.merge_rounds >= 1
            stats: list[dict] = []
            pool.submit({"id": "s", "op": "stats"}, stats.append)
            assert stats[0]["ok"] and stats[0]["pool"]["live"] == 2
            assert set(stats[0]["workers"]) == {"0", "1"}
        finally:
            summary = pool.shutdown(drain_ms=100.0)
        # every worker flushed its own WAL shard + sidecar at drain
        assert set(summary["workers"]) == {"0", "1"}
        for index in (0, 1):
            assert (tmp_path / f"pool.qspwal.w{index}").exists()
            assert (tmp_path / f"pool.qspwal.w{index}.snapshot").exists()
        # cross-merged shards: what one worker learned reached the other
        merged = [load_memory_snapshot(
            tmp_path / f"pool.qspwal.w{index}.snapshot")
            for index in (0, 1)]
        if pool.deltas_shipped:
            for memory in merged:
                payload = memory_to_dict(memory)
                assert payload["canon_store"] or payload["h_store"]


# ----------------------------------------------------------------------
# graceful shutdown: kill a real server mid-burst, warm-boot after
# ----------------------------------------------------------------------

def _free_port() -> int:
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


class TestGracefulShutdown:
    def test_sigterm_mid_burst_drains_and_compacts(self, tmp_path):
        port = _free_port()
        wal_path = tmp_path / "burst.qspwal"
        proc = subprocess.Popen(
            [sys.executable, "-c",
             "import sys; from repro.cli import main; "
             "sys.exit(main(sys.argv[1:]))",
             "serve", "--listen", f"127.0.0.1:{port}",
             "--wal", str(wal_path), "--portfolio", "interleaved"],
            env=dict(os.environ,
                     PYTHONPATH=os.path.join(REPO_ROOT, "src")),
            stdout=subprocess.PIPE, stderr=subprocess.PIPE)
        try:
            deadline = time.time() + 20
            sock = None
            while time.time() < deadline:
                try:
                    sock = socket.create_connection(("127.0.0.1", port),
                                                    timeout=1.0)
                    break
                except OSError:
                    time.sleep(0.1)
            assert sock is not None, "server never came up"
            with sock:
                burst = [{"id": i, "op": "exact", "dicke": [5, 2]}
                         for i in range(4)]
                payload = "".join(json.dumps(r) + "\n" for r in burst)
                sock.sendall(payload.encode("utf-8"))
                time.sleep(0.5)  # let the burst get in flight
                proc.send_signal(signal.SIGTERM)
                proc.wait(timeout=30)
            assert proc.returncode == 0
            # shutdown compacted the WAL into its sidecar snapshot
            assert wal_path.exists()
            assert (tmp_path / "burst.qspwal.snapshot").exists()
            # and a warm boot starts from the compacted state
            memory, wal = MemoryWAL.boot(wal_path)
            assert memory.lane_stats
            wal.close(compact=False)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=10)

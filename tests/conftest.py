"""Shared fixtures and hypothesis configuration for the test suite."""

from __future__ import annotations

import os

import numpy as np
import pytest
from hypothesis import HealthCheck, settings

# A single profile keeps property tests fast by default; set
# REPRO_HYPOTHESIS_EXAMPLES to dig deeper locally.
settings.register_profile(
    "repro",
    max_examples=int(os.environ.get("REPRO_HYPOTHESIS_EXAMPLES", "40")),
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("repro")


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic RNG for tests that sample."""
    return np.random.default_rng(20240611)


@pytest.fixture
def small_search_config():
    """A* budget small enough for unit tests."""
    from repro.core.astar import SearchConfig

    return SearchConfig(max_nodes=20_000, time_limit=15.0)

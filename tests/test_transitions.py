"""Unit + property tests for successor enumeration (the AP library)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.moves import MergeMove
from repro.core.transitions import enumerate_cx, enumerate_merges, successors
from repro.states.families import dicke_state, ghz_state, w_state
from repro.states.qstate import QState


class TestEnumerateCx:
    def test_counts(self):
        # GHZ(3): every (c, t) pair, but only phase values present fire.
        s = ghz_state(3)
        moves = enumerate_cx(s)
        # 3*2 ordered pairs * 2 phases = 12; all columns have both values.
        assert len(moves) == 12

    def test_constant_column_drops_phase(self):
        s = QState.uniform(2, [0b00, 0b01])  # qubit 0 always 0
        moves = enumerate_cx(s)
        phases_for_c0 = {m.phase for m in moves if m.control == 0}
        assert phases_for_c0 == {0}


class TestEnumerateMerges:
    def test_free_merge_found(self):
        s = QState.uniform(2, [0b00, 0b01])
        merges = enumerate_merges(s, target=1)
        assert any(m.controls == () for m in merges)

    def test_no_pairs_no_merges(self):
        assert enumerate_merges(w_state(3), target=0) == []

    def test_single_leftover_blocks_uncontrolled_merge(self):
        # pairs (000,001) plus lone 110: full merge invalid, controlled ok.
        s = QState.uniform(3, [0b000, 0b001, 0b110])
        merges = enumerate_merges(s, target=2)
        assert all(m.controls for m in merges)
        assert any(m.controls == ((0, 0),) for m in merges)

    def test_inconsistent_ratios_need_controls(self):
        s = QState(3, {0b000: 0.8, 0b001: 0.2, 0b110: 0.3, 0b111: 0.4})
        merges = enumerate_merges(s, target=2)
        assert all(m.controls for m in merges)

    def test_consistent_ratios_merge_together(self):
        s = QState(3, {0b000: 0.4, 0b001: 0.2, 0b110: 0.6, 0b111: 0.3})
        merges = enumerate_merges(s, target=2)
        free = [m for m in merges if m.controls == ()]
        assert free
        merged = free[0].apply(s)
        assert merged.cardinality == 2

    def test_max_controls_respected(self):
        s = dicke_state(4, 2)
        for m in enumerate_merges(s, target=0, max_controls=1):
            assert len(m.controls) <= 1

    def test_both_directions_emitted(self):
        s = QState.uniform(2, [0b00, 0b01])
        merges = [m for m in enumerate_merges(s, target=1)
                  if m.controls == ()]
        results = {m.apply(s).index_set for m in merges}
        assert frozenset({0b00}) in results
        assert frozenset({0b01}) in results


class TestSuccessors:
    def test_no_self_loops(self):
        s = ghz_state(3)
        for move, nxt in successors(s):
            assert nxt != s

    def test_costs_nonnegative(self):
        for move, _ in successors(dicke_state(3, 1)):
            assert move.cost >= 0

    def test_include_x_moves(self):
        s = QState.uniform(2, [0b00, 0b11])
        with_x = successors(s, include_x_moves=True)
        without = successors(s, include_x_moves=False)
        assert len(with_x) > len(without)

    @given(st.integers(0, 500))
    def test_ap_invariant_merges_preserve_probability_mass(self, seed):
        """Every successor is a valid normalized state and merges preserve
        the amplitude multiset (paper's AP definition)."""
        rng = np.random.default_rng(seed)
        n = int(rng.integers(2, 5))
        m = int(rng.integers(2, min(6, 1 << n) + 1))
        idx = rng.choice(1 << n, size=m, replace=False)
        amps = rng.standard_normal(m)
        s = QState(n, {int(i): float(a) for i, a in zip(idx, amps)})
        for move, nxt in successors(s):
            assert abs(nxt.norm() - 1.0) < 1e-8
            if isinstance(move, MergeMove):
                assert nxt.cardinality < s.cardinality
            else:
                assert nxt.cardinality == s.cardinality

    def test_motivating_example_has_cheap_path(self):
        """Figure 4's first bold arc exists: a 1-CNOT move from the target
        toward (|000>+|010>+|001>+|011>)/2."""
        psi = QState.uniform(3, [0b000, 0b011, 0b101, 0b110])
        succ_sets = {nxt.index_set for move, nxt in successors(psi)
                     if move.cost == 1}
        assert frozenset({0b000, 0b010, 0b001, 0b011}) in succ_sets or \
            any(len(ss) == 4 for ss in succ_sets)

"""Unit tests for the m-flow (cardinality reduction) baseline."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.baselines.mflow import (
    dif_qubits,
    mflow_cnot_count,
    mflow_reduction_moves,
    mflow_synthesize,
)
from repro.exceptions import SynthesisError
from repro.sim.verify import prepares_state
from repro.states.families import dicke_state, ghz_state, w_state
from repro.states.qstate import QState
from repro.states.random_states import random_real_state, random_sparse_state
from repro.utils.bits import bit_of


class TestDifQubits:
    def test_isolates_exactly_two(self):
        indices = [0b000, 0b011, 0b101, 0b110]
        literals, pair = dif_qubits(indices, 3)
        selected = [i for i in indices
                    if all(bit_of(i, q, 3) == v for q, v in literals)]
        assert sorted(selected) == pair
        assert len(pair) == 2

    def test_two_indices_need_no_literals(self):
        literals, pair = dif_qubits([0b01, 0b10], 2)
        assert literals == []
        assert pair == [0b01, 0b10]

    def test_one_hot_set(self):
        # every qubit splits 1/(m-1): exercises the fallback branch.
        indices = [0b0001, 0b0010, 0b0100, 0b1000]
        literals, pair = dif_qubits(indices, 4)
        selected = [i for i in indices
                    if all(bit_of(i, q, 4) == v for q, v in literals)]
        assert sorted(selected) == pair

    def test_rejects_singletons(self):
        with pytest.raises(SynthesisError):
            dif_qubits([3], 2)

    @given(st.integers(0, 200))
    def test_random_sets_always_isolate(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(2, 7))
        m = int(rng.integers(2, min(10, 1 << n) + 1))
        indices = sorted(int(i) for i in
                         rng.choice(1 << n, size=m, replace=False))
        literals, pair = dif_qubits(indices, n)
        selected = [i for i in indices
                    if all(bit_of(i, q, n) == v for q, v in literals)]
        assert sorted(selected) == pair


class TestMflow:
    @pytest.mark.parametrize("n", [3, 4, 5, 6])
    def test_prepares_sparse_states(self, n):
        s = random_sparse_state(n, seed=n)
        circuit = mflow_synthesize(s)
        assert prepares_state(circuit, s)

    def test_prepares_signed_amplitudes(self):
        s = random_real_state(4, 5, seed=17)
        assert prepares_state(mflow_synthesize(s), s)

    def test_prepares_ghz_w_dicke(self):
        for s in (ghz_state(4), w_state(4), dicke_state(4, 2)):
            assert prepares_state(mflow_synthesize(s), s)

    def test_basis_state_costs_zero(self):
        s = QState.basis(4, 0b1010)
        assert mflow_cnot_count(s) == 0

    def test_cost_matches_circuit(self):
        s = random_sparse_state(5, seed=4)
        assert mflow_cnot_count(s) == mflow_synthesize(s).cnot_cost()

    def test_cost_scales_like_mn(self):
        """O(mn) shape: sparse m-flow cost grows roughly linearly in n."""
        costs = [mflow_cnot_count(random_sparse_state(n, seed=77))
                 for n in (4, 8, 12)]
        assert costs[0] < costs[1] < costs[2]
        assert costs[2] < 40 * 12  # comfortably inside O(mn)

    def test_partial_reduction(self):
        s = random_sparse_state(6, seed=5)
        moves, reduced = mflow_reduction_moves(s, stop_cardinality=3)
        assert reduced.cardinality <= 3
        assert all(m.cost >= 0 for m in moves)

    def test_invalid_stop(self):
        with pytest.raises(SynthesisError):
            mflow_reduction_moves(w_state(3), stop_cardinality=0)

    def test_cardinality_strictly_decreases(self):
        s = random_sparse_state(5, seed=6)
        moves, reduced = mflow_reduction_moves(s)
        assert reduced.cardinality == 1

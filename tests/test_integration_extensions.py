"""End-to-end integration across the extension subsystems.

Chains: synthesis workflow -> post-optimization -> device routing ->
noisy-fidelity scoring, on states from the extended families — the full
pipeline a downstream user would run.
"""

from __future__ import annotations

import networkx as nx
import pytest

from repro import (
    CouplingMap,
    NoiseModel,
    prepare_on_device,
    prepare_state,
    sparse_prepares,
)
from repro.arch.flow import routed_prepares
from repro.opt.pipeline import postoptimize
from repro.sim.noise import analytic_fidelity_bound, density_matrix_fidelity
from repro.sim.verify import prepares_state
from repro.states.special import (
    bell_state,
    distribution_state,
    domain_wall_state,
    graph_state,
    unary_encoding_state,
)


class TestSynthesizeOptimizeRoute:
    @pytest.fixture(scope="class")
    def target(self):
        return graph_state(nx.path_graph(3), 3)

    def test_full_chain_on_graph_state(self, target):
        logical = prepare_state(target).circuit
        assert prepares_state(logical, target)

        cleaned = postoptimize(logical.decompose())
        assert prepares_state(cleaned.circuit, target)
        assert cleaned.cnots_after <= cleaned.cnots_before

        device = CouplingMap.line(3)
        result = prepare_on_device(target, device)
        assert result.verified is True
        assert routed_prepares(result.routed, target)

    def test_noise_scores_full_chain(self, target):
        logical = prepare_state(target).circuit
        noise = NoiseModel(p_cx=0.01, p_1q=0.001)
        bound = analytic_fidelity_bound(logical, noise)
        exact = density_matrix_fidelity(logical, target, noise)
        assert 0.0 < bound <= exact <= 1.0


class TestExtendedFamiliesThroughWorkflow:
    @pytest.mark.parametrize("state", [
        bell_state(0),
        bell_state(3),
        domain_wall_state(5),
        unary_encoding_state([1.0, -2.0, 2.0]),
        distribution_state([4, 3, 2, 1]),
    ], ids=["bell+", "bell-", "domain_wall5", "unary3", "dist4"])
    def test_workflow_prepares(self, state):
        result = prepare_state(state)
        assert sparse_prepares(result.circuit, state)

    def test_signed_amplitudes_survive_routing(self):
        state = unary_encoding_state([3.0, -4.0, 5.0])
        result = prepare_on_device(state, CouplingMap.ring(3))
        assert result.verified is True

    def test_domain_wall_routes_on_line(self):
        state = domain_wall_state(4)
        result = prepare_on_device(state, CouplingMap.line(4),
                                   placement="annealed")
        assert result.verified is True
        assert result.physical_cnots >= result.logical_cnots


class TestCrossChecksBetweenSimulators:
    def test_dense_and_sparse_agree_on_workflow_output(self):
        import numpy as np

        from repro.sim.sparse import simulate_sparse
        from repro.sim.statevector import simulate_circuit

        state = distribution_state([1, 2, 3, 4, 5, 6, 7, 8])
        circuit = prepare_state(state).circuit
        dense = simulate_circuit(circuit)
        sparse = simulate_sparse(circuit).to_vector()
        assert np.allclose(dense, sparse, atol=1e-8)

    def test_monte_carlo_within_bounds(self):
        from repro.sim.noise import monte_carlo_fidelity

        state = bell_state(0)
        circuit = prepare_state(state).circuit
        noise = NoiseModel(p_cx=0.05, p_1q=0.0)
        exact = density_matrix_fidelity(circuit, state, noise)
        sampled = monte_carlo_fidelity(circuit, state, noise,
                                       shots=1500, seed=4)
        assert sampled == pytest.approx(exact, abs=0.05)

"""Unit + property tests for the backward move library (L_QSP)."""

from __future__ import annotations

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.circuits.circuit import QCircuit
from repro.core.moves import (
    CXMove,
    MergeMove,
    XMove,
    apply_controlled_ry,
    merge_angle,
    moves_to_circuit,
    product_state_rotations,
)
from repro.exceptions import StateError
from repro.sim.verify import prepares_state
from repro.states.qstate import QState


class TestMergeAngle:
    @given(st.floats(-2, 2).filter(lambda x: abs(x) > 1e-3),
           st.floats(-2, 2).filter(lambda x: abs(x) > 1e-3))
    def test_direction0_zeroes_upper(self, a0, a1):
        theta = merge_angle(a0, a1, 0)
        c, s = math.cos(theta / 2), math.sin(theta / 2)
        new0 = c * a0 - s * a1
        new1 = s * a0 + c * a1
        assert abs(new1) < 1e-9
        assert new0 == pytest.approx(math.hypot(a0, a1))

    @given(st.floats(-2, 2).filter(lambda x: abs(x) > 1e-3),
           st.floats(-2, 2).filter(lambda x: abs(x) > 1e-3))
    def test_direction1_zeroes_lower(self, a0, a1):
        theta = merge_angle(a0, a1, 1)
        c, s = math.cos(theta / 2), math.sin(theta / 2)
        assert abs(c * a0 - s * a1) < 1e-9
        assert s * a0 + c * a1 == pytest.approx(math.hypot(a0, a1))

    def test_bad_direction(self):
        with pytest.raises(ValueError):
            merge_angle(1.0, 1.0, 2)


class TestMoveCosts:
    def test_costs_match_table1(self):
        assert XMove(qubit=0).cost == 0
        assert CXMove(control=0, phase=1, target=1).cost == 1
        assert MergeMove(target=0, theta=1.0).cost == 0
        assert MergeMove(target=0, theta=1.0, controls=((1, 1),)).cost == 2
        assert MergeMove(target=0, theta=1.0,
                         controls=((1, 1), (2, 0))).cost == 4


class TestMoveApplication:
    def test_x_move(self):
        s = QState.uniform(2, [0b00, 0b01])
        t = XMove(qubit=0).apply(s)
        assert t.index_set == frozenset({0b10, 0b11})

    def test_cx_move(self):
        s = QState.uniform(2, [0b00, 0b10])
        t = CXMove(control=0, phase=1, target=1).apply(s)
        assert t.index_set == frozenset({0b00, 0b11})

    def test_free_merge(self):
        # (|00> + |01>)/sqrt2: merge on qubit 1 gives |00>.
        s = QState.uniform(2, [0b00, 0b01])
        theta = merge_angle(s.amplitude(0b00), s.amplitude(0b01), 0)
        t = MergeMove(target=1, theta=theta).apply(s)
        assert t.index_set == frozenset({0b00})

    def test_controlled_merge_leaves_rest(self):
        # pairs (000,001) and (110,111); merge only the q0=1 pair.
        s = QState.uniform(3, [0b000, 0b001, 0b110, 0b111])
        theta = merge_angle(s.amplitude(0b110), s.amplitude(0b111), 0)
        move = MergeMove(target=2, theta=theta, controls=((0, 1),))
        t = move.apply(s)
        assert t.index_set == frozenset({0b000, 0b001, 0b110})

    def test_merge_amplitude_is_norm(self):
        s = QState(1, {0: 0.6, 1: 0.8}, normalize=False)
        theta = merge_angle(0.6, 0.8, 0)
        t = MergeMove(target=0, theta=theta).apply(s)
        assert t.amplitude(0) == pytest.approx(1.0)

    def test_apply_controlled_ry_generic_rotation(self):
        # An arbitrary angle is NOT a merge: it must split the amplitude.
        s = QState.basis(1, 0)
        t = apply_controlled_ry(s, (), 0, math.pi / 2)
        assert t.cardinality == 2


class TestBackwardForwardConsistency:
    def test_move_inverse_roundtrip(self):
        from repro.sim.statevector import simulate_circuit
        import numpy as np
        s = QState.uniform(3, [0b000, 0b011, 0b101, 0b110])
        for move in (CXMove(control=0, phase=1, target=2),
                     XMove(qubit=1)):
            after = move.apply(s)
            # forward gates map `after` back to `s`.
            qc = QCircuit(3)
            qc.extend(move.forward_gates())
            out = simulate_circuit(qc, initial=after)
            assert np.allclose(out, s.to_vector(), atol=1e-9)

    def test_merge_inverse_roundtrip(self):
        import numpy as np
        from repro.sim.statevector import simulate_circuit
        s = QState(2, {0b00: 0.6, 0b01: 0.8})
        theta = merge_angle(s.amplitude(0), s.amplitude(1), 0)
        move = MergeMove(target=1, theta=theta)
        after = move.apply(s)
        qc = QCircuit(2)
        qc.extend(move.forward_gates())
        out = simulate_circuit(qc, initial=after)
        assert np.allclose(out, s.to_vector(), atol=1e-9)


class TestProductRotations:
    def test_ground_needs_nothing(self):
        assert product_state_rotations(QState.ground(3)) == []

    def test_basis_state_gets_x(self):
        gates = product_state_rotations(QState.basis(3, 0b101))
        assert [g.name for g in gates] == ["x", "x"]

    def test_superposed_qubit_gets_ry(self):
        s = QState.uniform(2, [0b00, 0b01])
        gates = product_state_rotations(s)
        assert len(gates) == 1 and gates[0].name == "ry"

    def test_entangled_rejected(self):
        from repro.states.families import ghz_state
        with pytest.raises(StateError):
            product_state_rotations(ghz_state(2))

    def test_rotations_prepare_the_product(self):
        s = QState(2, {0b00: 0.48, 0b01: 0.36, 0b10: 0.64, 0b11: 0.48})
        qc = QCircuit(2)
        qc.extend(product_state_rotations(s))
        assert prepares_state(qc, s)


class TestMovesToCircuit:
    def test_empty_path_product_state(self):
        s = QState.uniform(2, [0b00, 0b10])  # |+>|0>
        circuit = moves_to_circuit([], s, 2)
        assert prepares_state(circuit, s)

    def test_single_merge_path(self):
        target = QState.uniform(2, [0b00, 0b01])
        theta = merge_angle(target.amplitude(0), target.amplitude(1), 0)
        move = MergeMove(target=1, theta=theta)
        final = move.apply(target)
        circuit = moves_to_circuit([move], final, 2)
        assert prepares_state(circuit, target)

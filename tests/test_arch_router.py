"""Unit and property tests for repro.arch.router / swap_network."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch.router import (
    restore_layout,
    route_circuit,
    swap_gates,
)
from repro.arch.swap_network import (
    apply_swap_sequence,
    permutation_swaps,
    swap_sequence_cost,
)
from repro.arch.topologies import CouplingMap
from repro.circuits.circuit import QCircuit
from repro.exceptions import CircuitError
from repro.sim.statevector import simulate_circuit


def _all_cx_coupled(circuit: QCircuit, cmap: CouplingMap) -> bool:
    return all(cmap.is_adjacent(g.controls[0][0], g.target)
               for g in circuit if g.name == "cx")


def _permuted_vector(vec: np.ndarray, layout: list[int],
                     n_logical: int, n_physical: int) -> np.ndarray:
    """Expected physical vector given a logical vector and final layout."""
    from repro.arch.flow import expected_physical_vector
    from repro.states.qstate import QState

    state = QState.from_vector(np.real_if_close(vec))
    return expected_physical_vector(state, layout, n_physical)


class TestSwapGates:
    def test_three_cnots(self):
        gates = swap_gates(0, 1)
        assert len(gates) == 3
        assert all(g.name == "cx" for g in gates)

    def test_swap_action(self):
        qc = QCircuit(2).x(0)
        qc.extend(swap_gates(0, 1))
        vec = simulate_circuit(qc)
        # |10> swapped to |01>
        assert vec[0b01] == pytest.approx(1.0)


class TestRouteCircuit:
    def test_already_routable_is_unchanged_cost(self):
        qc = QCircuit(3).ry(0, 0.5).cx(0, 1).cx(1, 2)
        routed = route_circuit(qc, CouplingMap.line(3))
        assert routed.swap_count == 0
        assert routed.cnot_cost == 2
        assert routed.final_layout == routed.initial_layout

    def test_distant_cx_needs_swaps(self):
        qc = QCircuit(4).cx(0, 3)
        routed = route_circuit(qc, CouplingMap.line(4))
        assert routed.swap_count >= 1
        assert _all_cx_coupled(routed.circuit, CouplingMap.line(4))

    def test_routed_state_matches_up_to_layout(self):
        qc = QCircuit(4).ry(0, 1.1).cx(0, 3).ry(3, 0.7).cx(3, 1)
        cmap = CouplingMap.line(4)
        routed = route_circuit(qc, cmap)
        logical_vec = simulate_circuit(qc)
        physical_vec = simulate_circuit(routed.circuit)
        expected = _permuted_vector(logical_vec, routed.final_layout, 4,
                                    routed.circuit.num_qubits)
        assert np.allclose(physical_vec, expected, atol=1e-9)

    def test_custom_placement_respected(self):
        qc = QCircuit(2).cx(0, 1)
        cmap = CouplingMap.line(4)
        routed = route_circuit(qc, cmap, placement=[3, 2])
        assert routed.initial_layout == [3, 2]
        assert _all_cx_coupled(routed.circuit, cmap)

    def test_rejects_multicontrol_gate(self):
        qc = QCircuit(3).mcry([(0, 1), (1, 1)], 2, 0.4)
        with pytest.raises(CircuitError):
            route_circuit(qc, CouplingMap.line(3))

    def test_rejects_bad_placement(self):
        qc = QCircuit(2).cx(0, 1)
        with pytest.raises(CircuitError):
            route_circuit(qc, CouplingMap.line(3), placement=[0, 0])

    def test_full_map_never_swaps(self):
        qc = QCircuit(4).cx(0, 3).cx(1, 2).cx(0, 2)
        routed = route_circuit(qc, CouplingMap.full(4))
        assert routed.swap_count == 0

    def test_single_qubit_gates_pass_through(self):
        qc = QCircuit(3).ry(1, 0.3).x(2).rz(0, 0.2)
        routed = route_circuit(qc, CouplingMap.line(3))
        assert routed.swap_count == 0
        assert len(routed.circuit) == 3

    def test_overhead_reported(self):
        qc = QCircuit(4).cx(0, 3)
        routed = route_circuit(qc, CouplingMap.line(4))
        assert routed.overhead(qc) == routed.cnot_cost - 1

    def test_star_topology_routing(self):
        # leaf-to-leaf CX must route through the hub
        qc = QCircuit(4).cx(1, 3)
        cmap = CouplingMap.star(4)
        routed = route_circuit(qc, cmap)
        assert _all_cx_coupled(routed.circuit, cmap)
        logical_vec = simulate_circuit(qc)
        physical_vec = simulate_circuit(routed.circuit)
        expected = _permuted_vector(logical_vec, routed.final_layout, 4, 4)
        assert np.allclose(physical_vec, expected, atol=1e-9)


class TestRestoreLayout:
    def test_restores_initial_positions(self):
        qc = QCircuit(4).cx(0, 3).cx(1, 3)
        routed = route_circuit(qc, CouplingMap.line(4))
        restored = restore_layout(routed)
        assert restored.final_layout == restored.initial_layout

    def test_restored_state_equals_embedded_logical(self):
        qc = QCircuit(3).ry(0, 0.9).cx(0, 2)
        routed = route_circuit(qc, CouplingMap.line(3))
        restored = restore_layout(routed)
        vec = simulate_circuit(restored.circuit)
        expected = simulate_circuit(qc)
        assert np.allclose(vec, expected, atol=1e-9)

    def test_noop_when_layout_unchanged(self):
        qc = QCircuit(2).cx(0, 1)
        routed = route_circuit(qc, CouplingMap.line(2))
        restored = restore_layout(routed)
        assert restored.swap_count == routed.swap_count


class TestPermutationSwaps:
    def test_identity_needs_nothing(self):
        assert permutation_swaps(CouplingMap.line(4), {}) == []

    def test_adjacent_transposition(self):
        swaps = permutation_swaps(CouplingMap.line(3), {0: 1, 1: 0})
        assert swaps == [(0, 1)]

    def test_full_reversal_on_line(self):
        cmap = CouplingMap.line(4)
        dest = {0: 3, 1: 2, 2: 1, 3: 0}
        swaps = permutation_swaps(cmap, dest)
        final = apply_swap_sequence({q: q for q in range(4)}, swaps)
        # token starting at src must end at dst: positions map phys->token
        for src, dst in dest.items():
            assert final[dst] == src

    def test_swaps_respect_edges(self):
        cmap = CouplingMap.ring(5)
        swaps = permutation_swaps(cmap, {0: 2, 2: 4, 4: 0})
        for a, b in swaps:
            assert cmap.is_adjacent(a, b)

    def test_rejects_non_permutation(self):
        with pytest.raises(CircuitError):
            permutation_swaps(CouplingMap.line(3), {0: 1})

    def test_rejects_out_of_range(self):
        with pytest.raises(CircuitError):
            permutation_swaps(CouplingMap.line(3), {0: 5, 5: 0})

    def test_cost_is_three_per_swap(self):
        assert swap_sequence_cost([(0, 1), (1, 2)]) == 6


@given(st.permutations(list(range(5))))
@settings(max_examples=30, deadline=None)
def test_token_swapping_realizes_any_permutation_on_line(perm):
    cmap = CouplingMap.line(5)
    dest = {i: perm[i] for i in range(5)}
    swaps = permutation_swaps(cmap, dest)
    final = apply_swap_sequence({q: q for q in range(5)}, swaps)
    for src, dst in dest.items():
        assert final[dst] == src
    # greedy bound: each token walks at most its distance, so the sequence
    # stays within n^2 swaps
    assert len(swaps) <= 25


@given(st.permutations(list(range(6))))
@settings(max_examples=20, deadline=None)
def test_token_swapping_on_grid(perm):
    cmap = CouplingMap.grid(2, 3)
    dest = {i: perm[i] for i in range(6)}
    swaps = permutation_swaps(cmap, dest)
    for a, b in swaps:
        assert cmap.is_adjacent(a, b)
    final = apply_swap_sequence({q: q for q in range(6)}, swaps)
    for src, dst in dest.items():
        assert final[dst] == src


@settings(max_examples=25, deadline=None)
@given(st.data())
def test_routing_preserves_semantics_random_circuits(data):
    """Routing any small random {Ry,CX} circuit onto a line preserves the
    prepared state up to the final layout permutation."""
    n = data.draw(st.integers(min_value=2, max_value=4), label="n")
    qc = QCircuit(n)
    num_gates = data.draw(st.integers(min_value=1, max_value=8))
    for _ in range(num_gates):
        if data.draw(st.booleans()):
            q = data.draw(st.integers(min_value=0, max_value=n - 1))
            theta = data.draw(st.floats(min_value=-3.0, max_value=3.0,
                                        allow_nan=False))
            qc.ry(q, theta)
        else:
            c = data.draw(st.integers(min_value=0, max_value=n - 1))
            t = data.draw(st.integers(min_value=0, max_value=n - 1))
            if c == t:
                continue
            qc.cx(c, t)
    cmap = CouplingMap.line(n)
    routed = route_circuit(qc, cmap)
    assert _all_cx_coupled(routed.circuit, cmap)
    logical_vec = simulate_circuit(qc)
    physical_vec = simulate_circuit(routed.circuit)
    expected = _permuted_vector(logical_vec, routed.final_layout, n, n)
    assert np.allclose(physical_vec, expected, atol=1e-8)

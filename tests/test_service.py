"""Tests for the synthesis service layer (repro.service).

Covers the regime-fingerprint codec, disk snapshot round trips (including
the loud failure modes), the request cache, the engine portfolio
(sequential incumbent threading, process racing, batch sharding with
memory-delta merge), the service facade + serve loop, the CLI wiring,
and the shared benchmark-artifact stamp.
"""

from __future__ import annotations

import gzip
import io
import json

import pytest

from repro.constants import BENCH_SCHEMA_VERSION, MEMORY_SNAPSHOT_VERSION
from repro.core.astar import SearchConfig, astar_search
from repro.core.heuristic import entanglement_heuristic, zero_heuristic
from repro.core.idastar import idastar_search
from repro.core.memory import SearchMemory
from repro.exceptions import MemoryCompatibilityError
from repro.experiments.family_runner import (
    FamilyRunConfig,
    dicke_family_targets,
    run_family,
)
from repro.qsp.workflow import prepare_state
from repro.service.cache import RequestCache
from repro.service.persistence import (
    load_memory_snapshot,
    merge_memory_snapshot,
    save_memory_snapshot,
)
from repro.service.portfolio import (
    EngineSpec,
    default_portfolio,
    race_portfolio,
    run_batch,
    run_engine_spec,
    run_portfolio,
)
from repro.service.server import ServiceConfig, SynthesisService, serve_loop
from repro.sim.verify import prepares_state
from repro.states.families import dicke_state, ghz_state, w_state
from repro.utils.fingerprint import (
    fingerprint_digest,
    fingerprint_from_dict,
    fingerprint_to_dict,
    heuristic_ref,
    resolve_heuristic,
    search_regime_dict,
    stamp_benchmark,
)
from repro.utils.serialization import memory_from_dict, memory_to_dict


def _default_fingerprint(heuristic=entanglement_heuristic,
                         topo_key=None) -> tuple:
    cfg = SearchConfig()
    return (cfg.canon_level, cfg.tie_cap, cfg.perm_cap,
            cfg.max_merge_controls, cfg.include_x_moves, heuristic,
            topo_key)


class TestFingerprint:
    def test_heuristic_ref_roundtrip(self):
        ref = heuristic_ref(entanglement_heuristic)
        assert resolve_heuristic(ref) is entanglement_heuristic

    def test_lambda_rejected(self):
        with pytest.raises(MemoryCompatibilityError):
            heuristic_ref(lambda s: 0.0)

    def test_dict_roundtrip(self):
        fp = _default_fingerprint()
        data = fingerprint_to_dict(fp)
        assert fingerprint_from_dict(data) == fp
        json.dumps(data)  # portable form must be JSON-safe

    def test_digest_stable_and_sensitive(self):
        a = fingerprint_to_dict(_default_fingerprint())
        b = fingerprint_to_dict(_default_fingerprint(zero_heuristic))
        assert fingerprint_digest(a) == fingerprint_digest(a)
        assert fingerprint_digest(a) != fingerprint_digest(b)

    def test_malformed_dict_fails_loudly(self):
        data = fingerprint_to_dict(_default_fingerprint())
        data["canon_level"] = "NO_SUCH_LEVEL"
        with pytest.raises(MemoryCompatibilityError):
            fingerprint_from_dict(data)

    def test_stamp_benchmark_fields(self):
        report = stamp_benchmark({"metric": "x"})
        assert report["schema_version"] == BENCH_SCHEMA_VERSION
        regime = report["regime_fingerprint"]
        assert regime["canon_level"] == "PU2"
        assert regime["digest"]
        json.dumps(report)


class TestSnapshotRoundTrip:
    """save -> load -> warm run must match the in-process warm run."""

    def test_memory_dict_roundtrip_preserves_stores(self):
        memory = SearchMemory()
        idastar_search(dicke_state(4, 2), memory=memory)
        data = memory_to_dict(memory)
        json.dumps(data)
        restored = memory_from_dict(data)
        assert len(restored.canon_store) == len(memory.canon_store)
        assert len(restored.h_store) == len(memory.h_store)
        assert restored.transposition.data == memory.transposition.data
        assert restored.transposition.cond == memory.transposition.cond
        assert restored.fingerprint == memory.fingerprint

    @pytest.mark.parametrize("suffix", ["qspmem.json", "qspmem.json.gz"])
    def test_family_warm_run_matches_in_process(self, tmp_path, suffix):
        targets = dicke_family_targets(4)
        config = FamilyRunConfig(engine="idastar")
        memory = SearchMemory()
        run_family(targets, config, memory=memory)  # cold pass
        path = tmp_path / f"warm.{suffix}"
        save_memory_snapshot(memory, path)

        hits_after_cold = memory.canon_store.hits
        tt_hits_after_cold = memory.transposition.hits
        in_process = run_family(targets, config, memory=memory)
        restored_memory = load_memory_snapshot(path)
        restored = run_family(targets, config, memory=restored_memory)

        assert restored.solved_costs == in_process.solved_costs
        # same per-row work: every expansion count matches the in-process
        # warm pass, because the restored stores serve exactly what the
        # live ones would
        assert [row.nodes_expanded for row in restored.rows] == \
            [row.nodes_expanded for row in in_process.rows]
        # and the store/table hit counters tell the same reuse story
        assert restored_memory.canon_store.hits == \
            memory.canon_store.hits - hits_after_cold
        assert restored_memory.transposition.hits == \
            memory.transposition.hits - tt_hits_after_cold
        assert restored_memory.canon_store.hits > 0
        assert restored_memory.transposition.hits > 0

    def test_snapshot_warm_astar_equals_cold(self, tmp_path):
        state = dicke_state(4, 2)
        cold = astar_search(state, SearchConfig())
        memory = SearchMemory()
        astar_search(state, SearchConfig(), memory=memory)
        path = tmp_path / "warm.json"
        save_memory_snapshot(memory, path)
        warm = astar_search(state, SearchConfig(),
                            memory=load_memory_snapshot(path))
        assert warm.cnot_cost == cold.cnot_cost
        assert warm.optimal == cold.optimal
        assert prepares_state(warm.circuit, state)

    def test_merge_snapshot_combines_entries(self, tmp_path):
        mem_a = SearchMemory()
        astar_search(dicke_state(4, 1), SearchConfig(), memory=mem_a)
        mem_b = SearchMemory()
        astar_search(dicke_state(4, 2), SearchConfig(), memory=mem_b)
        path = tmp_path / "b.json"
        save_memory_snapshot(mem_b, path)
        before = len(mem_a.canon_store)
        merge_memory_snapshot(mem_a, path)
        assert len(mem_a.canon_store) > before

    def test_corrupted_file_fails_loudly(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{ not json", encoding="utf-8")
        with pytest.raises(MemoryCompatibilityError):
            load_memory_snapshot(path)

    def test_truncated_gzip_fails_loudly(self, tmp_path):
        path = tmp_path / "bad.json.gz"
        memory = SearchMemory()
        astar_search(ghz_state(3), SearchConfig(), memory=memory)
        save_memory_snapshot(memory, path)
        raw = path.read_bytes()
        path.write_bytes(raw[:len(raw) // 2])
        with pytest.raises(MemoryCompatibilityError):
            load_memory_snapshot(path)

    def test_wrong_kind_fails_loudly(self, tmp_path):
        path = tmp_path / "kind.json"
        path.write_text(json.dumps({"kind": "qstate"}), encoding="utf-8")
        with pytest.raises(MemoryCompatibilityError):
            load_memory_snapshot(path)

    def test_version_mismatch_fails_loudly(self, tmp_path):
        memory = SearchMemory()
        astar_search(ghz_state(3), SearchConfig(), memory=memory)
        data = memory_to_dict(memory)
        data["version"] = MEMORY_SNAPSHOT_VERSION + 1
        path = tmp_path / "vers.json"
        path.write_text(json.dumps(data), encoding="utf-8")
        with pytest.raises(MemoryCompatibilityError):
            load_memory_snapshot(path)

    def test_corrupted_entry_fails_loudly(self, tmp_path):
        memory = SearchMemory()
        astar_search(ghz_state(3), SearchConfig(), memory=memory)
        data = memory_to_dict(memory)
        data["canon_store"][0][0] = "%%% not base64 %%%"
        with pytest.raises(MemoryCompatibilityError):
            memory_from_dict(data)

    def test_missing_file_raises_filenotfound(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_memory_snapshot(tmp_path / "nope.json")

    def test_regime_mismatch_on_attach_after_load(self, tmp_path):
        memory = SearchMemory()
        astar_search(ghz_state(3), SearchConfig(), memory=memory)
        path = tmp_path / "warm.json"
        save_memory_snapshot(memory, path)
        restored = load_memory_snapshot(path)
        with pytest.raises(MemoryCompatibilityError):
            astar_search(ghz_state(3), SearchConfig(tie_cap=7),
                         memory=restored)

    def test_unpinned_memory_snapshots_without_fingerprint(self):
        data = memory_to_dict(SearchMemory())
        assert data["fingerprint"] is None
        restored = memory_from_dict(data)
        assert restored.fingerprint is None

    def test_delta_snapshot_ships_only_new_entries(self):
        from repro.utils.serialization import (
            memory_baseline,
            memory_merge_dict,
        )

        memory = SearchMemory()
        astar_search(dicke_state(4, 1), SearchConfig(), memory=memory)
        baseline_dict = memory_to_dict(memory)
        baseline = memory_baseline(memory)
        astar_search(dicke_state(4, 2), SearchConfig(), memory=memory)
        delta = memory_to_dict(memory, since=baseline)
        full = memory_to_dict(memory)
        assert 0 < len(delta["canon_store"]) < len(full["canon_store"])
        # baseline + delta reconstructs the full store contents
        rebuilt = memory_from_dict(baseline_dict)
        memory_merge_dict(rebuilt, delta)
        assert len(rebuilt.canon_store) == len(memory.canon_store)


class TestRequestCache:
    def test_hit_after_put(self):
        cache = RequestCache()
        state = dicke_state(4, 2)
        assert cache.get("exact", state) is None
        cache.put("exact", state, "result")
        assert cache.get("exact", state) == "result"
        assert len(cache) == 1

    def test_modes_are_separate_namespaces(self):
        cache = RequestCache()
        state = w_state(3)
        cache.put("exact", state, "a")
        assert cache.get("prepare", state) is None

    def test_distinct_states_do_not_alias(self):
        cache = RequestCache()
        cache.put("exact", dicke_state(4, 1), "d41")
        cache.put("exact", dicke_state(4, 2), "d42")
        assert cache.get("exact", dicke_state(4, 1)) == "d41"
        assert cache.get("exact", dicke_state(4, 2)) == "d42"

    def test_regime_pin_mismatch_rejected(self):
        cache = RequestCache(search_regime_dict(SearchConfig()))
        with pytest.raises(MemoryCompatibilityError):
            cache.pin(search_regime_dict(SearchConfig(tie_cap=7)))

    def test_snapshot_counters(self):
        cache = RequestCache()
        state = ghz_state(3)
        cache.get("exact", state)
        cache.put("exact", state, 1)
        cache.get("exact", state)
        snap = cache.snapshot()
        assert snap["exact"]["hits"] == 1
        assert snap["exact"]["misses"] == 1


class TestPortfolio:
    def test_sequential_first_optimal_wins(self):
        outcome = run_portfolio(w_state(4), SearchConfig())
        assert outcome.solved and outcome.result.optimal
        assert outcome.result.cnot_cost == 7
        names = [a["name"] for a in outcome.attempts]
        # beam ran (incumbent), astar proved optimality, line stopped
        assert names == ["beam", "astar"]

    def test_never_worse_than_best_single_engine(self):
        search = SearchConfig(max_nodes=60_000)
        for state in (dicke_state(4, 2), w_state(4), ghz_state(4)):
            single = []
            for spec in default_portfolio():
                try:
                    single.append(run_engine_spec(spec, state,
                                                  search).cnot_cost)
                except Exception:
                    continue
            outcome = run_portfolio(state, search)
            assert outcome.solved
            assert outcome.result.cnot_cost <= min(single)

    def test_incumbent_threading_reaches_astar(self):
        memory = SearchMemory()
        outcome = run_portfolio(dicke_state(4, 2), SearchConfig(),
                                memory=memory)
        assert outcome.solved and outcome.result.optimal
        astar_attempt = next(a for a in outcome.attempts
                             if a["name"] == "astar")
        assert astar_attempt["solved"]

    def test_budget_exhausted_lane_reports_lower_bound(self):
        search = SearchConfig(max_nodes=10)
        specs = (EngineSpec("astar", "astar"),)
        outcome = run_portfolio(dicke_state(5, 2), search, specs=specs)
        assert not outcome.solved
        assert outcome.lower_bound > 0

    def test_bad_engine_rejected(self):
        with pytest.raises(ValueError):
            EngineSpec("x", "dijkstra")

    def test_race_portfolio_finds_optimum(self, tmp_path):
        memory = SearchMemory()
        idastar_search(dicke_state(4, 2), memory=memory)
        snap = tmp_path / "warm.json"
        save_memory_snapshot(memory, snap)
        outcome = race_portfolio(dicke_state(4, 2),
                                 SearchConfig(max_nodes=100_000),
                                 snapshot_path=snap, lane_timeout=300.0)
        assert outcome.solved
        assert outcome.result.cnot_cost == 6
        assert prepares_state(outcome.result.circuit, dicke_state(4, 2))


class TestBatch:
    ROWS = [(3, 1), (4, 1), (4, 2)]

    def _requests(self):
        return [(f"D({n},{k})", dicke_state(n, k)) for n, k in self.ROWS]

    def test_single_process_batch(self):
        rows = run_batch(self._requests(),
                         SearchConfig(max_nodes=60_000), workers=1)
        assert [r["id"] for r in rows] == [r for r, _ in self._requests()]
        assert all(r["solved"] and r["optimal"] for r in rows)

    def test_sharded_batch_matches_and_merges_delta(self, tmp_path):
        memory = SearchMemory()
        astar_search(dicke_state(4, 2), SearchConfig(), memory=memory)
        snap = tmp_path / "warm.json"
        save_memory_snapshot(memory, snap)

        search = SearchConfig(max_nodes=60_000, time_limit=120.0)
        single = run_batch(self._requests(), search, workers=1,
                           snapshot_path=snap)
        parent = SearchMemory()
        before = len(parent.canon_store)
        sharded = run_batch(self._requests(), search, workers=2,
                            snapshot_path=snap, memory=parent)
        assert [(r["id"], r["cnot_cost"]) for r in single] == \
            [(r["id"], r["cnot_cost"]) for r in sharded]
        # the workers' learned entries came home
        assert len(parent.canon_store) > before

    def test_with_circuit_rows_carry_circuits(self):
        rows = run_batch([("w4", w_state(4))],
                         SearchConfig(max_nodes=60_000), workers=1,
                         with_circuit=True)
        from repro.utils.serialization import circuit_from_dict
        circuit = circuit_from_dict(rows[0]["circuit"])
        assert prepares_state(circuit, w_state(4))


class TestSynthesisService:
    def test_prepare_and_cache(self):
        service = SynthesisService()
        first = service.handle({"id": 1, "op": "prepare", "dicke": [4, 2]})
        again = service.handle({"id": 2, "op": "prepare", "dicke": [4, 2]})
        assert first["ok"] and again["ok"]
        assert first["cnot_cost"] == again["cnot_cost"] == 6
        assert not first["cached"] and again["cached"]

    def test_prepare_goes_through_workflow(self):
        service = SynthesisService()
        direct = prepare_state(dicke_state(4, 2))
        response = service.handle({"op": "prepare", "dicke": [4, 2],
                                   "trace": True, "return_circuit": True})
        assert response["cnot_cost"] == direct.cnot_cost
        assert response["trace"]
        from repro.utils.serialization import circuit_from_dict
        assert prepares_state(circuit_from_dict(response["circuit"]),
                              dicke_state(4, 2))

    def test_prepare_warms_service_memory(self):
        service = SynthesisService()
        assert service.memory.searches == 0
        service.handle({"op": "prepare", "dicke": [4, 2]})
        # the workflow's exact core ran through the service memory
        assert service.memory.searches > 0

    def test_exact_portfolio_and_cache(self):
        service = SynthesisService()
        first = service.handle({"op": "exact", "w": 4})
        again = service.handle({"op": "exact", "w": 4})
        assert first["cnot_cost"] == again["cnot_cost"] == 7
        assert first["optimal"] and again["cached"]
        assert again["engine"] == "cache"

    def test_cache_disabled(self):
        service = SynthesisService(ServiceConfig(use_cache=False))
        first = service.handle({"op": "exact", "ghz": 3})
        again = service.handle({"op": "exact", "ghz": 3})
        assert not first["cached"] and not again["cached"]

    def test_stats_and_errors(self):
        service = SynthesisService()
        bad = service.handle({"op": "exact"})  # no state
        assert not bad["ok"] and "error" in bad
        unknown = service.handle({"op": "fly", "ghz": 3})
        assert not unknown["ok"]
        stats = service.handle({"op": "stats"})
        assert stats["ok"] and stats["errors"] == 2

    def test_snapshot_op_and_boot_from_snapshot(self, tmp_path):
        service = SynthesisService()
        service.handle({"op": "exact", "dicke": [4, 2]})
        path = str(tmp_path / "svc.qspmem.gz")
        response = service.handle({"op": "snapshot", "path": path})
        assert response["ok"] and response["entries"] > 0
        warm = SynthesisService(ServiceConfig(snapshot_path=path))
        assert len(warm.memory.canon_store) > 0
        assert warm.handle({"op": "exact",
                            "dicke": [4, 2]})["cnot_cost"] == 6

    def test_incompatible_snapshot_rejected_at_boot(self, tmp_path):
        memory = SearchMemory()
        astar_search(ghz_state(3), SearchConfig(tie_cap=7), memory=memory)
        path = str(tmp_path / "other.json")
        save_memory_snapshot(memory, path)
        with pytest.raises(MemoryCompatibilityError):
            SynthesisService(ServiceConfig(snapshot_path=path))

    def test_state_parsing_variants(self):
        from repro.utils.serialization import state_to_dict
        service = SynthesisService()
        by_terms = service.handle(
            {"op": "exact", "terms": {"00": 0.6, "11": 0.8}})
        assert by_terms["ok"] and by_terms["cnot_cost"] == 1
        by_state = service.handle(
            {"op": "exact", "state": state_to_dict(ghz_state(3))})
        assert by_state["ok"] and by_state["cnot_cost"] == 2


class TestServeLoop:
    def test_request_response_lines(self):
        service = SynthesisService()
        lines = [
            json.dumps({"id": 1, "op": "exact", "dicke": [4, 2]}),
            "",  # blank lines are skipped
            "this is not json",
            json.dumps({"id": 2, "op": "exact", "dicke": [4, 2]}),
            json.dumps({"op": "shutdown"}),
            json.dumps({"id": 99, "op": "exact", "ghz": 3}),  # after stop
        ]
        out = io.StringIO()
        handled = serve_loop(service, io.StringIO("\n".join(lines) + "\n"),
                             out)
        responses = [json.loads(line)
                     for line in out.getvalue().splitlines()]
        assert handled == 4
        assert [r.get("id") for r in responses] == [1, None, 2, None]
        assert responses[0]["cnot_cost"] == 6 and not responses[0]["cached"]
        assert not responses[1]["ok"]
        assert responses[2]["cached"]
        assert responses[3]["op"] == "shutdown"

    def test_batch_file_roundtrip(self, tmp_path):
        service = SynthesisService(ServiceConfig(
            search=SearchConfig(max_nodes=60_000)))
        requests = [
            {"id": "a", "dicke": [4, 1]},
            {"id": "b", "w": 4},  # structurally the same state: W = D(n,1)
            {"id": "bad"},  # no state: must fail loudly but locally
            {"id": "a2", "dicke": [4, 1]},  # same state as "a"
        ]
        in_path = tmp_path / "in.jsonl"
        out_path = tmp_path / "out.jsonl"
        in_path.write_text(
            "".join(json.dumps(r) + "\n" for r in requests),
            encoding="utf-8")
        summary = service.run_batch_file(in_path, out_path, workers=1)
        rows = [json.loads(line)
                for line in out_path.read_text().splitlines()]
        assert summary["requests"] == 4 and summary["solved"] == 3
        by_id = {row["id"]: row for row in rows}
        assert by_id["a"]["cnot_cost"] == by_id["a2"]["cnot_cost"] == 7
        assert by_id["b"]["cnot_cost"] == 7
        assert not by_id["bad"]["ok"]
        # duplicate targets within one file are searched once and fanned
        # out (duplicate rows report cached) — dedup is *structural*, so
        # the textually different {"w": 4} collapses into the D(4,1)
        # group too
        assert not by_id["a"]["cached"]
        assert by_id["a2"]["cached"] and by_id["b"]["cached"]
        assert summary["cache_hits"] == 2
        # a second run over the same file is pure request-cache hits
        second = tmp_path / "out2.jsonl"
        summary2 = service.run_batch_file(in_path, second, workers=1)
        assert summary2["cache_hits"] == 3


class TestServiceCLI:
    def test_parser_accepts_new_commands(self):
        from repro.cli import build_parser
        parser = build_parser()
        args = parser.parse_args(["serve", "--snapshot", "x.gz",
                                  "--race-workers", "2"])
        assert args.snapshot == "x.gz" and args.race_workers == 2
        args = parser.parse_args(["batch", "in.jsonl", "out.jsonl",
                                  "--workers", "3"])
        assert args.workers == 3
        args = parser.parse_args(["family", "--max-n", "4",
                                  "--snapshot-out", "warm.gz"])
        assert args.snapshot_out == "warm.gz"

    def test_family_snapshot_out_then_batch(self, tmp_path, capsys):
        from repro.cli import main
        snap = str(tmp_path / "warm.qspmem.gz")
        assert main(["family", "--max-n", "4", "--engine", "astar",
                     "--snapshot-out", snap]) == 0
        in_path = tmp_path / "in.jsonl"
        out_path = tmp_path / "out.jsonl"
        in_path.write_text(json.dumps({"id": "d", "dicke": [4, 2]}) + "\n",
                           encoding="utf-8")
        assert main(["batch", str(in_path), str(out_path),
                     "--snapshot", snap]) == 0
        row = json.loads(out_path.read_text().splitlines()[0])
        assert row["ok"] and row["cnot_cost"] == 6
        out = capsys.readouterr().out
        assert "snapshot written" in out

    def test_family_cold_rejects_snapshot_flags(self):
        from repro.cli import main
        with pytest.raises(SystemExit):
            main(["family", "--max-n", "3", "--cold",
                  "--snapshot-out", "x.gz"])


class TestQSPResultCodec:
    def test_roundtrip_through_prepare(self):
        from repro.utils.serialization import (
            qsp_result_from_dict,
            qsp_result_to_dict,
        )

        result = prepare_state(dicke_state(4, 2))
        data = qsp_result_to_dict(result)
        json.dumps(data)
        back = qsp_result_from_dict(data)
        assert back.cnot_cost == result.cnot_cost
        assert back.sparse_path == result.sparse_path
        assert back.exact_optimal == result.exact_optimal
        assert back.trace == result.trace
        assert prepares_state(back.circuit, dicke_state(4, 2))

    def test_wrong_kind_rejected(self):
        from repro.exceptions import ReproError
        from repro.utils.serialization import qsp_result_from_dict

        with pytest.raises(ReproError):
            qsp_result_from_dict({"kind": "qstate"})


class TestWorkflowMemoryWiring:
    def test_prepare_state_accepts_memory_and_matches_cold(self):
        state = dicke_state(4, 2)
        cold = prepare_state(state)
        memory = SearchMemory()
        warm1 = prepare_state(state, memory=memory)
        warm2 = prepare_state(state, memory=memory)
        assert warm1.cnot_cost == warm2.cnot_cost == cold.cnot_cost
        assert memory.searches > 0

    def test_sparse_path_with_memory(self):
        # wide sparse state: exercises the reduction path's exact cores
        # through one shared memory
        state = w_state(6)
        cold = prepare_state(state)
        memory = SearchMemory()
        warm = prepare_state(state, memory=memory)
        assert warm.cnot_cost == cold.cnot_cost
        assert prepares_state(warm.circuit, state)

"""Unit tests for entangled-core extraction."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.circuits.circuit import QCircuit
from repro.exceptions import StateError
from repro.qsp.extraction import embed_core_circuit, extract_core
from repro.sim.verify import prepares_state
from repro.states.families import ghz_state, w_state
from repro.states.qstate import QState


class TestExtractCore:
    def test_fully_separable(self):
        s = QState.uniform(3, [0b000, 0b001])  # |00>|+>
        ext = extract_core(s)
        assert ext.core is None
        assert ext.placement == []
        circuit = embed_core_circuit(ext, None)
        assert prepares_state(circuit, s)

    def test_ground_state(self):
        ext = extract_core(QState.ground(4))
        assert ext.core is None
        assert ext.local_gates == []

    def test_entangled_core_untouched(self):
        s = ghz_state(3)
        ext = extract_core(s)
        assert ext.core == s
        assert ext.placement == [0, 1, 2]
        assert ext.local_gates == []

    def test_bell_with_spectators(self):
        # |1> (x) Bell(1,3) (x) |+>: core on wires 1 and 3.
        amps = {}
        for bell in (0b0000, 0b0101):
            for plus in (0, 1):
                idx = 0b1000 | bell | plus  # q0=1, bell on q1/q3? build:
        # Simpler: build from kron product.
        import numpy as np
        one = np.array([0.0, 1.0])
        plus = np.array([1.0, 1.0]) / np.sqrt(2)
        bell = np.array([1.0, 0.0, 0.0, 1.0]) / np.sqrt(2)
        # order: q0 (x) (q1,q2 bell) (x) q3
        vec = np.kron(one, np.kron(bell, plus))
        s = QState.from_vector(vec)
        ext = extract_core(s)
        assert ext.core is not None
        assert ext.core.num_qubits == 2
        assert ext.placement == [1, 2]
        names = sorted(g.name for g in ext.local_gates)
        assert names == ["ry", "x"]

    def test_core_cardinality_shrinks(self):
        # |+> (x) W(3): pinning the plus qubit halves cardinality.
        import numpy as np
        plus = np.array([1.0, 1.0]) / np.sqrt(2)
        w = w_state(3).to_vector()
        s = QState.from_vector(np.kron(plus, w))
        ext = extract_core(s)
        assert ext.core.cardinality == 3

    @given(st.integers(0, 100))
    def test_roundtrip_with_core_circuit(self, seed):
        """Core prep + local gates prepares the original state."""
        rng = np.random.default_rng(seed)
        n = int(rng.integers(2, 5))
        m = int(rng.integers(1, min(6, 1 << n) + 1))
        idx = rng.choice(1 << n, size=m, replace=False)
        amps = rng.standard_normal(m)
        s = QState(n, {int(i): float(a) for i, a in zip(idx, amps)})
        ext = extract_core(s)
        if ext.core is None:
            circuit = embed_core_circuit(ext, None)
        else:
            from repro.baselines.mflow import mflow_synthesize
            circuit = embed_core_circuit(ext, mflow_synthesize(ext.core))
        assert prepares_state(circuit, s)


class TestEmbedValidation:
    def test_core_circuit_for_separable_rejected(self):
        ext = extract_core(QState.ground(2))
        with pytest.raises(StateError):
            embed_core_circuit(ext, QCircuit(1))

    def test_width_mismatch_rejected(self):
        ext = extract_core(ghz_state(3))
        with pytest.raises(StateError):
            embed_core_circuit(ext, QCircuit(2))

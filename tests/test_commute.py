"""Tests for the commutation-aware cancellation pass (repro.opt.commute)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits.circuit import QCircuit
from repro.circuits.gates import CXGate, RYGate, RZGate, XGate
from repro.opt.commute import commuting_cancellation, gates_commute
from repro.sim.unitary import circuit_unitary, unitaries_equal


class TestGatesCommute:
    def test_disjoint_supports_commute(self):
        assert gates_commute(RYGate(target=0, theta=1.0),
                             CXGate.make(1, 2))

    def test_cx_shared_control_commute(self):
        assert gates_commute(CXGate.make(0, 1), CXGate.make(0, 2))

    def test_cx_shared_target_commute(self):
        assert gates_commute(CXGate.make(0, 2), CXGate.make(1, 2))

    def test_cx_chain_do_not_commute(self):
        assert not gates_commute(CXGate.make(0, 1), CXGate.make(1, 2))
        assert not gates_commute(CXGate.make(1, 2), CXGate.make(0, 1))

    def test_ry_on_cx_wire_does_not_commute(self):
        assert not gates_commute(RYGate(target=1, theta=0.5),
                                 CXGate.make(0, 1))
        assert not gates_commute(RYGate(target=0, theta=0.5),
                                 CXGate.make(0, 1))

    def test_rz_through_cx_control(self):
        assert gates_commute(RZGate(target=0, theta=0.5), CXGate.make(0, 1))
        assert not gates_commute(RZGate(target=1, theta=0.5),
                                 CXGate.make(0, 1))

    def test_x_through_cx_target(self):
        assert gates_commute(XGate(target=1), CXGate.make(0, 1))
        assert not gates_commute(XGate(target=0), CXGate.make(0, 1))

    def test_same_axis_rotations_commute(self):
        assert gates_commute(RYGate(target=0, theta=0.1),
                             RYGate(target=0, theta=0.2))

    def test_commutation_claims_hold_numerically(self):
        # every True claim must hold as a matrix identity
        samples = [
            (RYGate(target=0, theta=0.7), CXGate.make(1, 2)),
            (CXGate.make(0, 1), CXGate.make(0, 2)),
            (CXGate.make(0, 2), CXGate.make(1, 2)),
            (RZGate(target=0, theta=0.9), CXGate.make(0, 1)),
            (XGate(target=1), CXGate.make(0, 1)),
            (CXGate.make(0, 1), CXGate.make(1, 2)),
            (RYGate(target=1, theta=0.3), CXGate.make(0, 1)),
        ]
        from repro.sim.unitary import gate_unitary

        for a, b in samples:
            ua = gate_unitary(a, 3)
            ub = gate_unitary(b, 3)
            commutes = np.allclose(ua @ ub, ub @ ua, atol=1e-12)
            if gates_commute(a, b):
                assert commutes, f"{a} vs {b}: claimed commute, matrices say no"


class TestCommutingCancellation:
    def test_cancels_across_commuting_gate(self):
        qc = QCircuit(3).cx(0, 1).ry(2, 0.5).cx(0, 1)
        out = commuting_cancellation(qc)
        assert out.cnot_cost() == 0
        assert len(out) == 1

    def test_cancels_across_shared_control(self):
        qc = QCircuit(3).cx(0, 1).cx(0, 2).cx(0, 1)
        out = commuting_cancellation(qc)
        assert out.cnot_cost() == 1

    def test_blocked_by_noncommuting_gate(self):
        qc = QCircuit(3).cx(0, 1).cx(1, 2).cx(0, 1)
        out = commuting_cancellation(qc)
        assert out.cnot_cost() == 3  # CX(1,2) blocks the pair

    def test_x_pair_across_cx_target(self):
        qc = QCircuit(2).x(1).cx(0, 1).x(1)
        out = commuting_cancellation(qc)
        assert len(out) == 1
        assert out[0].name == "cx"

    def test_unitary_preserved_on_patterns(self):
        qc = QCircuit(3).cx(0, 1).ry(2, 0.5).cx(0, 2).cx(0, 1).x(2)
        out = commuting_cancellation(qc)
        assert unitaries_equal(circuit_unitary(qc), circuit_unitary(out))

    def test_empty_circuit(self):
        out = commuting_cancellation(QCircuit(2))
        assert len(out) == 0

    def test_window_limits_scan(self):
        qc = QCircuit(4).cx(0, 1)
        for _ in range(10):
            qc.ry(2, 0.1).ry(3, 0.1)
        qc.cx(0, 1)
        narrow = commuting_cancellation(qc, window=3)
        wide = commuting_cancellation(qc, window=64)
        assert narrow.cnot_cost() == 2
        assert wide.cnot_cost() == 0


@settings(max_examples=40, deadline=None)
@given(st.data())
def test_cancellation_preserves_unitary_random(data):
    n = data.draw(st.integers(min_value=2, max_value=4))
    qc = QCircuit(n)
    num_gates = data.draw(st.integers(min_value=0, max_value=14))
    for _ in range(num_gates):
        kind = data.draw(st.integers(min_value=0, max_value=3))
        if kind == 0:
            qc.ry(data.draw(st.integers(0, n - 1)),
                  data.draw(st.sampled_from([0.3, -0.7, 1.1])))
        elif kind == 1:
            qc.x(data.draw(st.integers(0, n - 1)))
        elif kind == 2:
            qc.rz(data.draw(st.integers(0, n - 1)),
                  data.draw(st.sampled_from([0.2, -0.9])))
        else:
            c = data.draw(st.integers(0, n - 1))
            t = data.draw(st.integers(0, n - 1))
            if c != t:
                qc.cx(c, t)
    out = commuting_cancellation(qc)
    assert out.cnot_cost() <= qc.cnot_cost()
    assert unitaries_equal(circuit_unitary(qc), circuit_unitary(out))

"""Unit tests for the A* engine (Algorithm 1) — including optimality
cross-checks against uninformed search."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.astar import SearchConfig, astar_search
from repro.core.canonical import CanonLevel
from repro.core.heuristic import zero_heuristic
from repro.exceptions import SearchBudgetExceeded
from repro.sim.verify import prepares_state
from repro.states.families import dicke_state, ghz_state, w_state
from repro.states.qstate import QState


class TestKnownOptima:
    def test_ground_costs_zero(self, small_search_config):
        res = astar_search(QState.ground(3), small_search_config)
        assert res.cnot_cost == 0
        assert res.optimal

    def test_basis_state_free(self, small_search_config):
        res = astar_search(QState.basis(3, 0b101), small_search_config)
        assert res.cnot_cost == 0

    def test_product_state_free(self, small_search_config):
        s = QState.uniform(3, [0b000, 0b001, 0b100, 0b101])
        res = astar_search(s, small_search_config)
        assert res.cnot_cost == 0
        assert prepares_state(res.circuit, s)

    @pytest.mark.parametrize("n,expected", [(2, 1), (3, 2), (4, 3)])
    def test_ghz_needs_n_minus_1(self, n, expected, small_search_config):
        res = astar_search(ghz_state(n), small_search_config)
        assert res.cnot_cost == expected
        assert prepares_state(res.circuit, ghz_state(n))

    def test_motivating_example_two_cnots(self, small_search_config):
        """Section III: exact synthesis finds the 2-CNOT circuit."""
        psi = QState.uniform(3, [0b000, 0b011, 0b101, 0b110])
        res = astar_search(psi, small_search_config)
        assert res.cnot_cost == 2
        assert prepares_state(res.circuit, psi)

    def test_w3_four_cnots(self, small_search_config):
        res = astar_search(w_state(3), small_search_config)
        assert res.cnot_cost == 4
        assert prepares_state(res.circuit, w_state(3))

    def test_dicke42_six_cnots(self):
        """Table IV headline: |D^2_4> in 6 CNOTs (manual design: 12)."""
        res = astar_search(dicke_state(4, 2),
                           SearchConfig(max_nodes=100_000, time_limit=60))
        assert res.cnot_cost == 6
        assert res.optimal
        assert prepares_state(res.circuit, dicke_state(4, 2))


class TestOptimalityCrossChecks:
    @pytest.mark.parametrize("seed", range(6))
    def test_astar_equals_dijkstra(self, seed):
        """With the heuristic off (Dijkstra) the cost must match — the
        heuristic only prunes, never changes the optimum."""
        rng = np.random.default_rng(seed)
        n = 3
        m = int(rng.integers(2, 5))
        idx = rng.choice(1 << n, size=m, replace=False)
        s = QState.uniform(n, [int(i) for i in idx])
        cfg = SearchConfig(max_nodes=50_000, time_limit=30)
        with_h = astar_search(s, cfg)
        without_h = astar_search(s, cfg, heuristic=zero_heuristic)
        assert with_h.cnot_cost == without_h.cnot_cost
        assert prepares_state(with_h.circuit, s)

    @pytest.mark.parametrize("seed", range(4))
    def test_canonical_levels_agree(self, seed):
        """Pruning at U2 or PU2 must not change the optimal cost."""
        rng = np.random.default_rng(100 + seed)
        n = 3
        idx = rng.choice(1 << n, size=3, replace=False)
        amps = rng.standard_normal(3)
        s = QState(n, {int(i): float(a) for i, a in zip(idx, amps)})
        costs = set()
        for level in (CanonLevel.NONE, CanonLevel.U2, CanonLevel.PU2):
            cfg = SearchConfig(max_nodes=100_000, time_limit=30,
                               canon_level=level)
            costs.add(astar_search(s, cfg).cnot_cost)
        assert len(costs) == 1

    def test_canonical_pruning_reduces_work(self):
        s = dicke_state(4, 1)
        none_cfg = SearchConfig(max_nodes=200_000, time_limit=60,
                                canon_level=CanonLevel.NONE)
        pu2_cfg = SearchConfig(max_nodes=200_000, time_limit=60,
                               canon_level=CanonLevel.PU2)
        res_none = astar_search(s, none_cfg)
        res_pu2 = astar_search(s, pu2_cfg)
        assert res_none.cnot_cost == res_pu2.cnot_cost
        assert res_pu2.stats.nodes_expanded < res_none.stats.nodes_expanded


class TestBudgets:
    def test_node_budget_raises(self):
        with pytest.raises(SearchBudgetExceeded) as err:
            astar_search(dicke_state(5, 2), SearchConfig(max_nodes=5))
        assert err.value.lower_bound >= 0

    def test_time_budget_raises(self):
        with pytest.raises(SearchBudgetExceeded):
            astar_search(dicke_state(6, 3),
                         SearchConfig(max_nodes=10**9, time_limit=0.2))

    def test_weighted_search_flagged_suboptimal(self, small_search_config):
        cfg = SearchConfig(max_nodes=50_000, time_limit=30, weight=2.0)
        res = astar_search(ghz_state(3), cfg)
        assert not res.optimal
        assert prepares_state(res.circuit, ghz_state(3))
        assert res.cnot_cost >= 2


class TestResultShape:
    def test_stats_populated(self, small_search_config):
        res = astar_search(w_state(3), small_search_config)
        assert res.stats.nodes_expanded > 0
        assert res.stats.nodes_generated >= res.stats.nodes_expanded
        assert res.stats.elapsed_seconds >= 0

    def test_moves_costs_sum_to_cost(self, small_search_config):
        res = astar_search(w_state(3), small_search_config)
        assert sum(m.cost for m in res.moves) == res.cnot_cost

    def test_circuit_cost_matches(self, small_search_config):
        res = astar_search(dicke_state(4, 2),
                           SearchConfig(max_nodes=100_000, time_limit=60))
        assert res.circuit.cnot_cost() == res.cnot_cost
        lowered = res.circuit.decompose()
        assert sum(1 for g in lowered if g.name == "cx") == res.cnot_cost

"""Unit + property tests for the peephole optimization passes."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.circuits.circuit import QCircuit
from repro.opt.passes import cancel_inverse_pairs, optimize_circuit
from repro.sim.unitary import circuit_unitary, unitaries_equal


class TestCancellation:
    def test_double_x_cancels(self):
        qc = QCircuit(1).x(0).x(0)
        assert len(optimize_circuit(qc)) == 0

    def test_double_cx_cancels(self):
        qc = QCircuit(2).cx(0, 1).cx(0, 1)
        assert len(optimize_circuit(qc)) == 0

    def test_different_polarity_does_not_cancel(self):
        qc = QCircuit(2).cx(0, 1).cx(0, 1, phase=0)
        assert len(optimize_circuit(qc)) == 2

    def test_blocked_cancellation(self):
        # An Ry on the target sits between the two CX: no cancellation.
        qc = QCircuit(2).cx(0, 1).ry(1, 0.5).cx(0, 1)
        assert len(optimize_circuit(qc)) == 3

    def test_interleaved_other_wire_does_not_block(self):
        qc = QCircuit(3).cx(0, 1).x(2).cx(0, 1)
        out = optimize_circuit(qc)
        assert [g.name for g in out] == ["x"]


class TestFusion:
    def test_ry_fuses(self):
        qc = QCircuit(1).ry(0, 0.3).ry(0, 0.4)
        out = optimize_circuit(qc)
        assert len(out) == 1
        assert out[0].theta == pytest.approx(0.7)

    def test_ry_cancels_to_identity(self):
        qc = QCircuit(1).ry(0, 0.3).ry(0, -0.3)
        assert len(optimize_circuit(qc)) == 0

    def test_cry_fuses_same_frame(self):
        qc = QCircuit(2).cry(0, 1, 0.3).cry(0, 1, 0.2)
        out = optimize_circuit(qc)
        assert len(out) == 1
        assert out[0].cnot_cost() == 2

    def test_cry_different_controls_not_fused(self):
        qc = QCircuit(3).cry(0, 2, 0.3).cry(1, 2, 0.2)
        assert len(optimize_circuit(qc)) == 2

    def test_identity_rotation_dropped(self):
        qc = QCircuit(1).ry(0, 0.0)
        assert len(optimize_circuit(qc)) == 0

    def test_controlled_2pi_not_dropped(self):
        """CRy(2pi) = controlled(-1): a relative phase, NOT identity."""
        qc = QCircuit(2).cry(0, 1, 2 * math.pi)
        assert len(optimize_circuit(qc)) == 1


class TestSemantics:
    @given(st.integers(0, 400))
    def test_unitary_preserved(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(1, 4))
        qc = QCircuit(n)
        for _ in range(int(rng.integers(1, 12))):
            kind = int(rng.integers(0, 3 if n == 1 else 4))
            q = int(rng.integers(0, n))
            if kind == 0:
                qc.x(q)
            elif kind == 1:
                qc.ry(q, float(rng.choice([0.0, 0.5, -0.5, 0.5])))
            elif kind == 2:
                qc.rz(q, float(rng.standard_normal()))
            else:
                t = int((q + 1) % n)
                qc.cx(q, t, phase=int(rng.integers(0, 2)))
        out = optimize_circuit(qc)
        assert len(out) <= len(qc)
        assert unitaries_equal(circuit_unitary(qc), circuit_unitary(out),
                               atol=1e-9)

    def test_single_pass_entry_point(self):
        qc = QCircuit(1).x(0).x(0)
        assert len(cancel_inverse_pairs(qc)) == 0

"""Tests for the IDA* search variant (repro.core.idastar)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.astar import SearchConfig, astar_search
from repro.core.heuristic import combined_heuristic, zero_heuristic
from repro.core.idastar import IDAStarConfig, idastar_search
from repro.exceptions import SearchBudgetExceeded
from repro.sim.verify import prepares_state
from repro.states.families import dicke_state, ghz_state, w_state
from repro.states.qstate import QState
from repro.states.random_states import random_uniform_state


class TestIDAStarBasics:
    def test_ground_state_needs_nothing(self):
        result = idastar_search(QState.ground(3))
        assert result.cnot_cost == 0
        assert result.optimal

    def test_product_state_is_free(self):
        result = idastar_search(QState.uniform(2, [0b00, 0b01]))
        assert result.cnot_cost == 0
        assert prepares_state(result.circuit,
                              QState.uniform(2, [0b00, 0b01]))

    def test_bell_state_one_cnot(self):
        bell = QState.uniform(2, [0b00, 0b11])
        result = idastar_search(bell)
        assert result.cnot_cost == 1
        assert prepares_state(result.circuit, bell)

    def test_ghz3_two_cnots(self):
        result = idastar_search(ghz_state(3))
        assert result.cnot_cost == 2
        assert prepares_state(result.circuit, ghz_state(3))

    def test_motivating_example_two_cnots(self):
        state = QState.uniform(3, [0b000, 0b011, 0b101, 0b110])
        result = idastar_search(state)
        assert result.cnot_cost == 2
        assert prepares_state(result.circuit, state)

    def test_dicke_4_2_six_cnots(self):
        result = idastar_search(dicke_state(4, 2))
        assert result.cnot_cost == 6
        assert prepares_state(result.circuit, dicke_state(4, 2))

    def test_budget_exceeded_raises(self):
        config = IDAStarConfig(search=SearchConfig(max_nodes=2))
        with pytest.raises(SearchBudgetExceeded):
            idastar_search(dicke_state(4, 2), config)

    def test_exhaustion_bound_uses_ceil_convention(self):
        # A fractional admissible heuristic makes the round bound
        # fractional; the reported proven bound must round up exactly like
        # A*'s ``ceil(f - 1e-9)`` (the old code truncated ``int(bound)``,
        # reporting 1 here instead of 2).
        from repro.states.analysis import num_entangled_qubits

        def half_h(state):
            return num_entangled_qubits(state) / 2.0  # 1.5 for |W_3>

        config = IDAStarConfig(search=SearchConfig(max_nodes=0))
        with pytest.raises(SearchBudgetExceeded) as excinfo:
            idastar_search(w_state(3), config, heuristic=half_h)
        assert excinfo.value.lower_bound == 2

    def test_transposition_persists_across_rounds(self):
        # the per-call table is no longer cleared at each deepening: later
        # rounds reuse subtrees the earlier rounds proved exhausted
        result = idastar_search(w_state(4))
        assert result.cnot_cost == 7
        assert result.stats.transposition_hits > 0
        assert result.stats.transposition_writes > 0

    def test_works_with_alternative_heuristics(self):
        # |W_3> = |D^1_3> costs 4 CNOTs (paper Table IV, "ours" column)
        state = w_state(3)
        for heuristic in (zero_heuristic, combined_heuristic):
            result = idastar_search(state, heuristic=heuristic)
            assert result.cnot_cost == 4
            assert prepares_state(result.circuit, state)

    def test_stats_populated(self):
        result = idastar_search(ghz_state(3))
        assert result.stats.nodes_expanded > 0
        assert result.stats.nodes_generated > 0


class TestIDAStarMatchesAStar:
    @pytest.mark.parametrize("seed", range(8))
    def test_same_optimum_random_uniform(self, seed):
        state = random_uniform_state(3, 4, seed=seed)
        a = astar_search(state, SearchConfig(max_nodes=80_000))
        b = idastar_search(state)
        assert b.cnot_cost == a.cnot_cost
        assert prepares_state(b.circuit, state)

    @pytest.mark.parametrize("n,m", [(3, 2), (3, 3), (4, 3)])
    def test_same_optimum_across_shapes(self, n, m):
        state = random_uniform_state(n, m, seed=n * 10 + m)
        a = astar_search(state, SearchConfig(max_nodes=120_000))
        b = idastar_search(state)
        assert b.cnot_cost == a.cnot_cost


@given(st.integers(min_value=0, max_value=40))
@settings(max_examples=12, deadline=None)
def test_idastar_circuit_verifies(seed):
    state = random_uniform_state(3, 3, seed=seed)
    result = idastar_search(state)
    assert prepares_state(result.circuit, state)
    assert result.cnot_cost == sum(m.cost for m in result.moves)

"""Unit tests for the benchmark state generators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import StateError
from repro.states.random_states import (
    benchmark_suite,
    random_dense_state,
    random_real_state,
    random_sparse_state,
    random_uniform_state,
)


class TestGenerators:
    def test_sparse_cardinality(self):
        s = random_sparse_state(6, seed=1)
        assert s.num_qubits == 6
        assert s.cardinality == 6
        assert s.is_sparse()

    def test_dense_cardinality(self):
        s = random_dense_state(6, seed=1)
        assert s.cardinality == 32
        assert not s.is_sparse()

    def test_uniform_amplitudes_equal(self):
        s = random_uniform_state(5, 7, seed=3)
        amps = {abs(a) for _, a in s.items()}
        assert len(amps) == 1

    def test_real_state_normalized(self):
        s = random_real_state(5, 7, seed=3)
        assert abs(s.norm() - 1.0) < 1e-9

    def test_determinism(self):
        assert random_sparse_state(8, seed=42) == random_sparse_state(8, seed=42)
        assert random_dense_state(6, seed=9) == random_dense_state(6, seed=9)

    def test_different_seeds_differ(self):
        assert random_sparse_state(8, seed=1) != random_sparse_state(8, seed=2)

    def test_invalid_cardinality(self):
        with pytest.raises(StateError):
            random_uniform_state(3, 0)
        with pytest.raises(StateError):
            random_uniform_state(3, 9)

    def test_large_cardinality_uses_complement_sampling(self):
        s = random_uniform_state(4, 15, seed=5)
        assert s.cardinality == 15

    def test_generator_instance_accepted(self):
        rng = np.random.default_rng(0)
        a = random_sparse_state(5, rng)
        b = random_sparse_state(5, rng)
        assert a != b  # stream advances


class TestBenchmarkSuite:
    def test_row_reproducibility(self):
        a = benchmark_suite(6, sparse=True, count=4)
        b = benchmark_suite(6, sparse=True, count=4)
        assert a == b

    def test_rows_independent(self):
        sparse = benchmark_suite(6, sparse=True, count=2)
        dense = benchmark_suite(6, sparse=False, count=2)
        assert sparse[0].cardinality == 6
        assert dense[0].cardinality == 32

"""Unit + property tests for GraySynth phase-polynomial synthesis."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.exceptions import CircuitError
from repro.opt.graysynth import (
    diagonal_to_phase_polynomial,
    graysynth_order,
    phase_polynomial_circuit,
)
from repro.opt.phase import phase_oracle_circuit
from repro.sim.equivalence import circuits_equivalent
from repro.sim.statevector import simulate_circuit
from repro.utils.bits import popcount


def _diagonal_of(circuit, n: int) -> np.ndarray:
    """Phases applied by a diagonal circuit, read off basis-state probes."""
    dim = 1 << n
    out = np.empty(dim, dtype=complex)
    for idx in range(dim):
        vec = np.zeros(dim, dtype=complex)
        vec[idx] = 1.0
        out[idx] = simulate_circuit(circuit, initial=vec)[idx]
    return out


class TestSpectrum:
    def test_single_parity_profile(self):
        # phases[x] = theta * (x_0 AND-parity) for parity P = 0b10 (qubit 0)
        theta = 0.8
        phases = np.array([theta * (popcount(0b10 & x) & 1)
                           for x in range(4)], dtype=float)
        terms = dict(diagonal_to_phase_polynomial(phases))
        assert set(terms) == {0b10}
        assert terms[0b10] == pytest.approx(theta)

    def test_constant_profile_is_global_phase(self):
        assert diagonal_to_phase_polynomial(np.full(8, 1.3)) == []

    def test_rejects_bad_length(self):
        with pytest.raises(CircuitError):
            diagonal_to_phase_polynomial(np.zeros(5))

    @given(st.integers(0, 100))
    def test_spectrum_roundtrip(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(1, 4))
        phases = rng.uniform(-np.pi, np.pi, size=1 << n)
        terms = diagonal_to_phase_polynomial(phases)
        rebuilt = np.zeros(1 << n)
        for x in range(1 << n):
            rebuilt[x] = sum(theta * (popcount(p & x) & 1)
                             for p, theta in terms)
        # equal up to one additive constant (global phase)
        deltas = phases - rebuilt
        assert np.allclose(deltas, deltas[0], atol=1e-9)


class TestOrdering:
    def test_gray_order_covers_all(self):
        parities = [0b101, 0b001, 0b111, 0b100]
        order = graysynth_order(parities)
        assert sorted(order) == sorted(set(parities))

    def test_starts_light(self):
        order = graysynth_order([0b111, 0b001, 0b110])
        assert order[0] == 0b001

    def test_empty(self):
        assert graysynth_order([]) == []


class TestSynthesis:
    def test_single_parity(self):
        circuit = phase_polynomial_circuit(3, [(0b110, 0.7)])
        # The circuit must be diagonal (linear map restored to identity)
        # and apply exactly the parity phase.
        diag = _diagonal_of(circuit, 3)
        for x in range(8):
            expected = np.exp(1j * 0.7 * (popcount(0b110 & x) & 1))
            assert diag[x] / diag[0] == pytest.approx(expected, abs=1e-9)

    def test_matches_multiplexor_oracle(self, rng):
        """GraySynth and the Rz-multiplexor oracle implement the same
        diagonal (up to global phase)."""
        n = 3
        phases = rng.uniform(-np.pi, np.pi, size=1 << n)
        oracle = phase_oracle_circuit(phases)
        terms = diagonal_to_phase_polynomial(phases)
        gray = phase_polynomial_circuit(n, terms)
        assert circuits_equivalent(oracle, gray, up_to_global_phase=True)

    @given(st.integers(0, 60))
    def test_random_phase_polynomials(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(2, 5))
        k = int(rng.integers(1, min(5, 1 << n)))
        parities = rng.choice(np.arange(1, 1 << n), size=k, replace=False)
        terms = [(int(p), float(rng.uniform(-np.pi, np.pi)))
                 for p in parities]
        circuit = phase_polynomial_circuit(n, terms)
        diag = _diagonal_of(circuit, n)
        assert np.allclose(np.abs(diag), 1.0, atol=1e-9)
        for x in range(1 << n):
            expected = sum(theta * (popcount(p & x) & 1)
                           for p, theta in terms)
            measured = np.angle(diag[x] / diag[0])
            assert np.exp(1j * measured) == pytest.approx(
                np.exp(1j * expected), abs=1e-7)

    def test_duplicate_parities_fused(self):
        a = phase_polynomial_circuit(2, [(0b01, 0.3), (0b01, 0.4)])
        b = phase_polynomial_circuit(2, [(0b01, 0.7)])
        assert circuits_equivalent(a, b)

    def test_zero_terms_empty(self):
        assert len(phase_polynomial_circuit(3, [])) == 0
        assert len(phase_polynomial_circuit(3, [(0b1, 0.0)])) == 0

    def test_parity_out_of_range(self):
        with pytest.raises(CircuitError):
            phase_polynomial_circuit(2, [(0b100, 0.5)])
        with pytest.raises(CircuitError):
            phase_polynomial_circuit(2, [(0, 0.5)])

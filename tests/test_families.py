"""Unit tests for named state families."""

from __future__ import annotations

import math

import pytest

from repro.exceptions import StateError
from repro.states.families import (
    dicke_cardinality,
    dicke_state,
    ghz_state,
    product_state,
    uniform_state,
    w_state,
)
from repro.utils.bits import popcount


class TestDicke:
    @pytest.mark.parametrize("n,k", [(3, 1), (4, 2), (5, 2), (6, 3)])
    def test_cardinality(self, n, k):
        s = dicke_state(n, k)
        assert s.cardinality == math.comb(n, k) == dicke_cardinality(n, k)

    def test_support_has_correct_weight(self):
        s = dicke_state(5, 2)
        assert all(popcount(i) == 2 for i in s.index_set)

    def test_uniform_amplitudes(self):
        s = dicke_state(4, 2)
        expected = 1.0 / math.sqrt(6)
        assert all(abs(s.amplitude(i) - expected) < 1e-12
                   for i in s.index_set)

    def test_extremes(self):
        assert dicke_state(3, 0).is_ground()
        assert dicke_state(3, 3).index_set == frozenset({0b111})

    def test_invalid_weight(self):
        with pytest.raises(StateError):
            dicke_state(3, 4)


class TestWGhz:
    def test_w_equals_dicke1(self):
        assert w_state(5) == dicke_state(5, 1)

    def test_ghz_support(self):
        s = ghz_state(4)
        assert s.index_set == frozenset({0, 15})
        assert abs(s.amplitude(0) - 1 / math.sqrt(2)) < 1e-12

    def test_ghz_needs_two_qubits(self):
        with pytest.raises(StateError):
            ghz_state(1)


class TestUniformProduct:
    def test_uniform_state(self):
        s = uniform_state(3, [1, 2, 4])
        assert s.cardinality == 3
        assert abs(s.amplitude(1) - 1 / math.sqrt(3)) < 1e-12

    def test_product_state(self):
        s = product_state("0110")
        assert s.index_set == frozenset({0b0110})
        assert s.num_qubits == 4

    def test_product_state_invalid(self):
        with pytest.raises(StateError):
            product_state("01a")
        with pytest.raises(StateError):
            product_state("")

"""Unit tests for unitary construction and circuit verification."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.circuits.circuit import QCircuit
from repro.circuits.gates import CXGate, RYGate
from repro.exceptions import VerificationError
from repro.sim.unitary import circuit_unitary, gate_unitary, unitaries_equal
from repro.sim.verify import (
    assert_prepares,
    fidelity,
    prepares_state,
    verification_report,
)
from repro.states.families import ghz_state
from repro.states.qstate import QState


class TestUnitary:
    def test_gate_unitary_cx(self):
        mat = gate_unitary(CXGate.make(0, 1), 2)
        expected = np.array([[1, 0, 0, 0],
                             [0, 1, 0, 0],
                             [0, 0, 0, 1],
                             [0, 0, 1, 0]], dtype=complex)
        assert np.allclose(mat, expected)

    def test_circuit_unitary_composition(self):
        qc = QCircuit(2).ry(0, 0.4).cx(0, 1)
        u = circuit_unitary(qc)
        u1 = gate_unitary(RYGate(target=0, theta=0.4), 2)
        u2 = gate_unitary(CXGate.make(0, 1), 2)
        assert np.allclose(u, u2 @ u1)

    def test_unitary_is_unitary(self):
        qc = QCircuit(3).ry(0, 0.3).cx(0, 2).rz(1, 0.9)
        u = circuit_unitary(qc)
        assert np.allclose(u @ u.conj().T, np.eye(8), atol=1e-9)

    def test_width_limit(self):
        with pytest.raises(ValueError):
            circuit_unitary(QCircuit(13))


class TestUnitariesEqual:
    def test_exact(self):
        u = circuit_unitary(QCircuit(1).ry(0, 0.5))
        assert unitaries_equal(u, u)

    def test_global_phase(self):
        u = circuit_unitary(QCircuit(1).ry(0, 0.5))
        assert not unitaries_equal(u, -u)
        assert unitaries_equal(u, np.exp(0.3j) * u, up_to_global_phase=True)

    def test_shape_mismatch(self):
        assert not unitaries_equal(np.eye(2), np.eye(4))

    def test_non_phase_scaling_rejected(self):
        u = np.eye(2, dtype=complex)
        assert not unitaries_equal(u, 2.0 * u, up_to_global_phase=True)


class TestVerify:
    def _ghz_circuit(self):
        return QCircuit(3).ry(0, math.pi / 2).cx(0, 1).cx(1, 2)

    def test_fidelity_one(self):
        assert fidelity(self._ghz_circuit(), ghz_state(3)) == \
            pytest.approx(1.0, abs=1e-12)

    def test_prepares_state(self):
        assert prepares_state(self._ghz_circuit(), ghz_state(3))
        assert not prepares_state(QCircuit(3), ghz_state(3))

    def test_global_sign_accepted(self):
        target = ghz_state(3).negate()
        assert prepares_state(self._ghz_circuit(), target)

    def test_assert_prepares_raises_with_report(self):
        with pytest.raises(VerificationError) as err:
            assert_prepares(QCircuit(3), ghz_state(3))
        assert "fidelity" in str(err.value)

    def test_report_mentions_amplitudes(self):
        report = verification_report(self._ghz_circuit(), ghz_state(3))
        assert "target" in report and "produced" in report

    def test_custom_initial_state(self):
        initial = QState.basis(2, 0b10)
        qc = QCircuit(2).cx(0, 1)
        assert prepares_state(qc, QState.basis(2, 0b11), initial=initial)

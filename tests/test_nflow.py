"""Unit tests for the n-flow (qubit reduction) baseline."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.baselines.nflow import (
    angle_tree_levels,
    multiplexor_angles_for_level,
    nflow_cnot_count,
    nflow_synthesize,
    qubit_reduction_prefix,
)
from repro.exceptions import SynthesisError
from repro.sim.verify import assert_prepares, prepares_state
from repro.states.families import dicke_state, ghz_state
from repro.states.qstate import QState
from repro.states.random_states import random_dense_state, random_real_state


class TestAngleTree:
    def test_levels_shapes(self):
        s = random_dense_state(3, seed=0)
        levels = angle_tree_levels(s)
        assert [len(lv) for lv in levels] == [1, 2, 4, 8]

    def test_root_is_norm(self):
        s = random_real_state(3, 5, seed=1)
        levels = angle_tree_levels(s)
        assert levels[0][0] == pytest.approx(1.0)

    def test_internal_levels_nonnegative(self):
        s = random_real_state(4, 9, seed=2)
        levels = angle_tree_levels(s)
        for lv in levels[:-1]:
            assert np.all(lv >= 0)

    def test_angles_zero_for_zero_branches(self):
        s = QState.basis(2, 0b00)
        levels = angle_tree_levels(s)
        assert np.allclose(multiplexor_angles_for_level(levels, 0), 0.0)


class TestSynthesize:
    @pytest.mark.parametrize("n", [2, 3, 4, 5])
    def test_exact_cost_2n_minus_2(self, n):
        """The baseline column of Tables IV/V: always 2**n - 2 CNOTs."""
        s = random_dense_state(n, seed=n)
        circuit = nflow_synthesize(s, prune=False)
        assert circuit.cnot_cost() == (1 << n) - 2 == nflow_cnot_count(n)

    @pytest.mark.parametrize("n", [2, 3, 4, 5])
    def test_prepares_dense_states(self, n):
        s = random_dense_state(n, seed=10 + n)
        assert_prepares(nflow_synthesize(s), s)

    def test_prepares_signed_states(self):
        s = random_real_state(4, 11, seed=3)
        assert_prepares(nflow_synthesize(s), s)

    def test_prune_never_costlier(self):
        s = dicke_state(4, 1)
        full = nflow_synthesize(s, prune=False)
        pruned = nflow_synthesize(s, prune=True)
        assert pruned.cnot_cost() <= full.cnot_cost()
        assert_prepares(pruned, s)

    def test_uniform_product_prunes_to_zero(self):
        """|+>^n: every multiplexor bank is constant, so the Walsh spectrum
        is a single spike and pruning removes every CNOT."""
        s = QState.uniform(4, list(range(16)))
        pruned = nflow_synthesize(s, prune=True)
        assert pruned.cnot_cost() == 0
        assert_prepares(pruned, s)

    def test_ghz_pruning_cannot_help(self):
        """GHZ's angle banks are single spikes at a nonzero pattern; their
        Walsh spectrum is dense, so qubit reduction keeps its full cost —
        exactly why the exact engine matters for such states."""
        s = ghz_state(5)
        pruned = nflow_synthesize(s, prune=True)
        assert pruned.cnot_cost() == nflow_cnot_count(5)
        assert_prepares(pruned, s)

    @given(st.integers(0, 40))
    def test_property_random_states(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(2, 5))
        m = int(rng.integers(1, (1 << n) + 1))
        s = random_real_state(n, m, seed=rng)
        circuit = nflow_synthesize(s)
        assert prepares_state(circuit, s)

    def test_cnot_count_validates(self):
        with pytest.raises(SynthesisError):
            nflow_cnot_count(0)


class TestQubitReductionPrefix:
    def test_core_plus_suffix_prepares(self):
        s = random_dense_state(5, seed=7)
        core, suffix = qubit_reduction_prefix(s, keep=3)
        assert core.num_qubits == 3
        # Prepare the core on wires 0..2 with the plain flow, then suffix.
        from repro.circuits.circuit import QCircuit
        circuit = QCircuit(5)
        circuit.compose(nflow_synthesize(core).embedded(5, [0, 1, 2]))
        circuit.compose(suffix)
        assert prepares_state(circuit, s)

    def test_keep_equals_n_is_noop(self):
        s = random_dense_state(3, seed=8)
        core, suffix = qubit_reduction_prefix(s, keep=3)
        assert len(suffix) == 0
        # the core is |amplitudes| of s (signs fold into the last level)
        assert core.num_qubits == 3

    def test_invalid_keep(self):
        s = random_dense_state(3, seed=9)
        with pytest.raises(SynthesisError):
            qubit_reduction_prefix(s, keep=0)
        with pytest.raises(SynthesisError):
            qubit_reduction_prefix(s, keep=4)

"""Unit + property tests for canonicalization (paper Sec. V-B).

The load-bearing property: the canonical key is *invariant* under free
transformations (X flips, separable-qubit rotations, qubit permutations) —
this is what makes A* pruning sound — and canonicalization never maps a
state outside its equivalence class.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.canonical import (
    CanonLevel,
    canonical_key,
    canonicalize,
    pin_separable_qubits,
    xflip_minimize,
)
from repro.states.analysis import num_entangled_qubits, separable_qubits
from repro.states.families import dicke_state, ghz_state, w_state
from repro.states.qstate import QState


def _random_state(rng, max_qubits=5, max_card=8):
    n = int(rng.integers(2, max_qubits + 1))
    m = int(rng.integers(1, min(max_card, 1 << n) + 1))
    idx = rng.choice(1 << n, size=m, replace=False)
    amps = rng.standard_normal(m)
    return QState(n, {int(i): float(a) for i, a in zip(idx, amps)})


class TestPinSeparable:
    def test_pins_plus_qubit(self):
        s = QState.uniform(2, [0b00, 0b01])  # |0>|+>
        pinned = pin_separable_qubits(s)
        assert pinned.is_ground()

    def test_pins_one_qubit(self):
        s = QState.basis(3, 0b010)
        assert pin_separable_qubits(s).is_ground()

    def test_keeps_entangled_core(self):
        s = ghz_state(3)
        assert pin_separable_qubits(s) == s

    def test_fixpoint_cascade(self):
        # |+>(x)Bell: pinning q0 leaves the Bell pair intact.
        s = QState.uniform(3, [0b000, 0b011, 0b100, 0b111])
        pinned = pin_separable_qubits(s)
        assert pinned.index_set == frozenset({0b000, 0b011})

    def test_norm_preserved(self):
        s = QState(2, {0b00: 0.6, 0b01: 0.8})
        assert abs(pin_separable_qubits(s).norm() - 1.0) < 1e-9


class TestXflipMinimize:
    def test_idempotent(self):
        s = QState.uniform(3, [0b101, 0b110])
        once = xflip_minimize(s)
        assert xflip_minimize(once) == once

    def test_translation_invariance(self):
        s = QState.uniform(3, [0b001, 0b010, 0b100])
        t = s.apply_x(0).apply_x(2)
        assert xflip_minimize(s) == xflip_minimize(t)


class TestCanonicalKey:
    @given(st.integers(0, 300))
    def test_invariance_under_flips_and_perms(self, seed):
        rng = np.random.default_rng(seed)
        s = _random_state(rng)
        n = s.num_qubits
        t = s
        for q in range(n):
            if rng.random() < 0.5:
                t = t.apply_x(q)
        t = t.permute(list(rng.permutation(n)))
        assert canonical_key(s, CanonLevel.PU2) == \
            canonical_key(t, CanonLevel.PU2)

    @given(st.integers(0, 300))
    def test_u2_invariance_under_flips(self, seed):
        rng = np.random.default_rng(seed)
        s = _random_state(rng)
        t = s
        for q in range(s.num_qubits):
            if rng.random() < 0.5:
                t = t.apply_x(q)
        assert canonical_key(s, CanonLevel.U2) == \
            canonical_key(t, CanonLevel.U2)

    def test_u2_not_permutation_invariant(self):
        # Bell on (0,1) vs Bell on (1,2): same PU2 class, different U2 key.
        a = QState.uniform(3, [0b000, 0b110])
        b = QState.uniform(3, [0b000, 0b011])
        assert canonical_key(a, CanonLevel.U2) != \
            canonical_key(b, CanonLevel.U2)
        assert canonical_key(a, CanonLevel.PU2) == \
            canonical_key(b, CanonLevel.PU2)

    def test_global_sign_invariance(self):
        s = ghz_state(3)
        assert canonical_key(s, CanonLevel.U2) == \
            canonical_key(s.negate(), CanonLevel.U2)

    def test_none_level_is_plain_key(self):
        s = ghz_state(2)
        assert canonical_key(s, CanonLevel.NONE) == s.key()

    def test_separable_rotation_invariance(self):
        # |0>|psi_core> vs |+>|psi_core> share a key (free Ry on q0).
        core = [0b000, 0b011]
        a = QState.uniform(3, core)
        b = QState.uniform(3, core + [0b100, 0b111])  # |+> (x) Bell
        assert canonical_key(a, CanonLevel.U2) == \
            canonical_key(b, CanonLevel.U2)

    def test_dicke_permutation_symmetry_fast_path(self):
        # All qubits of a Dicke state are interchangeable; the key must be
        # computed without exploding into n! candidates.
        key1 = canonical_key(dicke_state(6, 2), CanonLevel.PU2)
        key2 = canonical_key(dicke_state(6, 2).permute([3, 1, 4, 0, 5, 2]),
                             CanonLevel.PU2)
        assert key1 == key2


class TestCanonicalize:
    @given(st.integers(0, 200))
    def test_representative_in_class(self, seed):
        """canonicalize() must return a truly equivalent state: same number
        of entangled qubits and same amplitude multiset on the core."""
        rng = np.random.default_rng(seed)
        s = _random_state(rng)
        rep = canonicalize(s, CanonLevel.PU2)
        assert num_entangled_qubits(rep) == num_entangled_qubits(s)

    def test_idempotent(self):
        s = w_state(4)
        rep = canonicalize(s, CanonLevel.PU2)
        assert canonicalize(rep, CanonLevel.PU2) == rep

    def test_ground_class(self):
        for s in (QState.ground(3), QState.basis(3, 5),
                  QState.uniform(3, [0, 1])):
            assert canonicalize(s, CanonLevel.U2).is_ground()

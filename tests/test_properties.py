"""Cross-cutting property-based tests (hypothesis).

These encode the library's global invariants:

1. every synthesis flow produces a circuit that prepares its target;
2. the Table-I cost model equals the CX count after lowering;
3. the exact engine never exceeds any baseline;
4. canonical equivalence implies equal optimal cost.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.mflow import mflow_synthesize
from repro.baselines.nflow import nflow_synthesize
from repro.core.astar import SearchConfig, astar_search
from repro.qsp.workflow import prepare_state
from repro.sim.verify import prepares_state
from repro.states.qstate import QState


def _state_from_seed(seed: int, max_qubits: int = 4,
                     uniform: bool = False) -> QState:
    rng = np.random.default_rng(seed)
    n = int(rng.integers(2, max_qubits + 1))
    m = int(rng.integers(2, min(6, 1 << n) + 1))
    idx = rng.choice(1 << n, size=m, replace=False)
    if uniform:
        return QState.uniform(n, [int(i) for i in idx])
    amps = rng.standard_normal(m)
    return QState(n, {int(i): float(a) for i, a in zip(idx, amps)})


class TestEveryFlowPrepares:
    @given(st.integers(0, 10_000))
    def test_workflow(self, seed):
        s = _state_from_seed(seed)
        res = prepare_state(s)
        assert prepares_state(res.circuit, s)

    @given(st.integers(0, 10_000))
    def test_mflow(self, seed):
        s = _state_from_seed(seed)
        assert prepares_state(mflow_synthesize(s), s)

    @given(st.integers(0, 10_000))
    def test_nflow(self, seed):
        s = _state_from_seed(seed)
        assert prepares_state(nflow_synthesize(s), s)


class TestCostModel:
    @given(st.integers(0, 10_000))
    def test_cost_equals_lowered_cx_count(self, seed):
        s = _state_from_seed(seed)
        circuit = prepare_state(s).circuit
        lowered = circuit.decompose()
        assert sum(1 for g in lowered if g.name == "cx") == \
            circuit.cnot_cost()


class TestExactDominance:
    @settings(max_examples=15)
    @given(st.integers(0, 10_000))
    def test_exact_not_worse_than_baselines(self, seed):
        s = _state_from_seed(seed, max_qubits=3, uniform=True)
        cfg = SearchConfig(max_nodes=100_000, time_limit=30)
        exact = astar_search(s, cfg).cnot_cost
        assert exact <= mflow_synthesize(s).cnot_cost()
        assert exact <= nflow_synthesize(s).cnot_cost()


class TestEquivalenceCostInvariance:
    @settings(max_examples=15)
    @given(st.integers(0, 10_000))
    def test_free_transforms_preserve_optimum(self, seed):
        """X flips and permutations are free, so the optimal CNOT count of
        equivalent states must agree — the soundness condition behind the
        paper's state compression."""
        rng = np.random.default_rng(seed)
        s = _state_from_seed(seed, max_qubits=3, uniform=True)
        t = s
        for q in range(s.num_qubits):
            if rng.random() < 0.5:
                t = t.apply_x(q)
        t = t.permute(list(rng.permutation(s.num_qubits)))
        cfg = SearchConfig(max_nodes=100_000, time_limit=30)
        assert astar_search(s, cfg).cnot_cost == \
            astar_search(t, cfg).cnot_cost

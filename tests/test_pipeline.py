"""Tests for the post-synthesis optimization pipeline (repro.opt.pipeline)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.mflow import mflow_synthesize
from repro.baselines.nflow import nflow_synthesize
from repro.circuits.circuit import QCircuit
from repro.opt.pipeline import postoptimize
from repro.sim.unitary import circuit_unitary, unitaries_equal
from repro.sim.verify import prepares_state
from repro.states.families import dicke_state, ghz_state
from repro.states.random_states import random_uniform_state


class TestPostoptimize:
    def test_empty_circuit(self):
        report = postoptimize(QCircuit(2))
        assert report.cnots_before == 0
        assert report.cnots_after == 0
        assert report.percent_saved == 0.0

    def test_cancelable_pattern(self):
        qc = QCircuit(3).cx(0, 1).ry(2, 0.4).cx(0, 1)
        report = postoptimize(qc)
        assert report.cnots_after == 0
        assert report.cnots_saved == 2

    def test_never_increases_cnots(self):
        qc = mflow_synthesize(dicke_state(4, 2))
        report = postoptimize(qc)
        assert report.cnots_after <= report.cnots_before

    def test_preserves_unitary(self):
        qc = nflow_synthesize(random_uniform_state(3, 4, seed=2))
        report = postoptimize(qc)
        assert unitaries_equal(circuit_unitary(qc.decompose()),
                               circuit_unitary(report.circuit.decompose()))

    def test_optimized_baseline_still_prepares(self):
        state = dicke_state(4, 2)
        qc = mflow_synthesize(state)
        report = postoptimize(qc)
        assert prepares_state(report.circuit, state)

    def test_report_percentages(self):
        qc = QCircuit(2).cx(0, 1).cx(0, 1).cx(0, 1).cx(0, 1)
        report = postoptimize(qc)
        assert report.cnots_before == 4
        assert report.cnots_after == 0
        assert report.percent_saved == 100.0

    def test_resynthesize_flag(self):
        # a dense CNOT run that PMH can shrink
        qc = QCircuit(3).cx(0, 1).cx(1, 2).cx(0, 1).cx(1, 2).cx(0, 2)
        with_pmh = postoptimize(qc, resynthesize=True)
        without = postoptimize(qc, resynthesize=False)
        assert with_pmh.cnots_after <= without.cnots_after
        assert unitaries_equal(circuit_unitary(qc),
                               circuit_unitary(with_pmh.circuit))

    def test_cannot_recover_structural_gap(self):
        # the paper's point: peephole cleanup cannot turn an m-flow
        # circuit into the exact-synthesis circuit
        state = dicke_state(4, 2)
        report = postoptimize(mflow_synthesize(state))
        assert report.cnots_after > 6  # exact optimum is 6


@given(st.integers(min_value=0, max_value=30))
@settings(max_examples=15, deadline=None)
def test_pipeline_preserves_unitary_random(seed):
    state = random_uniform_state(3, 3, seed=seed)
    qc = mflow_synthesize(state).decompose()
    report = postoptimize(qc)
    assert unitaries_equal(circuit_unitary(qc),
                           circuit_unitary(report.circuit.decompose()))
    assert report.cnots_after <= report.cnots_before


@given(st.integers(min_value=0, max_value=15))
@settings(max_examples=10, deadline=None)
def test_pipeline_on_ghz_prepares(seed):
    n = 3 + (seed % 3)
    state = ghz_state(n)
    qc = nflow_synthesize(state)
    report = postoptimize(qc)
    assert prepares_state(report.circuit, state)

"""Unit tests for the beam engine and the ExactSynthesizer facade."""

from __future__ import annotations

import pytest

from repro.core.astar import SearchConfig
from repro.core.beam import BeamConfig, beam_search
from repro.core.exact import ExactConfig, ExactSynthesizer, synthesize_exact
from repro.exceptions import SearchBudgetExceeded
from repro.sim.verify import prepares_state
from repro.states.families import dicke_state, ghz_state, w_state
from repro.states.qstate import QState


class TestBeam:
    def test_ghz_found(self):
        res = beam_search(ghz_state(3), BeamConfig(width=16))
        assert prepares_state(res.circuit, ghz_state(3))
        assert res.cnot_cost >= 2
        assert not res.optimal

    def test_product_state_zero_cost(self):
        s = QState.uniform(2, [0b00, 0b01])
        res = beam_search(s, BeamConfig(width=4))
        assert res.cnot_cost == 0

    def test_always_feasible_with_tiny_width(self):
        """Even a width-1 beam must return a valid circuit (reduction
        completion)."""
        res = beam_search(dicke_state(4, 2), BeamConfig(width=1, max_depth=3))
        assert prepares_state(res.circuit, dicke_state(4, 2))

    def test_timeout_still_returns(self):
        res = beam_search(w_state(5), BeamConfig(width=64, time_limit=0.05))
        assert prepares_state(res.circuit, w_state(5))

    def test_wider_beam_not_worse(self):
        narrow = beam_search(w_state(4), BeamConfig(width=2))
        wide = beam_search(w_state(4), BeamConfig(width=64))
        assert wide.cnot_cost <= narrow.cnot_cost


class TestExactSynthesizer:
    def test_optimal_flag_true_on_success(self):
        result = ExactSynthesizer().synthesize(ghz_state(3))
        assert result.optimal
        assert result.cnot_cost == 2

    def test_verification_runs(self):
        # The facade verifies by simulation; a passing run implies the
        # circuit prepares the state.
        result = ExactSynthesizer().synthesize(dicke_state(3, 1))
        assert prepares_state(result.circuit, dicke_state(3, 1))

    def test_beam_fallback_on_tiny_budget(self):
        cfg = ExactConfig(search=SearchConfig(max_nodes=3),
                          beam=BeamConfig(width=32),
                          beam_fallback=True)
        result = ExactSynthesizer(cfg).synthesize(w_state(4))
        assert not result.optimal
        assert prepares_state(result.circuit, w_state(4))

    def test_no_fallback_raises(self):
        cfg = ExactConfig(search=SearchConfig(max_nodes=3),
                          beam_fallback=False, verify=False)
        with pytest.raises(SearchBudgetExceeded):
            ExactSynthesizer(cfg).synthesize(w_state(4))

    def test_convenience_wrapper(self):
        result = synthesize_exact(ghz_state(2), max_nodes=10_000)
        assert result.cnot_cost == 1

    def test_lower_bound(self):
        assert ExactSynthesizer().lower_bound(ghz_state(4)) == 2

"""Tests for the Schmidt-cut heuristic (repro.core.heuristic extension)."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.astar import SearchConfig, astar_search
from repro.core.heuristic import (
    combined_heuristic,
    entanglement_heuristic,
    schmidt_cut_heuristic,
    schmidt_rank,
)
from repro.states.families import dicke_state, ghz_state, w_state
from repro.states.qstate import QState
from repro.states.random_states import random_sparse_state, random_uniform_state


class TestSchmidtRank:
    def test_product_state_rank_one(self):
        state = QState.basis(3, 0b101)
        for cut in ([0], [1], [0, 1], [2]):
            assert schmidt_rank(state, cut) == 1

    def test_bell_pair_rank_two(self):
        bell = QState.uniform(2, [0b00, 0b11])
        assert schmidt_rank(bell, [0]) == 2

    def test_ghz_rank_two_any_cut(self):
        state = ghz_state(4)
        assert schmidt_rank(state, [0]) == 2
        assert schmidt_rank(state, [0, 1]) == 2
        assert schmidt_rank(state, [1, 3]) == 2

    def test_w_state_rank_two(self):
        # W states have Schmidt rank 2 across every cut
        state = w_state(4)
        assert schmidt_rank(state, [0, 1]) == 2

    def test_dicke_rank(self):
        # |D^2_4> across a 2|2 cut: patterns 11,10,01,00 vs 00,01,10,11
        state = dicke_state(4, 2)
        assert schmidt_rank(state, [0, 1]) == 3

    def test_empty_and_full_cut_rank_one(self):
        state = ghz_state(3)
        assert schmidt_rank(state, []) == 1
        assert schmidt_rank(state, [0, 1, 2]) == 1

    def test_out_of_range_cut(self):
        with pytest.raises(ValueError):
            schmidt_rank(ghz_state(2), [5])

    def test_rank_bounded_by_cardinality(self):
        state = random_uniform_state(5, 6, seed=3)
        for cut in ([0, 1], [2, 3], [0, 4]):
            assert schmidt_rank(state, cut) <= state.cardinality

    def test_rank_symmetric_under_complement(self):
        state = random_uniform_state(4, 5, seed=7)
        assert schmidt_rank(state, [0, 1]) == schmidt_rank(state, [2, 3])


class TestSchmidtCutHeuristic:
    def test_zero_for_product_states(self):
        assert schmidt_cut_heuristic(QState.basis(3, 0b010)) == 0.0
        assert schmidt_cut_heuristic(QState.ground(4)) == 0.0

    def test_ghz_gives_one(self):
        # every cut has rank 2 -> ceil(log2 2) = 1
        assert schmidt_cut_heuristic(ghz_state(4)) == 1.0

    def test_single_qubit_state(self):
        assert schmidt_cut_heuristic(QState.uniform(1, [0, 1])) == 0.0

    def test_high_rank_state_beats_entanglement_bound(self):
        # 4 Bell pairs in parallel: rank across the interleaved cut is
        # 2**4 = 16 -> bound 4; entangled-qubit bound ceil(8/2) = 4 too.
        # Use a state where cut bound exceeds: dense random on 4 qubits
        state = random_uniform_state(4, 8, seed=5)
        h_cut = schmidt_cut_heuristic(state)
        assert h_cut >= 1.0

    def test_admissible_against_exact_optimum(self):
        # the heuristic must never exceed the proven optimal CNOT count
        for seed in range(6):
            state = random_uniform_state(3, 4, seed=seed)
            optimum = astar_search(state,
                                   SearchConfig(max_nodes=60_000)).cnot_cost
            assert schmidt_cut_heuristic(state) <= optimum
            assert combined_heuristic(state) <= optimum

    def test_combined_dominates_components(self):
        for seed in range(4):
            state = random_sparse_state(4, seed=seed)
            h_combined = combined_heuristic(state)
            assert h_combined >= entanglement_heuristic(state)
            assert h_combined >= schmidt_cut_heuristic(state)


class TestSearchWithCombinedHeuristic:
    def test_same_optimum_as_default(self):
        for seed in range(5):
            state = random_uniform_state(3, 4, seed=100 + seed)
            base = astar_search(state, SearchConfig(max_nodes=60_000))
            combo = astar_search(state, SearchConfig(max_nodes=60_000),
                                 heuristic=combined_heuristic)
            assert combo.cnot_cost == base.cnot_cost
            assert combo.optimal

    def test_dicke_optimum_preserved(self):
        base = astar_search(dicke_state(4, 2), SearchConfig(max_nodes=80_000))
        combo = astar_search(dicke_state(4, 2),
                             SearchConfig(max_nodes=80_000),
                             heuristic=combined_heuristic)
        assert combo.cnot_cost == base.cnot_cost == 6

    def test_never_expands_more_nodes_when_dominating(self):
        # a pointwise-larger admissible heuristic cannot expand more
        # strictly-smaller-f nodes; allow slack for tie-breaking order
        state = random_uniform_state(4, 4, seed=11)
        base = astar_search(state, SearchConfig(max_nodes=120_000))
        combo = astar_search(state, SearchConfig(max_nodes=120_000),
                             heuristic=combined_heuristic)
        assert combo.stats.nodes_expanded <= 2 * base.stats.nodes_expanded


@given(st.integers(min_value=2, max_value=5), st.integers(min_value=0,
                                                          max_value=50))
@settings(max_examples=25, deadline=None)
def test_rank_log_bound_is_integer_and_small(n, seed):
    state = random_uniform_state(n, min(n + 1, 1 << n), seed=seed)
    h = schmidt_cut_heuristic(state)
    assert h == int(h)
    # rank <= cardinality <= n + 1, so the bound is at most log2(n+1)
    assert h <= math.ceil(math.log2(state.cardinality)) or h == 0.0


@given(st.integers(min_value=0, max_value=30))
@settings(max_examples=20, deadline=None)
def test_cut_heuristic_invariant_under_x(seed):
    """Free X gates are local unitaries: the bound must not change."""
    state = random_uniform_state(4, 5, seed=seed)
    flipped = state.apply_x(seed % 4)
    assert schmidt_cut_heuristic(state) == schmidt_cut_heuristic(flipped)

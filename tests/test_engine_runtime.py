"""Tests for the stepwise engine runtime + interleaved portfolio scheduler.

Covers the PR's acceptance surface:

* differential identity — a run driven in slices of any size matches the
  one-shot function node-for-node (costs, expansions, generated nodes) on
  the Dicke family, for all three engines;
* stats finalization on every exit path (solved, budget, proven,
  cancelled, deadline);
* incumbent injection soundness (cross-lane branch-and-bound never
  changes the returned cost; proving an injected optimum yields PROVEN);
* the interleaved scheduler: cost identity with the sequential portfolio,
  first-proven-optimal cancellation, deadline exits returning the best
  feasible circuit;
* adaptive lane ordering from persisted per-lane win statistics;
* transposition-entry aging across snapshot generations.
"""

from __future__ import annotations

import pytest

from repro.core.astar import AStarRun, SearchConfig, astar_search
from repro.core.beam import BeamConfig, BeamRun, beam_search
from repro.core.engine import RunStatus
from repro.core.idastar import IDAStarConfig, IDAStarRun, idastar_search
from repro.core.memory import SearchMemory, TranspositionTable
from repro.exceptions import SearchBudgetExceeded
from repro.service.persistence import load_memory_snapshot, \
    save_memory_snapshot
from repro.service.portfolio import (
    EngineSpec,
    default_portfolio,
    interleaved_portfolio,
    order_specs,
    run_portfolio,
)
from repro.sim.verify import prepares_state
from repro.states.families import dicke_state, ghz_state, w_state

DICKE_FAMILY = [(3, 1), (4, 1), (4, 2), (5, 1)]
SLICE_SIZES = (1, 7, 1000)


def _signature(result):
    return (result.cnot_cost, result.optimal,
            result.stats.nodes_expanded, result.stats.nodes_generated,
            result.stats.nodes_pruned)


def _drive(run, slice_size):
    while not run.step(slice_size).terminal:
        pass
    return run


class TestDifferentialStepping:
    """Stepped-and-resumed runs match one-shot runs node-for-node."""

    @pytest.mark.parametrize("n,k", DICKE_FAMILY)
    def test_astar_any_slice_size(self, n, k):
        state = dicke_state(n, k)
        one_shot = astar_search(state, SearchConfig())
        for slice_size in SLICE_SIZES:
            run = _drive(AStarRun(state, SearchConfig()), slice_size)
            assert run.status is RunStatus.SOLVED
            assert _signature(run.result()) == _signature(one_shot)

    # IDA* exhausts its default budget on D(5,1) (W-state plateaus are
    # its worst case cold) — differential-test the rows it solves
    @pytest.mark.parametrize("n,k", DICKE_FAMILY[:3])
    def test_idastar_any_slice_size(self, n, k):
        state = dicke_state(n, k)
        one_shot = idastar_search(state)
        for slice_size in SLICE_SIZES:
            run = _drive(IDAStarRun(state), slice_size)
            assert run.status is RunStatus.SOLVED
            assert _signature(run.result()) == _signature(one_shot)
            assert run.result().stats.transposition_writes == \
                one_shot.stats.transposition_writes

    @pytest.mark.parametrize("n,k", DICKE_FAMILY)
    def test_beam_any_slice_size(self, n, k):
        state = dicke_state(n, k)
        one_shot = beam_search(state)
        for slice_size in SLICE_SIZES:
            run = _drive(BeamRun(state), slice_size)
            assert run.status is RunStatus.SOLVED
            assert _signature(run.result()) == _signature(one_shot)

    def test_budget_exhaustion_matches_one_shot(self):
        state = dicke_state(5, 2)
        config = SearchConfig(max_nodes=300)
        with pytest.raises(SearchBudgetExceeded) as excinfo:
            astar_search(state, config)
        run = _drive(AStarRun(state, config), 17)
        assert run.status is RunStatus.EXHAUSTED
        assert isinstance(run.error, SearchBudgetExceeded)
        assert run.error.lower_bound == excinfo.value.lower_bound
        assert run.error.stats.nodes_expanded == \
            excinfo.value.stats.nodes_expanded

    def test_one_shot_wrappers_still_raise(self):
        with pytest.raises(SearchBudgetExceeded):
            idastar_search(dicke_state(5, 2), IDAStarConfig(
                search=SearchConfig(max_nodes=50)))


class TestStatsFinalization:
    """SearchStats must be finalized on *every* exit path."""

    def _assert_finalized(self, stats):
        assert stats.elapsed_seconds > 0.0
        # the canonical caches were alive: their counters were flushed
        assert stats.canon_cache_hits + stats.canon_cache_misses > 0

    def test_normal_exit(self):
        result = astar_search(dicke_state(4, 2), SearchConfig())
        self._assert_finalized(result.stats)

    def test_cancelled_mid_run(self):
        for run in (AStarRun(dicke_state(5, 2), SearchConfig()),
                    IDAStarRun(dicke_state(4, 2)),
                    BeamRun(dicke_state(5, 2))):
            assert run.step(20) is RunStatus.RUNNING
            run.cancel()
            assert run.status is RunStatus.CANCELLED
            self._assert_finalized(run.stats)

    def test_cancel_before_first_step(self):
        run = AStarRun(dicke_state(4, 2), SearchConfig())
        run.cancel()
        assert run.status is RunStatus.CANCELLED
        assert run.stats.elapsed_seconds > 0.0

    def test_budget_exit(self):
        run = _drive(AStarRun(dicke_state(5, 2),
                              SearchConfig(max_nodes=100)), 50)
        assert run.status is RunStatus.EXHAUSTED
        self._assert_finalized(run.stats)

    def test_proven_exit(self):
        optimal = astar_search(w_state(4)).cnot_cost
        run = AStarRun(w_state(4), SearchConfig())
        run.inject_incumbent(optimal)
        _drive(run, 64)
        assert run.status is RunStatus.PROVEN
        self._assert_finalized(run.stats)

    def test_deadline_exit_attempts_carry_final_stats(self):
        outcome = interleaved_portfolio(
            dicke_state(6, 3), SearchConfig(max_nodes=500_000),
            deadline_ms=300)
        assert outcome.deadline_expired
        assert outcome.attempts
        for attempt in outcome.attempts:
            assert attempt["status"] == "cancelled"
            assert attempt["nodes_expanded"] >= 0


class TestIncumbentInjection:
    """Cross-lane incumbent sharing is sound: costs never change."""

    def test_astar_injection_never_changes_cost(self):
        for state in (dicke_state(4, 2), w_state(4), ghz_state(4)):
            baseline = astar_search(state, SearchConfig())
            run = AStarRun(state, SearchConfig())
            run.inject_incumbent(baseline.cnot_cost + 2)  # loose bound
            result = _drive(run, 25).result()
            assert result.cnot_cost == baseline.cnot_cost
            assert result.optimal
            # pruning only ever shrinks the search
            assert result.stats.nodes_expanded <= \
                baseline.stats.nodes_expanded
            assert prepares_state(result.circuit, state)

    def test_astar_proves_injected_optimum(self):
        optimal = astar_search(dicke_state(4, 2)).cnot_cost
        run = AStarRun(dicke_state(4, 2), SearchConfig())
        run.inject_incumbent(optimal)
        _drive(run, 64)
        assert run.status is RunStatus.PROVEN
        assert run.incumbent_bound == optimal
        assert run.error.lower_bound == optimal

    def test_idastar_injection_never_changes_cost(self):
        for state in (dicke_state(4, 2), w_state(4)):
            baseline = idastar_search(state)
            run = IDAStarRun(state)
            run.inject_incumbent(baseline.cnot_cost + 2)
            result = _drive(run, 100).result()
            assert result.cnot_cost == baseline.cnot_cost
            assert result.optimal

    def test_idastar_proves_injected_optimum(self):
        optimal = idastar_search(w_state(4)).cnot_cost
        run = IDAStarRun(w_state(4))
        run.inject_incumbent(optimal)
        _drive(run, 100)
        assert run.status is RunStatus.PROVEN

    def test_tighter_injection_wins(self):
        run = AStarRun(dicke_state(4, 2), SearchConfig())
        run.inject_incumbent(9)
        run.inject_incumbent(7)
        run.inject_incumbent(11)  # looser: ignored
        assert run.incumbent_bound == 7

    def test_beam_injection_keeps_feasibility(self):
        baseline = beam_search(dicke_state(4, 2))
        run = BeamRun(dicke_state(4, 2))
        run.inject_incumbent(baseline.cnot_cost + 1)
        result = _drive(run, 50).result()
        assert result.cnot_cost <= baseline.cnot_cost
        assert prepares_state(result.circuit, dicke_state(4, 2))


class TestInterleavedPortfolio:
    def test_cost_identity_with_sequential(self):
        for state in (dicke_state(4, 1), dicke_state(4, 2), w_state(4),
                      ghz_state(4)):
            sequential = run_portfolio(state, SearchConfig())
            interleaved = interleaved_portfolio(state, SearchConfig())
            assert interleaved.solved and sequential.solved
            assert interleaved.result.cnot_cost == \
                sequential.result.cnot_cost
            assert interleaved.result.optimal == sequential.result.optimal
            assert prepares_state(interleaved.result.circuit, state)

    def test_first_proven_optimal_cancels_rest(self):
        outcome = interleaved_portfolio(dicke_state(4, 2), SearchConfig())
        assert outcome.solved and outcome.result.optimal
        statuses = {a["name"]: a["status"] for a in outcome.attempts}
        # some lane concluded with a proof; at least one straggler was
        # cancelled rather than run to completion
        assert any(s in ("solved", "proven") for s in statuses.values())
        assert any(s == "cancelled" for s in statuses.values())

    def test_incumbent_proven_optimal_upgrade(self):
        """A PROVEN lane upgrades the feasible incumbent to optimal."""
        outcome = interleaved_portfolio(dicke_state(4, 2), SearchConfig())
        proven = [a for a in outcome.attempts if a["status"] == "proven"]
        if proven:  # beam found the optimum, an exact lane proved it
            assert outcome.result.optimal

    def test_deadline_returns_best_feasible(self):
        state = dicke_state(6, 3)
        outcome = interleaved_portfolio(
            state, SearchConfig(max_nodes=500_000), deadline_ms=500)
        assert outcome.deadline_expired
        assert outcome.solved  # beam frontier flush guarantees a circuit
        assert not outcome.result.optimal
        assert prepares_state(outcome.result.circuit, state)

    def test_deadline_unsolved_reports_lower_bound(self):
        # exact lanes only (no anytime beam): nothing feasible under a
        # tiny deadline, so the outcome is honest about it
        specs = (EngineSpec("astar", "astar"),
                 EngineSpec("idastar", "idastar"))
        outcome = interleaved_portfolio(
            dicke_state(6, 3), SearchConfig(max_nodes=500_000),
            specs=specs, deadline_ms=200)
        assert outcome.deadline_expired
        assert not outcome.solved

    def test_shared_memory_costs_identical(self):
        memory = SearchMemory()
        warm_state = dicke_state(4, 2)
        cold = interleaved_portfolio(warm_state, SearchConfig())
        warm1 = interleaved_portfolio(warm_state, SearchConfig(),
                                      memory=memory)
        warm2 = interleaved_portfolio(warm_state, SearchConfig(),
                                      memory=memory)
        assert cold.result.cnot_cost == warm1.result.cnot_cost == \
            warm2.result.cnot_cost


class TestAdaptiveOrdering:
    def test_counters_accumulate(self):
        memory = SearchMemory()
        run_portfolio(w_state(4), SearchConfig(), memory=memory)
        assert memory.lane_stats
        total_runs = sum(r["runs"] for r in memory.lane_stats.values())
        wins = sum(r["wins"] for r in memory.lane_stats.values())
        assert total_runs >= 2 and wins == 1

    def test_order_by_win_rate_with_deterministic_tiebreak(self):
        memory = SearchMemory()
        memory.record_lane_outcome("idastar", won=True, feasible=True)
        memory.record_lane_outcome("beam", feasible=True)
        memory.record_lane_outcome("astar", feasible=True)
        ordered = order_specs(default_portfolio(), memory)
        names = [spec.name for spec in ordered]
        # smoothed rates: idastar 2/3, astar-w2 (never ran) 1/2 — the
        # exploration prior — then the ran-and-lost lanes at 1/3 in
        # their original relative order
        assert names == ["idastar", "astar-w2", "beam", "astar"]
        # deterministic: same history, same order
        assert order_specs(default_portfolio(), memory) == ordered

    def test_losing_leader_gets_challenged(self):
        # raw wins/runs would freeze the order after one early win;
        # smoothing lets an unexplored lane overtake a mediocre leader
        memory = SearchMemory()
        memory.record_lane_outcome("astar", won=True, feasible=True)
        for _ in range(5):
            memory.record_lane_outcome("astar", feasible=True)
        ordered = order_specs(default_portfolio(), memory)
        # astar: 2/8 = 0.25 < never-run lanes at 0.5
        assert ordered[-1].name == "astar"

    def test_no_history_keeps_caller_order(self):
        specs = default_portfolio()
        assert order_specs(specs, None) == tuple(specs)
        assert order_specs(specs, SearchMemory()) == tuple(specs)

    def test_lane_stats_persist_in_snapshot(self, tmp_path):
        memory = SearchMemory()
        run_portfolio(w_state(4), SearchConfig(), memory=memory)
        path = tmp_path / "lanes.qspmem.json"
        save_memory_snapshot(memory, path)
        restored = load_memory_snapshot(path)
        assert restored.lane_stats == memory.lane_stats
        # the restored history orders lanes exactly like the live one
        assert order_specs(default_portfolio(), restored) == \
            order_specs(default_portfolio(), memory)

    def test_interleaved_records_outcomes(self):
        memory = SearchMemory()
        interleaved_portfolio(w_state(4), SearchConfig(), memory=memory)
        assert sum(r["runs"] for r in memory.lane_stats.values()) == \
            len(default_portfolio())

    def test_sequential_order_keeps_anytime_lanes_first(self):
        # the sequential line's incumbent threading only works
        # front-to-back: however many wins the A* lane racks up, a beam
        # (anytime) lane must stay ahead of it, or a budget-bound row
        # would lose the incumbent that lets A* prove its optimum
        memory = SearchMemory()
        for _ in range(5):
            memory.record_lane_outcome("astar", won=True, feasible=True)
        memory.record_lane_outcome("beam", feasible=True)
        sequential = order_specs(default_portfolio(), memory,
                                 anytime_first=True)
        assert sequential[0].engine == "beam"
        assert [s.name for s in sequential[1:]] == \
            ["astar", "idastar", "astar-w2"]
        # the interleaved scheduler injects incumbents live, so its
        # ordering is unconstrained: the winning lane moves up front
        interleaved = order_specs(default_portfolio(), memory)
        assert interleaved[0].name == "astar"

    def test_sequential_reorder_keeps_costs_and_proofs(self):
        # with astar-favoring history, the reordered sequential line
        # must return the same cost and proof as the fresh one
        memory = SearchMemory()
        for _ in range(5):
            memory.record_lane_outcome("astar", won=True, feasible=True)
        fresh = run_portfolio(dicke_state(4, 2), SearchConfig())
        reordered = run_portfolio(dicke_state(4, 2), SearchConfig(),
                                  memory=memory)
        assert reordered.result.cnot_cost == fresh.result.cnot_cost
        assert reordered.result.optimal == fresh.result.optimal


class TestBatchDeadlines:
    def test_per_request_deadline_honored_in_batch(self, tmp_path):
        import json
        import time
        from repro.service.server import ServiceConfig, SynthesisService

        requests = [
            {"id": "fast", "dicke": [4, 2]},
            {"id": "bounded", "dicke": [6, 3], "deadline_ms": 300},
        ]
        in_path = tmp_path / "in.jsonl"
        out_path = tmp_path / "out.jsonl"
        in_path.write_text(
            "".join(json.dumps(r) + "\n" for r in requests),
            encoding="utf-8")
        service = SynthesisService(ServiceConfig(
            search=SearchConfig(max_nodes=500_000)))
        start = time.perf_counter()
        service.run_batch_file(in_path, out_path, workers=1)
        elapsed = time.perf_counter() - start
        rows = {json.loads(line)["id"]: json.loads(line)
                for line in out_path.read_text().splitlines()}
        assert rows["fast"]["ok"] and rows["fast"]["optimal"]
        assert rows["bounded"]["ok"]
        assert rows["bounded"]["deadline_expired"]
        assert not rows["bounded"]["optimal"]
        # the bounded row did not run its multi-minute search budget
        assert elapsed < 60.0

    def test_deadline_duplicates_do_not_share_truncated_results(
            self, tmp_path):
        import json
        from repro.service.server import ServiceConfig, SynthesisService

        requests = [
            {"id": "hurried", "dicke": [4, 2], "deadline_ms": 5000},
            {"id": "unhurried", "dicke": [4, 2]},
        ]
        in_path = tmp_path / "in.jsonl"
        out_path = tmp_path / "out.jsonl"
        in_path.write_text(
            "".join(json.dumps(r) + "\n" for r in requests),
            encoding="utf-8")
        service = SynthesisService(ServiceConfig())
        service.run_batch_file(in_path, out_path, workers=1)
        rows = {json.loads(line)["id"]: json.loads(line)
                for line in out_path.read_text().splitlines()}
        # different effective deadlines -> separate dedup groups: the
        # unhurried duplicate ran its own full search, it was not served
        # the hurried row's (potentially truncated) result
        assert not rows["unhurried"]["cached"]
        assert rows["unhurried"]["optimal"]
        assert rows["hurried"]["ok"]


class TestTranspositionAging:
    def test_record_stamps_current_generation(self):
        table = TranspositionTable(cap=100)
        table.record("a", 3.0, frozenset())
        table.bump_generation()
        table.record("b", 3.0, frozenset())
        assert table.data_gen["a"] == 0
        assert table.data_gen["b"] == 1

    def test_retouch_refreshes_stamp(self):
        table = TranspositionTable(cap=100)
        table.record("a", 3.0, frozenset())
        table.bump_generation()
        table.record("a", 3.0, frozenset())  # re-proven: young again
        assert table.data_gen["a"] == 1

    def test_eviction_prefers_stale_entries(self):
        table = TranspositionTable(cap=8)
        for i in range(4):
            table.record(f"old{i}", 5.0, frozenset())
        for _ in range(3):
            table.bump_generation()
        for i in range(4):
            table.record(f"new{i}", 5.0, frozenset())
        table.record("trigger", 5.0, frozenset())  # forces a sweep
        # equal budgets: the aged entries go first
        assert all(f"new{i}" in table.data for i in range(4))
        assert sum(f"old{i}" in table.data for i in range(4)) < 4

    def test_large_stale_budget_still_beats_fresh_tiny(self):
        table = TranspositionTable(cap=4)
        table.record("stale-large", 50.0, frozenset())
        for _ in range(3):
            table.bump_generation()
        for i in range(3):
            table.record(f"fresh-tiny{i}", 1.0, frozenset())
        table.record("trigger", 30.0, frozenset())
        # 50 - 3 = 47 still outranks 1 - 0 = 1
        assert "stale-large" in table.data

    def test_generation_survives_snapshot_roundtrip(self, tmp_path):
        memory = SearchMemory()
        idastar_search(dicke_state(4, 2), memory=memory)
        generation_before = memory.transposition.generation
        path = tmp_path / "aging.qspmem.json"
        save_memory_snapshot(memory, path)
        # a full save is the epoch boundary: the live table aged
        assert memory.transposition.generation == generation_before + 1
        restored = load_memory_snapshot(path)
        assert restored.transposition.generation == generation_before
        assert restored.transposition.data_gen == \
            {k: generation_before for k in restored.transposition.data}

    def test_conditional_entries_age_too(self):
        table = TranspositionTable(cap=100)
        table.record("c", 2.0, frozenset({"p"}))
        assert table.cond_gen["c"] == 0
        table.bump_generation()
        table.record("c", 3.0, frozenset({"p"}))
        assert table.cond_gen["c"] == 1

    def test_lookup_hit_refreshes_stamp(self):
        # a hit prevents the re-probe that would re-record, so the hit
        # itself must keep the serving entry young
        table = TranspositionTable(cap=100)
        table.record("hot", 5.0, frozenset())
        table.bump_generation()
        table.bump_generation()
        assert table.lookup("hot", 4.0, set()) is not None
        assert table.data_gen["hot"] == 2
        assert table.exhausted_budget("hot") == 5.0
        table.bump_generation()
        table.exhausted_budget("hot")  # bnb consult also refreshes
        assert table.data_gen["hot"] == 3

    def test_merge_with_older_stamp_keeps_entry_fresh(self):
        # a batch worker seeded pre-bump replays an entry the parent
        # just re-proved: the fresher stamp must win (max-only refresh)
        table = TranspositionTable(cap=100)
        table.bump_generation()
        table.bump_generation()
        table.record("k", 5.0, frozenset())            # fresh: gen 2
        table.record("k", 5.0, frozenset(), generation=0)  # stale replay
        assert table.data_gen["k"] == 2

    def test_v1_snapshot_still_loads(self, tmp_path):
        # v2 is a lossless superset of v1: a deployed service's warm
        # snapshot must survive the upgrade (entries age from epoch 0)
        import json
        from repro.utils.serialization import memory_from_dict, \
            memory_to_dict

        memory = SearchMemory()
        idastar_search(dicke_state(4, 2), memory=memory)
        data = memory_to_dict(memory)
        # rewrite the snapshot in the v1 shape: version 1, stamp-less
        # 2/3-element transposition entries, no generation/lane_stats
        data["version"] = 1
        table = data["transposition"]
        del table["generation"]
        table["data"] = [entry[:2] for entry in table["data"]]
        table["cond"] = [entry[:3] for entry in table["cond"]]
        del data["lane_stats"]
        restored = memory_from_dict(json.loads(json.dumps(data)))
        assert len(restored.canon_store) == len(memory.canon_store)
        assert restored.transposition.data == memory.transposition.data
        assert restored.transposition.generation == 0
        assert all(g == 0 for g in restored.transposition.data_gen.values())


class TestRunSurface:
    def test_step_on_terminal_run_is_a_noop(self):
        run = _drive(AStarRun(dicke_state(3, 1), SearchConfig()), 1000)
        assert run.status is RunStatus.SOLVED
        expanded = run.stats.nodes_expanded
        assert run.step(100) is RunStatus.SOLVED
        assert run.stats.nodes_expanded == expanded

    def test_cancel_terminal_run_keeps_status(self):
        run = _drive(AStarRun(dicke_state(3, 1), SearchConfig()), 1000)
        run.cancel()
        assert run.status is RunStatus.SOLVED

    def test_result_on_unfinished_run_raises(self):
        from repro.exceptions import SynthesisError
        run = AStarRun(dicke_state(4, 2), SearchConfig())
        with pytest.raises(SynthesisError):
            run.result()
        run.cancel()

    def test_beam_anytime_best_feasible(self):
        run = BeamRun(dicke_state(4, 2), BeamConfig())
        seen_while_running = None
        while not run.step(25).terminal:
            feasible = run.best_feasible()
            if feasible is not None and seen_while_running is None:
                seen_while_running = feasible.cnot_cost
        assert seen_while_running is not None
        assert run.result().cnot_cost <= seen_while_running

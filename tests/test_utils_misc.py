"""Unit tests for table formatting, timing, and numeric constants."""

from __future__ import annotations

import time

import pytest

from repro.constants import amps_close, mcry_cnot_cost, quantize
from repro.utils.tables import format_table, geometric_mean, improvement_percent
from repro.utils.timing import Stopwatch


class TestConstants:
    def test_quantize_rounds(self):
        assert quantize(0.12345678901234) == pytest.approx(0.123456789)

    def test_quantize_negative_zero(self):
        assert str(quantize(-1e-15)) == "0.0"

    def test_amps_close(self):
        assert amps_close(0.5, 0.5 + 1e-12)
        assert not amps_close(0.5, 0.51)

    def test_mcry_cost(self):
        assert mcry_cnot_cost(0) == 0
        assert mcry_cnot_cost(1) == 2
        assert mcry_cnot_cost(5) == 32

    def test_mcry_cost_negative(self):
        with pytest.raises(ValueError):
            mcry_cnot_cost(-1)


class TestTables:
    def test_format_basic(self):
        text = format_table(["n", "cost"], [[3, 4], [10, 123]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert "cost" in lines[0]

    def test_format_with_title(self):
        text = format_table(["a"], [[1]], title="Table X")
        assert text.splitlines()[0].strip() == "Table X"

    def test_float_rendering(self):
        text = format_table(["x"], [[1.5], [float("nan")], [1234.5]])
        assert "1.5" in text and "-" in text

    def test_geometric_mean(self):
        assert geometric_mean([2, 8]) == pytest.approx(4.0)
        assert geometric_mean([13.0]) == pytest.approx(13.0)

    def test_geometric_mean_clamps_zero(self):
        assert geometric_mean([0, 4]) == pytest.approx(2.0)

    def test_geometric_mean_empty(self):
        with pytest.raises(ValueError):
            geometric_mean([])

    def test_improvement_percent(self):
        assert improvement_percent(100, 90) == pytest.approx(10.0)
        assert improvement_percent(13.0, 10.9) == pytest.approx(16.15, abs=0.1)
        assert improvement_percent(0, 5) == 0.0


class TestStopwatch:
    def test_elapsed_monotonic(self):
        sw = Stopwatch()
        first = sw.elapsed()
        second = sw.elapsed()
        assert second >= first >= 0.0

    def test_no_limit_never_expires(self):
        sw = Stopwatch()
        assert not sw.expired()
        assert sw.remaining() is None

    def test_limit_expires(self):
        sw = Stopwatch(limit_seconds=0.0)
        time.sleep(0.01)
        assert sw.expired()
        assert sw.remaining() == 0.0

    def test_restart(self):
        sw = Stopwatch(limit_seconds=100.0)
        time.sleep(0.01)
        sw.restart()
        assert sw.elapsed() < 0.01

"""Unit tests for repro.arch.topologies."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch.topologies import CouplingMap
from repro.exceptions import CircuitError


class TestConstruction:
    def test_from_edges(self):
        cmap = CouplingMap([(0, 1), (1, 2)])
        assert cmap.size == 3
        assert cmap.edges() == [(0, 1), (1, 2)]

    def test_explicit_size_adds_isolated_nodes(self):
        cmap = CouplingMap([(0, 1)], size=4)
        assert cmap.size == 4
        assert not cmap.is_connected()

    def test_edge_order_normalized(self):
        assert CouplingMap([(2, 0)]).edges() == [(0, 2)]

    def test_rejects_self_loop(self):
        with pytest.raises(CircuitError):
            CouplingMap([(1, 1)])

    def test_rejects_negative_qubit(self):
        with pytest.raises(CircuitError):
            CouplingMap([(-1, 0)])

    def test_rejects_endpoint_outside_size(self):
        with pytest.raises(CircuitError):
            CouplingMap([(0, 5)], size=3)

    def test_equality(self):
        assert CouplingMap.line(3) == CouplingMap([(0, 1), (1, 2)])
        assert CouplingMap.line(3) != CouplingMap.ring(3)


class TestFamilies:
    def test_line_edges(self):
        cmap = CouplingMap.line(5)
        assert cmap.size == 5
        assert cmap.edges() == [(0, 1), (1, 2), (2, 3), (3, 4)]

    def test_ring_has_wraparound(self):
        cmap = CouplingMap.ring(5)
        assert (0, 4) in cmap.edges()
        assert all(cmap.degree(q) == 2 for q in range(5))

    def test_tiny_ring_degrades_to_line(self):
        assert CouplingMap.ring(2).edges() == [(0, 1)]

    def test_grid_shape(self):
        cmap = CouplingMap.grid(2, 3)
        assert cmap.size == 6
        # corner degree 2, edge-center degree 3
        assert cmap.degree(0) == 2
        assert cmap.degree(1) == 3
        assert cmap.is_adjacent(0, 3)   # vertical neighbour
        assert not cmap.is_adjacent(2, 3)  # row wrap is not an edge

    def test_grid_rejects_bad_shape(self):
        with pytest.raises(CircuitError):
            CouplingMap.grid(0, 3)

    def test_star_hub(self):
        cmap = CouplingMap.star(5)
        assert cmap.degree(0) == 4
        assert all(cmap.degree(q) == 1 for q in range(1, 5))

    def test_full_is_full(self):
        cmap = CouplingMap.full(4)
        assert cmap.is_full()
        assert cmap.diameter() == 1

    def test_line_is_not_full(self):
        assert not CouplingMap.line(3).is_full()

    def test_tree_parent_structure(self):
        cmap = CouplingMap.tree(7)
        assert cmap.is_adjacent(0, 1)
        assert cmap.is_adjacent(0, 2)
        assert cmap.is_adjacent(1, 3)
        assert cmap.degree(3) == 3 or cmap.degree(3) == 1 or True

    def test_heavy_hex_degree_bound(self):
        cmap = CouplingMap.heavy_hex(3)
        assert cmap.size > 10
        assert max(cmap.degree(q) for q in range(cmap.size)) <= 3
        assert cmap.is_connected()

    def test_heavy_hex_rejects_even_distance(self):
        with pytest.raises(CircuitError):
            CouplingMap.heavy_hex(4)

    def test_single_qubit_families(self):
        assert CouplingMap.line(1).size == 1
        assert CouplingMap.full(1).size == 1

    def test_zero_size_rejected(self):
        with pytest.raises(CircuitError):
            CouplingMap.line(0)


class TestQueries:
    def test_distance_on_line(self):
        cmap = CouplingMap.line(6)
        assert cmap.distance(0, 5) == 5
        assert cmap.distance(2, 2) == 0

    def test_distance_symmetry(self):
        cmap = CouplingMap.grid(3, 3)
        for a in range(9):
            for b in range(9):
                assert cmap.distance(a, b) == cmap.distance(b, a)

    def test_distance_disconnected_raises(self):
        cmap = CouplingMap([(0, 1)], size=3)
        with pytest.raises(CircuitError):
            cmap.distance(0, 2)

    def test_shortest_path_endpoints(self):
        cmap = CouplingMap.ring(6)
        path = cmap.shortest_path(0, 3)
        assert path[0] == 0 and path[-1] == 3
        assert len(path) == cmap.distance(0, 3) + 1

    def test_neighbors_sorted(self):
        cmap = CouplingMap.grid(2, 2)
        assert cmap.neighbors(0) == [1, 2]

    def test_out_of_range_queries_raise(self):
        cmap = CouplingMap.line(3)
        with pytest.raises(CircuitError):
            cmap.distance(0, 7)
        with pytest.raises(CircuitError):
            cmap.neighbors(-1)

    def test_diameter(self):
        assert CouplingMap.line(5).diameter() == 4
        assert CouplingMap.ring(6).diameter() == 3

    def test_diameter_disconnected_raises(self):
        with pytest.raises(CircuitError):
            CouplingMap([(0, 1)], size=3).diameter()

    def test_subgraph_distance_sum(self):
        cmap = CouplingMap.line(4)
        # pairs (0,1)=1 (0,3)=3 (1,3)=2
        assert cmap.subgraph_distance_sum([0, 1, 3]) == 6


@given(st.integers(min_value=2, max_value=12))
@settings(max_examples=20, deadline=None)
def test_line_path_consistency(size):
    """On a line the hop distance equals the index difference."""
    cmap = CouplingMap.line(size)
    for a in range(size):
        for b in range(size):
            assert cmap.distance(a, b) == abs(a - b)


@given(st.integers(min_value=3, max_value=12))
@settings(max_examples=20, deadline=None)
def test_ring_distance_wraps(size):
    cmap = CouplingMap.ring(size)
    for a in range(size):
        for b in range(size):
            direct = abs(a - b)
            assert cmap.distance(a, b) == min(direct, size - direct)


@given(st.integers(min_value=1, max_value=10))
@settings(max_examples=15, deadline=None)
def test_triangle_inequality_on_grid(cols):
    cmap = CouplingMap.grid(2, max(cols, 1))
    size = cmap.size
    import itertools
    for a, b, c in itertools.islice(
            itertools.product(range(size), repeat=3), 200):
        assert cmap.distance(a, c) <= cmap.distance(a, b) + cmap.distance(b, c)

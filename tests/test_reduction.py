"""Unit tests for the improved cardinality reduction (workflow sparse path)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.baselines.mflow import mflow_reduction_moves
from repro.core.moves import moves_to_circuit
from repro.exceptions import SynthesisError
from repro.qsp.reduction import ReductionConfig, reduce_cardinality
from repro.sim.verify import prepares_state
from repro.states.families import dicke_state, w_state
from repro.states.qstate import QState
from repro.states.random_states import random_sparse_state, random_uniform_state


class TestReduceCardinality:
    def test_full_reduction_prepares(self):
        s = random_sparse_state(6, seed=3)
        moves, final = reduce_cardinality(s)
        circuit = moves_to_circuit(moves, final, 6)
        assert prepares_state(circuit, s)

    def test_stop_cardinality_respected(self):
        s = random_uniform_state(6, 12, seed=4)
        moves, final = reduce_cardinality(s, stop_cardinality=4)
        assert final.cardinality <= 4

    def test_stop_entangled_respected(self):
        s = random_uniform_state(7, 7, seed=5)
        from repro.states.analysis import num_entangled_qubits
        moves, final = reduce_cardinality(s, stop_cardinality=16,
                                          stop_entangled=4)
        assert num_entangled_qubits(final) <= 4

    def test_invalid_stop(self):
        with pytest.raises(SynthesisError):
            reduce_cardinality(w_state(3), stop_cardinality=0)

    def test_multi_merge_beats_gh_on_uniform_pairs(self):
        """A state with 4 simultaneously-mergeable pairs should be reduced
        with free merges, far below GH's pair-at-a-time cost."""
        s = QState.uniform(3, list(range(8)))  # |+++>: all free merges
        moves, final = reduce_cardinality(s)
        assert sum(m.cost for m in moves) == 0

    @pytest.mark.parametrize("n", [5, 6, 8])
    def test_not_worse_than_gh_on_uniform_sparse(self, n):
        """The improvement the workflow banks on (Sec. VI-C)."""
        s = random_sparse_state(n, seed=50 + n)
        ours = sum(m.cost for m in reduce_cardinality(s)[0])
        gh = sum(m.cost for m in mflow_reduction_moves(s)[0])
        assert ours <= gh

    def test_dicke_reduction_cheaper_than_gh(self):
        s = dicke_state(5, 2)
        ours = sum(m.cost for m in reduce_cardinality(s)[0])
        gh = sum(m.cost for m in mflow_reduction_moves(s)[0])
        assert ours <= gh

    @given(st.integers(0, 60))
    def test_property_prepares_random_states(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(3, 6))
        m = int(rng.integers(2, n + 2))
        idx = rng.choice(1 << n, size=m, replace=False)
        amps = rng.standard_normal(m)
        s = QState(n, {int(i): float(a) for i, a in zip(idx, amps)})
        moves, final = reduce_cardinality(s)
        circuit = moves_to_circuit(moves, final, n)
        assert prepares_state(circuit, s)

    def test_config_max_controls(self):
        s = random_uniform_state(6, 10, seed=9)
        cfg = ReductionConfig(max_merge_controls=1)
        moves, _ = reduce_cardinality(s, config=cfg)
        from repro.core.moves import MergeMove
        for m in moves:
            if isinstance(m, MergeMove):
                # GH fallback merges may use more literals; multi-merges not.
                pass
        # mostly a smoke test that the knob is accepted and works
        assert moves

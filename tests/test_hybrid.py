"""Unit tests for the one-ancilla hybrid baseline."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.hybrid import (
    hybrid_cnot_count,
    hybrid_synthesize,
    isolating_cube,
)
from repro.exceptions import SynthesisError
from repro.sim.statevector import simulate_circuit
from repro.states.families import dicke_state, ghz_state, w_state
from repro.states.qstate import QState
from repro.states.random_states import random_real_state, random_sparse_state
from repro.utils.bits import bit_of


def _prepares_with_clean_ancilla(circuit, state) -> bool:
    """Final state must be |state> (x) |0>_ancilla (up to global sign)."""
    vec = simulate_circuit(circuit)
    target = np.kron(state.to_vector(), np.array([1.0, 0.0]))
    return abs(np.vdot(target.astype(complex), vec)) ** 2 >= 1.0 - 1e-7


class TestIsolatingCube:
    def test_contains_target_excludes_rest(self):
        cube = isolating_cube(0b101, [0b000, 0b111, 0b011], 3)
        assert all(bit_of(0b101, q, 3) == v for q, v in cube)
        for e in (0b000, 0b111, 0b011):
            assert any(bit_of(e, q, 3) != v for q, v in cube)

    def test_empty_exclusion_gives_empty_cube(self):
        assert isolating_cube(0b10, [], 2) == []

    def test_self_exclusion_ignored(self):
        assert isolating_cube(0b10, [0b10], 2) == []

    def test_identical_conflict_impossible(self):
        # excluded contains only the target itself -> treated as no-op;
        # a genuinely identical distinct index cannot exist in a set.
        assert isolating_cube(0, [0], 3) == []


class TestHybrid:
    def test_uses_one_ancilla(self):
        s = ghz_state(3)
        circuit = hybrid_synthesize(s)
        assert circuit.num_qubits == 4

    @pytest.mark.parametrize("n", [2, 3, 4, 5])
    def test_prepares_sparse_with_clean_ancilla(self, n):
        s = random_sparse_state(n, seed=30 + n)
        assert _prepares_with_clean_ancilla(hybrid_synthesize(s), s)

    def test_prepares_signed_amplitudes(self):
        s = random_real_state(3, 4, seed=8)
        assert _prepares_with_clean_ancilla(hybrid_synthesize(s), s)

    def test_prepares_named_states(self):
        for s in (ghz_state(4), w_state(4), dicke_state(4, 2)):
            assert _prepares_with_clean_ancilla(hybrid_synthesize(s), s)

    def test_basis_state(self):
        s = QState.basis(3, 0b110)
        assert _prepares_with_clean_ancilla(hybrid_synthesize(s), s)

    def test_cost_positive_for_entangled(self):
        assert hybrid_cnot_count(ghz_state(3)) > 0

    def test_cost_above_mflow_on_sparse(self):
        """Qualitative standing from Table V: hybrid never beats the m-flow
        on sparse states."""
        from repro.baselines.mflow import mflow_cnot_count
        s = random_sparse_state(6, seed=13)
        assert hybrid_cnot_count(s) >= mflow_cnot_count(s)

"""Differential suite for topology-native synthesis (PR 4).

Three acceptance pillars:

* **Full-map identity** — a ``CouplingMap.full`` / ``None`` topology must
  leave the move set and search results bit-identical to seed behavior
  (the identity fast path).
* **Native beats routed** — on the topology-tax sweep, searching directly
  on the restricted move set never costs more CNOTs than synthesize-then-
  route, and every native circuit is simulator-verified and physically
  legal (all CNOTs on coupled pairs).
* **Restricted heuristic admissibility** — the coupling matching bound
  never exceeds the true optimal native cost on enumerable instances.

Plus the cross-device safety net: memory, snapshots, and the request
cache must refuse to mix entries across topologies.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.arch.flow import prepare_on_device
from repro.arch.topologies import CouplingMap, named_topology, native_topology
from repro.core.astar import SearchConfig, astar_search
from repro.core.beam import BeamConfig, beam_search
from repro.core.heuristic import CouplingHeuristic, default_heuristic, \
    entanglement_heuristic
from repro.core.idastar import IDAStarConfig, idastar_search
from repro.core.kernel import (
    StatePool,
    enumerate_cx_packed,
    enumerate_merges_packed,
    successors_packed,
)
from repro.core.memory import HashStore, SearchMemory
from repro.core.transitions import enumerate_cx, enumerate_merges, successors
from repro.exceptions import CircuitError, MemoryCompatibilityError
from repro.experiments.topology_tax import topology_tax_rows
from repro.service.cache import (
    RequestCache,
    request_cache_from_dict,
    request_cache_to_dict,
)
from repro.states.families import dicke_state, ghz_state, w_state
from repro.states.qstate import QState
from repro.states.random_states import random_sparse_state
from repro.utils.fingerprint import fingerprint_from_dict, \
    fingerprint_to_dict, search_regime_dict


def _random_states(count: int, n: int, seed0: int = 11) -> list[QState]:
    return [random_sparse_state(n, seed=seed0 + i) for i in range(count)]


def _cx_pairs(circuit) -> list[tuple[int, int]]:
    return [(g.controls[0][0], g.target) for g in circuit.decompose()
            if g.name == "cx"]


# ----------------------------------------------------------------------
# CouplingMap hardening (satellite)
# ----------------------------------------------------------------------

class TestCouplingMapHardening:
    def test_hash_consistent_with_eq(self):
        a = CouplingMap.line(5)
        b = CouplingMap([(i, i + 1) for i in range(4)], 5, name="renamed")
        assert a == b
        assert hash(a) == hash(b)
        assert hash(a) != hash(CouplingMap.ring(5))

    def test_canonical_serialization_roundtrip(self):
        for cmap in (CouplingMap.line(4), CouplingMap.ring(5),
                     CouplingMap.grid(2, 3), CouplingMap.star(4)):
            data = cmap.to_canonical_dict()
            assert data["edges"] == sorted(data["edges"])
            back = CouplingMap.from_canonical_dict(data)
            assert back == cmap
            assert back.canonical_key() == cmap.canonical_key()

    def test_from_canonical_dict_rejects_garbage(self):
        with pytest.raises(CircuitError):
            CouplingMap.from_canonical_dict({"edges": "nope"})

    def test_automorphisms_are_graph_automorphisms(self):
        for cmap in (CouplingMap.line(4), CouplingMap.ring(5),
                     CouplingMap.grid(2, 3)):
            orderings = cmap.automorphism_orderings(64)
            assert list(range(cmap.size)) == orderings[0]
            for perm in orderings:
                assert sorted(perm) == list(range(cmap.size))
                for a, b in cmap.edges():
                    assert cmap.is_adjacent(perm[a], perm[b])

    def test_automorphism_counts(self):
        assert len(CouplingMap.line(4).automorphism_orderings(64)) == 2
        assert len(CouplingMap.ring(5).automorphism_orderings(64)) == 10
        # truncation keeps identity and the cap
        capped = CouplingMap.star(6).automorphism_orderings(8)
        assert len(capped) <= 9  # cap + possibly appended identity
        assert list(range(6)) in capped

    def test_induced_submap(self):
        grid = CouplingMap.grid(2, 3)
        sub, mapping = grid.induced([0, 1, 3, 4])
        assert mapping == [0, 1, 3, 4]
        assert sub.size == 4
        for a, b in sub.edges():
            assert grid.is_adjacent(mapping[a], mapping[b])

    def test_native_topology_normalization(self):
        assert native_topology(None) is None
        assert native_topology(CouplingMap.full(4)) is None
        line = CouplingMap.line(4)
        assert native_topology(line) is line
        disconnected = CouplingMap([(0, 1)], 4)
        with pytest.raises(CircuitError):
            native_topology(disconnected)

    def test_named_topology_sizes(self):
        for name in ("line", "ring", "grid", "star", "tree", "full",
                     "heavy_hex"):
            for size in (3, 4, 5):
                cmap = named_topology(name, size)
                assert cmap.size == size
                assert cmap.is_connected()


# ----------------------------------------------------------------------
# (a) full-map identity + restricted move-set correctness
# ----------------------------------------------------------------------

class TestMoveSetDifferential:
    def test_full_map_is_move_set_identical_to_seed(self):
        full = CouplingMap.full(4)
        pool = StatePool()
        for state in _random_states(6, 4):
            ps = pool.from_qstate(state)
            assert enumerate_cx_packed(ps, full) == enumerate_cx_packed(ps)
            assert enumerate_cx(state, full) == enumerate_cx(state)
            base = successors(state)
            topo = successors(state, topology=full)
            assert [m for m, _ in base] == [m for m, _ in topo]

    def test_restricted_reference_and_kernel_in_lockstep(self):
        line = CouplingMap.line(4)
        ring = CouplingMap.ring(4)
        pool = StatePool()
        for cmap in (line, ring):
            for state in _random_states(6, 4, seed0=23):
                ps = pool.from_qstate(state)
                ref = successors(state, topology=cmap)
                kern = successors_packed(pool, ps, topology=cmap)
                assert [m for m, _ in ref] == [m for m, _ in kern]
                for (_, ref_state), (_, kern_state) in zip(ref, kern):
                    assert ref_state.key() == kern_state.to_qstate().key()

    def test_restricted_moves_all_on_coupled_pairs(self):
        line = CouplingMap.line(4)
        masks = line.neighbor_masks()
        pool = StatePool()
        for state in _random_states(6, 4, seed0=47):
            ps = pool.from_qstate(state)
            for mv in enumerate_cx_packed(ps, line):
                assert (masks[mv.control] >> mv.target) & 1
            for target in range(4):
                for mv in enumerate_merges_packed(ps, target, None, line):
                    for q, _ in mv.controls:
                        assert line.is_adjacent(q, target)

    def test_full_topology_search_cost_identical_to_seed(self):
        full = CouplingMap.full(4)
        for state in (ghz_state(4), w_state(4), dicke_state(4, 2)):
            seed_result = astar_search(state)
            topo_result = astar_search(state, SearchConfig(topology=full))
            assert topo_result.cnot_cost == seed_result.cnot_cost
            assert topo_result.optimal == seed_result.optimal
            assert topo_result.stats.nodes_expanded == \
                seed_result.stats.nodes_expanded

    def test_topology_size_mismatch_raises(self):
        with pytest.raises(ValueError):
            astar_search(ghz_state(4),
                         SearchConfig(topology=CouplingMap.line(5)))

    def test_full_map_of_any_size_means_unrestricted(self):
        # a full map is the paper model regardless of its size — the
        # engines must agree with prepare_state/search_regime_dict here
        seed = astar_search(ghz_state(4))
        via_full5 = astar_search(ghz_state(4),
                                 SearchConfig(topology=CouplingMap.full(5)))
        assert via_full5.cnot_cost == seed.cnot_cost
        assert via_full5.stats.nodes_expanded == seed.stats.nodes_expanded

    def test_reference_loop_rejects_topology(self):
        with pytest.raises(ValueError):
            astar_search(ghz_state(3),
                         SearchConfig(topology=CouplingMap.line(3),
                                      use_kernel=False))


# ----------------------------------------------------------------------
# native search: engines agree, circuits are native and verified
# ----------------------------------------------------------------------

class TestNativeSearch:
    def test_engines_agree_on_native_optimum(self):
        line = CouplingMap.line(4)
        cfg = SearchConfig(topology=line)
        for state in (ghz_state(4), w_state(4), dicke_state(4, 2)):
            a = astar_search(state, cfg)
            i = idastar_search(state, IDAStarConfig(search=cfg))
            assert a.optimal and i.optimal
            assert a.cnot_cost == i.cnot_cost
            b = beam_search(state, BeamConfig(topology=line))
            assert b.cnot_cost >= a.cnot_cost

    def test_native_circuits_land_on_coupled_pairs(self):
        for cmap in (CouplingMap.line(4), CouplingMap.ring(4),
                     named_topology("grid", 4)):
            for state in (ghz_state(4), dicke_state(4, 2)):
                result = astar_search(state, SearchConfig(topology=cmap))
                for control, target in _cx_pairs(result.circuit):
                    assert cmap.is_adjacent(control, target)

    def test_portfolio_survives_empty_native_beam_lane(self):
        # a starved native beam lane raises SynthesisError (no m-flow
        # completion tail); the portfolio must record a failed lane and
        # keep going instead of aborting the whole request
        from repro.service.portfolio import run_portfolio

        outcome = run_portfolio(
            w_state(4),
            SearchConfig(topology=CouplingMap.line(4), time_limit=1e-6))
        # every lane fails under the impossible budget — but the call
        # returns an outcome (pre-fix: SynthesisError propagated)
        assert not outcome.solved
        assert [a["solved"] for a in outcome.attempts].count(False) == \
            len(outcome.attempts)
        # with a sane budget the exact lanes answer natively
        outcome = run_portfolio(
            w_state(4), SearchConfig(topology=CouplingMap.line(4)))
        assert outcome.solved and outcome.result.optimal

    def test_family_reports_empty_native_beam_row(self):
        # same failure shape at the family level: the row is reported
        # unsolved instead of sinking the batch
        from repro.experiments.family_runner import FamilyRunConfig, \
            run_family

        config = FamilyRunConfig(
            engine="beam",
            beam=BeamConfig(width=1, max_depth=1),
            topology="line")
        report = run_family([("w4", w_state(4))], config)
        assert len(report.rows) == 1
        assert not report.rows[0].solved

    def test_native_warm_memory_identical_results(self):
        line = CouplingMap.line(4)
        cfg = SearchConfig(topology=line)
        memory = SearchMemory()
        cold = [astar_search(s, cfg) for s in
                (ghz_state(4), w_state(4), dicke_state(4, 2))]
        warm1 = [astar_search(s, cfg, memory=memory) for s in
                 (ghz_state(4), w_state(4), dicke_state(4, 2))]
        warm2 = [astar_search(s, cfg, memory=memory) for s in
                 (ghz_state(4), w_state(4), dicke_state(4, 2))]
        for c, w1, w2 in zip(cold, warm1, warm2):
            assert c.cnot_cost == w1.cnot_cost == w2.cnot_cost
        # the satellite: per-search store hit counters are surfaced
        assert any(r.stats.canon_store_hits > 0 or r.stats.h_store_hits > 0
                   for r in warm2)


# ----------------------------------------------------------------------
# (b) native cost <= routed cost on the topology-tax sweep, verified
# ----------------------------------------------------------------------

class TestNativeVersusRouted:
    def test_native_never_worse_than_routed_on_tax_sweep(self):
        states = [("ghz3", ghz_state(3)), ("w4", w_state(4)),
                  ("d42", dicke_state(4, 2))]
        rows = topology_tax_rows(states, placements=("greedy",),
                                 include_native=True)
        assert rows
        for row in rows:
            assert row.native_cnots is not None
            # simulator equivalence on every row, both pipelines
            assert row.verified is True
            assert row.native_verified is True
            assert row.native_cnots <= row.physical_cnots, row

    def test_race_mode_returns_cheaper_verified(self):
        line = CouplingMap.line(4)
        routed = prepare_on_device(w_state(4), line, placement="greedy")
        race = prepare_on_device(w_state(4), line, mode="race")
        assert race.physical_cnots <= routed.physical_cnots
        assert race.verified is True

    def test_native_on_larger_device_embeds_into_region(self):
        hh = named_topology("heavy_hex", 12)
        result = prepare_on_device(ghz_state(3), hh, mode="native")
        assert result.routed.swap_count == 0
        assert result.verified is True
        region = result.routed.initial_layout
        for control, target in _cx_pairs(result.routed.circuit):
            assert hh.is_adjacent(control, target)
            assert control in region and target in region


# ----------------------------------------------------------------------
# (c) restricted heuristic admissibility
# ----------------------------------------------------------------------

class TestCouplingHeuristic:
    def test_collapses_to_paper_bound_on_full_maps(self):
        h_full = CouplingHeuristic(CouplingMap.full(4))
        for state in _random_states(8, 4, seed0=5):
            assert h_full(state) == entanglement_heuristic(state)

    def test_never_below_paper_bound(self):
        # the coupling bound dominates ceil(k/2): fewer coupled pairs can
        # only shrink the matching
        line = CouplingHeuristic(CouplingMap.line(4))
        for state in _random_states(8, 4, seed0=31):
            assert line(state) >= entanglement_heuristic(state)

    @pytest.mark.parametrize("family", ["line", "ring", "grid"])
    def test_admissible_on_enumerable_instances(self, family):
        cmap = named_topology(family, 4)
        h = CouplingHeuristic(cmap)
        cfg = SearchConfig(topology=cmap)
        targets = [ghz_state(4), w_state(4), dicke_state(4, 2),
                   *_random_states(4, 4, seed0=61)]
        for state in targets:
            result = astar_search(state, cfg)
            assert result.optimal
            assert h(state) <= result.cnot_cost, \
                f"inadmissible: h={h(state)} > opt={result.cnot_cost}"

    def test_default_heuristic_resolution(self):
        assert default_heuristic(None) is entanglement_heuristic
        line = CouplingMap.line(4)
        h = default_heuristic(line)
        assert isinstance(h, CouplingHeuristic)
        assert h == CouplingHeuristic(CouplingMap.line(4))
        assert h != CouplingHeuristic(CouplingMap.ring(4))


# ----------------------------------------------------------------------
# memory / snapshot / cache cross-device gating
# ----------------------------------------------------------------------

class TestCrossDeviceGating:
    def test_memory_refuses_other_topology(self):
        line = CouplingMap.line(4)
        memory = SearchMemory()
        astar_search(ghz_state(4), SearchConfig(topology=line),
                     memory=memory)
        with pytest.raises(MemoryCompatibilityError):
            astar_search(ghz_state(4),
                         SearchConfig(topology=CouplingMap.ring(4)),
                         memory=memory)
        with pytest.raises(MemoryCompatibilityError):
            astar_search(ghz_state(4), SearchConfig(), memory=memory)

    def test_unrestricted_memory_refuses_topology(self):
        memory = SearchMemory()
        astar_search(ghz_state(4), SearchConfig(), memory=memory)
        with pytest.raises(MemoryCompatibilityError):
            astar_search(ghz_state(4),
                         SearchConfig(topology=CouplingMap.line(4)),
                         memory=memory)

    def test_fingerprint_roundtrip_with_topology(self):
        line = CouplingMap.line(4)
        regime = search_regime_dict(SearchConfig(topology=line))
        assert regime["topology"] == line.to_canonical_dict()
        fp = fingerprint_from_dict(regime)
        assert fingerprint_to_dict(fp) == regime
        # the rebuilt heuristic instance compares equal to a fresh one
        assert fp[5] == CouplingHeuristic(CouplingMap.line(4))
        assert fp[6] == line.canonical_key()

    def test_memory_snapshot_roundtrip_with_topology(self):
        from repro.utils.serialization import memory_from_dict, \
            memory_to_dict

        line = CouplingMap.line(4)
        cfg = SearchConfig(topology=line)
        memory = SearchMemory()
        expected = astar_search(ghz_state(4), cfg, memory=memory)
        data = memory_to_dict(memory)
        restored = memory_from_dict(data)
        warm = astar_search(ghz_state(4), cfg, memory=restored)
        assert warm.cnot_cost == expected.cnot_cost
        with pytest.raises(MemoryCompatibilityError):
            astar_search(ghz_state(4),
                         SearchConfig(topology=CouplingMap.ring(4)),
                         memory=restored)

    def test_full_topology_service_is_unrestricted(self):
        # --topology full pins nothing: the service normalizes it away at
        # boot, so explicit full-topology requests of any register size
        # are served and stats report no pinned device
        from repro.service.server import ServiceConfig, SynthesisService

        service = SynthesisService(ServiceConfig(
            search=SearchConfig(topology=CouplingMap.full(4))))
        assert service.config.search.topology is None
        response = service.handle(
            {"id": 1, "op": "exact", "w": 5, "topology": "full"})
        assert response["ok"], response
        assert service.stats()["topology"] is None

    def test_request_cache_pin_rejects_other_topology(self):
        line_regime = search_regime_dict(
            SearchConfig(topology=CouplingMap.line(4)))
        ring_regime = search_regime_dict(
            SearchConfig(topology=CouplingMap.ring(4)))
        cache = RequestCache(line_regime)
        with pytest.raises(MemoryCompatibilityError):
            cache.pin(ring_regime)


# ----------------------------------------------------------------------
# request-cache persistence (satellite)
# ----------------------------------------------------------------------

class TestRequestCachePersistence:
    def _filled_cache(self):
        regime = search_regime_dict(SearchConfig())
        cache = RequestCache(regime, cap=64)
        state = ghz_state(3)
        result = astar_search(state)
        cache.put("exact", state, result)
        return regime, cache, state, result

    def test_roundtrip(self):
        regime, cache, state, result = self._filled_cache()
        data = request_cache_to_dict(cache)
        restored = request_cache_from_dict(data, regime)
        hit = restored.get("exact", state)
        assert hit is not None
        assert hit.cnot_cost == result.cnot_cost
        assert hit.optimal == result.optimal
        assert np.allclose(
            [g.theta for g in hit.circuit if hasattr(g, "theta")],
            [g.theta for g in result.circuit if hasattr(g, "theta")])

    def test_regime_mismatch_refused(self):
        regime, cache, _, _ = self._filled_cache()
        data = request_cache_to_dict(cache)
        other = search_regime_dict(
            SearchConfig(topology=CouplingMap.line(4)))
        with pytest.raises(MemoryCompatibilityError):
            request_cache_from_dict(data, other)

    def test_regimeless_snapshot_refused(self):
        # a snapshot without a regime must not silently adopt the
        # loading service's regime — that would defeat the device gate
        regime, cache, _, _ = self._filled_cache()
        data = dict(request_cache_to_dict(cache), regime=None)
        with pytest.raises(MemoryCompatibilityError):
            request_cache_from_dict(data, regime)

    def test_version_and_corruption_refused(self):
        regime, cache, _, _ = self._filled_cache()
        data = request_cache_to_dict(cache)
        bad_version = dict(data, version=999)
        with pytest.raises(MemoryCompatibilityError):
            request_cache_from_dict(bad_version, regime)
        corrupted = dict(data)
        corrupted["entries"] = {"exact": [["!!! not base64", {}]]}
        with pytest.raises(MemoryCompatibilityError):
            request_cache_from_dict(corrupted, regime)

    def test_file_roundtrip(self, tmp_path):
        from repro.service.persistence import load_request_cache, \
            save_request_cache

        regime, cache, state, result = self._filled_cache()
        path = tmp_path / "cache.json.gz"
        save_request_cache(cache, path)
        restored = load_request_cache(path, regime)
        assert restored.get("exact", state).cnot_cost == result.cnot_cost


# ----------------------------------------------------------------------
# hit-weighted store eviction (satellite)
# ----------------------------------------------------------------------

class _KeyedState:
    __slots__ = ("hash64", "payload")

    def __init__(self, h, payload):
        self.hash64 = h
        self.payload = payload


class TestHitWeightedEviction:
    def test_hot_entries_survive_eviction(self):
        store = HashStore(cap=8)
        keys = [_KeyedState(i, bytes([i])) for i in range(8)]
        for i, key in enumerate(keys):
            store.put(key, i)
        hot = keys[5]
        for _ in range(3):
            assert store.get(hot) == 5
        # overflow forces a sweep; the least-hit entries go first
        for i in range(8, 12):
            store.put(_KeyedState(i, bytes([i])), i)
        assert store.evictions > 0
        assert store.get(hot) == 5  # the hot entry survived

    def test_delta_after_sweep_ships_everything(self):
        store = HashStore(cap=8)
        for i in range(8):
            store.put(_KeyedState(i, bytes([i])), i)
        marker = store.size_marker()
        for i in range(8, 12):
            store.put(_KeyedState(i, bytes([i])), i)
        delta = dict(store.items_payload(marker))
        survivors = dict(store.items_payload())
        # post-sweep the positional skip is invalid; the safe delta is the
        # full surviving store — nothing learned may be lost
        assert delta == survivors
        for i in range(8, 12):
            assert bytes([i]) in delta

    def test_delta_without_sweep_stays_positional(self):
        store = HashStore(cap=64)
        for i in range(4):
            store.put(_KeyedState(i, bytes([i])), i)
        marker = store.size_marker()
        for i in range(4, 8):
            store.put(_KeyedState(i, bytes([i])), i)
        delta = dict(store.items_payload(marker))
        assert delta == {bytes([i]): i for i in range(4, 8)}

"""Unit + property tests for the admissible heuristic (Sec. V-A)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.astar import SearchConfig, astar_search
from repro.core.heuristic import (
    entanglement_heuristic,
    scaled_heuristic,
    zero_heuristic,
)
from repro.states.families import dicke_state, ghz_state
from repro.states.qstate import QState


class TestValues:
    def test_ground_zero(self):
        assert entanglement_heuristic(QState.ground(4)) == 0.0

    def test_ghz4_underestimates(self):
        """The paper's own example: GHZ(4) optimum is 3, heuristic says 2."""
        assert entanglement_heuristic(ghz_state(4)) == 2.0

    def test_zero_heuristic(self):
        assert zero_heuristic(ghz_state(4)) == 0.0

    def test_scaled(self):
        h = scaled_heuristic(2.0)
        assert h(ghz_state(4)) == 4.0

    def test_scaled_rejects_negative(self):
        with pytest.raises(ValueError):
            scaled_heuristic(-1.0)


class TestAdmissibility:
    """h(psi) must never exceed the true optimal CNOT cost."""

    @pytest.mark.parametrize("state,true_cost", [
        (ghz_state(2), 1),
        (ghz_state(3), 2),
        (ghz_state(4), 3),
        (dicke_state(3, 1), 4),
        (dicke_state(4, 2), 6),
    ])
    def test_known_optima(self, state, true_cost):
        assert entanglement_heuristic(state) <= true_cost

    @given(st.integers(0, 60))
    def test_random_small_states(self, seed):
        rng = np.random.default_rng(seed)
        m = int(rng.integers(2, 5))
        idx = rng.choice(8, size=m, replace=False)
        s = QState.uniform(3, [int(i) for i in idx])
        true_cost = astar_search(
            s, SearchConfig(max_nodes=100_000, time_limit=30)).cnot_cost
        assert entanglement_heuristic(s) <= true_cost

"""Unit tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_prepare_dicke_args(self):
        args = build_parser().parse_args(["prepare", "--dicke", "4", "2"])
        assert args.dicke == [4, 2]


class TestPrepareCommand:
    def test_dicke(self, capsys):
        assert main(["prepare", "--dicke", "4", "2"]) == 0
        out = capsys.readouterr().out
        assert "CNOTs  : 6" in out

    def test_ghz_with_draw(self, capsys):
        assert main(["prepare", "--ghz", "3", "--draw"]) == 0
        out = capsys.readouterr().out
        assert "CNOTs  : 2" in out
        assert "q0:" in out

    def test_terms(self, capsys):
        assert main(["prepare", "--terms", "00:0.6", "11:0.8"]) == 0
        out = capsys.readouterr().out
        assert "CNOTs  : 1" in out

    def test_qasm_stdout(self, capsys):
        assert main(["prepare", "--w", "3", "--qasm", "-"]) == 0
        out = capsys.readouterr().out
        assert "OPENQASM 2.0;" in out

    def test_qasm_file(self, tmp_path, capsys):
        path = tmp_path / "out.qasm"
        assert main(["prepare", "--ghz", "3", "--qasm", str(path)]) == 0
        text = path.read_text()
        assert "qreg q[3];" in text
        # round-trip through the importer
        from repro.circuits.qasm import from_qasm
        from repro.sim.verify import prepares_state
        from repro.states.families import ghz_state
        assert prepares_state(from_qasm(text), ghz_state(3))

    def test_no_state_errors(self):
        with pytest.raises(SystemExit):
            main(["prepare"])


class TestCompareCommand:
    def test_random_sparse(self, capsys):
        assert main(["compare", "--random-sparse", "5", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "m-flow" in out and "ours" in out

    def test_random_dense(self, capsys):
        assert main(["compare", "--random-dense", "4"]) == 0
        assert "n-flow" in capsys.readouterr().out

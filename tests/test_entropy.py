"""Tests for Schmidt coefficients / entanglement entropy
(repro.states.analysis extension)."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.states.analysis import (
    entanglement_entropy,
    schmidt_coefficients,
    schmidt_rank,
)
from repro.states.families import dicke_state, ghz_state, w_state
from repro.states.qstate import QState
from repro.states.random_states import random_uniform_state


class TestSchmidtCoefficients:
    def test_squares_sum_to_one(self):
        state = random_uniform_state(4, 6, seed=2)
        coefficients = schmidt_coefficients(state, [0, 1])
        assert (coefficients ** 2).sum() == pytest.approx(1.0)

    def test_descending(self):
        state = random_uniform_state(4, 7, seed=5)
        coefficients = schmidt_coefficients(state, [0, 2])
        assert all(coefficients[i] >= coefficients[i + 1] - 1e-12
                   for i in range(len(coefficients) - 1))

    def test_bell_pair_coefficients(self):
        bell = QState.uniform(2, [0b00, 0b11])
        coefficients = schmidt_coefficients(bell, [0])
        assert np.allclose(coefficients,
                           [1 / math.sqrt(2), 1 / math.sqrt(2)])

    def test_nonzero_count_matches_rank(self):
        state = dicke_state(4, 2)
        coefficients = schmidt_coefficients(state, [0, 1])
        nonzero = int((coefficients > 1e-9).sum())
        assert nonzero == schmidt_rank(state, [0, 1])

    def test_trivial_cut(self):
        state = ghz_state(3)
        assert schmidt_coefficients(state, []) == pytest.approx([1.0])

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            schmidt_coefficients(ghz_state(2), [4])


class TestEntanglementEntropy:
    def test_product_state_zero(self):
        assert entanglement_entropy(QState.basis(3, 0b101), [0]) == \
            pytest.approx(0.0)

    def test_bell_pair_one_bit(self):
        bell = QState.uniform(2, [0b00, 0b11])
        assert entanglement_entropy(bell, [0]) == pytest.approx(1.0)

    def test_ghz_any_cut_one_bit(self):
        state = ghz_state(5)
        for cut in ([0], [0, 1], [1, 3]):
            assert entanglement_entropy(state, cut) == pytest.approx(1.0)

    def test_w_state_entropy_below_one(self):
        # single-qubit cut of |W_4>: p = (3/4, 1/4)
        expected = -(0.75 * math.log2(0.75) + 0.25 * math.log2(0.25))
        assert entanglement_entropy(w_state(4), [0]) == \
            pytest.approx(expected)

    def test_entropy_bounded_by_cut_width(self):
        state = random_uniform_state(5, 10, seed=9)
        for size in (1, 2):
            for start in range(4):
                cut = list(range(start, start + size))
                ent = entanglement_entropy(state, cut)
                assert -1e-9 <= ent <= size + 1e-9

    def test_natural_log_base(self):
        bell = QState.uniform(2, [0b00, 0b11])
        assert entanglement_entropy(bell, [0], base=math.e) == \
            pytest.approx(math.log(2))

    def test_bad_base_rejected(self):
        with pytest.raises(ValueError):
            entanglement_entropy(ghz_state(2), [0], base=1.0)

    def test_complement_symmetry(self):
        state = random_uniform_state(4, 6, seed=12)
        assert entanglement_entropy(state, [0, 1]) == \
            pytest.approx(entanglement_entropy(state, [2, 3]))


@given(st.integers(min_value=2, max_value=5), st.integers(min_value=0,
                                                          max_value=60))
@settings(max_examples=25, deadline=None)
def test_entropy_nonnegative_and_log_rank_bounded(n, seed):
    state = random_uniform_state(n, min(n + 2, 1 << n), seed=seed)
    cut = [0]
    ent = entanglement_entropy(state, cut)
    rank = schmidt_rank(state, cut)
    assert -1e-9 <= ent <= math.log2(max(rank, 1)) + 1e-9

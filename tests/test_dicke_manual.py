"""Unit tests for the manual Dicke/W designs (Table IV reference)."""

from __future__ import annotations

import pytest

from repro.baselines.dicke_manual import (
    dicke_circuit,
    manual_cnot_count,
    w_state_circuit,
)
from repro.exceptions import SynthesisError
from repro.sim.verify import prepares_state
from repro.states.families import dicke_state, w_state


class TestManualCount:
    """The Mukherjee formula 5nk - 5k^2 - 2n, matching Table IV's manual
    column exactly."""

    @pytest.mark.parametrize("n,k,expected", [
        (3, 1, 4), (4, 1, 7), (4, 2, 12), (5, 1, 10), (5, 2, 20),
        (6, 1, 13), (6, 2, 28), (6, 3, 33),
    ])
    def test_table4_manual_column(self, n, k, expected):
        assert manual_cnot_count(n, k) == expected

    def test_invalid_parameters(self):
        with pytest.raises(SynthesisError):
            manual_cnot_count(4, 0)
        with pytest.raises(SynthesisError):
            manual_cnot_count(4, 4)


class TestWCircuit:
    @pytest.mark.parametrize("n", [2, 3, 4, 5, 6, 7])
    def test_prepares_w_state(self, n):
        assert prepares_state(w_state_circuit(n), w_state(n))

    @pytest.mark.parametrize("n", [3, 4, 5, 6, 7])
    def test_achieves_formula_cost(self, n):
        assert w_state_circuit(n).cnot_cost() == 3 * n - 5

    def test_needs_two_qubits(self):
        with pytest.raises(SynthesisError):
            w_state_circuit(1)


class TestBartschiEidenbenz:
    @pytest.mark.parametrize("n,k", [
        (2, 1), (3, 1), (3, 2), (4, 1), (4, 2), (4, 3), (5, 2), (6, 3),
    ])
    def test_prepares_dicke_states(self, n, k):
        assert prepares_state(dicke_circuit(n, k), dicke_state(n, k))

    def test_trivial_weights(self):
        assert prepares_state(dicke_circuit(3, 0), dicke_state(3, 0))
        assert prepares_state(dicke_circuit(3, 3), dicke_state(3, 3))

    def test_cost_linear_in_nk(self):
        """B-E costs O(kn) — far below the 2^n flows for large n."""
        cost = dicke_circuit(8, 2).cnot_cost()
        assert cost < (1 << 8) - 2

    def test_invalid(self):
        with pytest.raises(SynthesisError):
            dicke_circuit(3, 4)

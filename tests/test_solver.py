"""Unit tests for the top-level solver API."""

from __future__ import annotations

import pytest

from repro.qsp.solver import compare_methods, prepare
from repro.sim.verify import prepares_state
from repro.states.families import dicke_state
from repro.states.random_states import random_sparse_state


class TestPrepare:
    def test_returns_circuit(self):
        s = random_sparse_state(5, seed=1)
        circuit = prepare(s)
        assert prepares_state(circuit, s)


class TestCompareMethods:
    def test_all_columns_populated(self):
        s = random_sparse_state(5, seed=2)
        row = compare_methods(s)
        assert row.num_qubits == 5
        assert row.cardinality == 5
        assert row.mflow > 0
        assert row.nflow == (1 << 5) - 2
        assert row.hybrid > 0
        assert row.ours > 0

    def test_ours_never_worst(self):
        s = random_sparse_state(6, seed=3)
        row = compare_methods(s)
        assert row.ours <= max(row.mflow, row.nflow, row.hybrid)

    def test_skip_flags(self):
        s = random_sparse_state(5, seed=4)
        row = compare_methods(s, include_hybrid=False, include_mflow=False)
        assert row.hybrid == -1
        assert row.mflow == -1

    def test_as_row(self):
        s = dicke_state(4, 1)
        row = compare_methods(s)
        assert row.as_row()[0] == 4
        assert len(row.as_row()) == 6

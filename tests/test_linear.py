"""Unit + property tests for Patel-Markov-Hayes CNOT resynthesis."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.circuits.circuit import QCircuit
from repro.circuits.gates import CXGate, RYGate
from repro.exceptions import CircuitError
from repro.opt.linear import (
    cnot_circuit_to_matrix,
    matrix_to_cnot_circuit,
    pmh_synthesize,
    resynthesize_cnot_blocks,
)
from repro.sim.equivalence import circuits_equivalent


def _random_invertible(n: int, rng: np.random.Generator) -> np.ndarray:
    """Random invertible GF(2) matrix built as a product of row ops."""
    mat = np.eye(n, dtype=np.uint8)
    for _ in range(4 * n):
        a, b = rng.choice(n, size=2, replace=False)
        mat[b, :] ^= mat[a, :]
    return mat


class TestMatrixConversion:
    def test_single_cnot(self):
        gates = [CXGate.make(0, 1)]
        mat = cnot_circuit_to_matrix(gates, 2)
        assert np.array_equal(mat, [[1, 0], [1, 1]])

    def test_composition(self):
        gates = [CXGate.make(0, 1), CXGate.make(1, 2)]
        mat = cnot_circuit_to_matrix(gates, 3)
        # wire2 = q2 ^ (q1 ^ q0)
        assert np.array_equal(mat[2], [1, 1, 1])

    def test_rejects_non_cnot(self):
        with pytest.raises(CircuitError):
            cnot_circuit_to_matrix([RYGate(target=0, theta=1.0)], 2)

    def test_rejects_negative_polarity(self):
        with pytest.raises(CircuitError):
            cnot_circuit_to_matrix([CXGate.make(0, 1, phase=0)], 2)


class TestPMH:
    @given(st.integers(0, 300))
    def test_synthesis_realizes_matrix(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(2, 7))
        mat = _random_invertible(n, rng)
        gates = pmh_synthesize(mat)
        realized = cnot_circuit_to_matrix(list(gates), n)
        assert np.array_equal(realized, mat)

    def test_identity_needs_no_gates(self):
        assert pmh_synthesize(np.eye(4, dtype=np.uint8)) == []

    def test_singular_rejected(self):
        mat = np.zeros((3, 3), dtype=np.uint8)
        with pytest.raises(CircuitError):
            pmh_synthesize(mat)

    def test_non_square_rejected(self):
        with pytest.raises(CircuitError):
            pmh_synthesize(np.ones((2, 3), dtype=np.uint8))

    def test_wrapper_circuit(self):
        rng = np.random.default_rng(5)
        mat = _random_invertible(4, rng)
        circuit = matrix_to_cnot_circuit(mat, 4)
        assert np.array_equal(
            cnot_circuit_to_matrix(list(circuit), 4), mat)


class TestResynthesis:
    def test_long_redundant_block_shrinks(self):
        qc = QCircuit(3)
        # A wasteful identity-ish block: CX(0,1) four times + a real op.
        for _ in range(4):
            qc.cx(0, 1)
        qc.cx(1, 2)
        out = resynthesize_cnot_blocks(qc, min_block=3)
        assert out.cnot_cost() < qc.cnot_cost()
        assert circuits_equivalent(qc, out)

    def test_mixed_circuit_preserved(self):
        qc = QCircuit(3).ry(0, 0.4).cx(0, 1).cx(1, 2).cx(0, 1).ry(2, -0.2)
        out = resynthesize_cnot_blocks(qc)
        assert circuits_equivalent(qc, out)
        assert out.cnot_cost() <= qc.cnot_cost()

    @given(st.integers(0, 200))
    def test_random_circuits_equivalent(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(2, 5))
        qc = QCircuit(n)
        for _ in range(int(rng.integers(1, 15))):
            if rng.random() < 0.75 and n >= 2:
                a, b = rng.choice(n, size=2, replace=False)
                qc.cx(int(a), int(b))
            else:
                qc.ry(int(rng.integers(0, n)), float(rng.standard_normal()))
        out = resynthesize_cnot_blocks(qc)
        assert out.cnot_cost() <= qc.cnot_cost()
        assert circuits_equivalent(qc, out)

    def test_short_blocks_untouched(self):
        qc = QCircuit(2).cx(0, 1).cx(1, 0)
        out = resynthesize_cnot_blocks(qc, min_block=3)
        assert list(out) == list(qc)

"""Unit tests for the coupling-aware routing cost extension."""

from __future__ import annotations

import networkx as nx
import pytest

from repro.circuits.circuit import QCircuit
from repro.exceptions import CircuitError
from repro.opt.mapping import (
    best_placement,
    grid_coupling,
    line_coupling,
    ring_coupling,
    routed_cnot_cost,
)


class TestGraphs:
    def test_line(self):
        g = line_coupling(4)
        assert g.number_of_edges() == 3

    def test_ring(self):
        g = ring_coupling(4)
        assert g.number_of_edges() == 4

    def test_grid(self):
        g = grid_coupling(2, 3)
        assert g.number_of_nodes() == 6
        assert sorted(g.nodes()) == list(range(6))


class TestRoutedCost:
    def test_adjacent_cx_costs_one(self):
        qc = QCircuit(2).cx(0, 1)
        assert routed_cnot_cost(qc, line_coupling(2)) == 1

    def test_distance_two_costs_five(self):
        qc = QCircuit(3).cx(0, 2)
        assert routed_cnot_cost(qc, line_coupling(3)) == 5  # 4*(2-1)+1

    def test_full_graph_matches_plain_cost(self):
        qc = QCircuit(3).cx(0, 2).cx(1, 0).cry(0, 1, 0.4)
        complete = nx.complete_graph(3)
        assert routed_cnot_cost(qc, complete) == qc.cnot_cost()

    def test_counts_decomposed_cx(self):
        qc = QCircuit(2).cry(0, 1, 0.5)  # 2 CX after lowering
        assert routed_cnot_cost(qc, line_coupling(2)) == 2

    def test_placement_changes_cost(self):
        qc = QCircuit(3).cx(0, 2)
        line = line_coupling(3)
        assert routed_cnot_cost(qc, line, [0, 2, 1]) == 1

    def test_graph_too_small(self):
        with pytest.raises(CircuitError):
            routed_cnot_cost(QCircuit(3).cx(0, 1), line_coupling(2))

    def test_bad_placement(self):
        with pytest.raises(CircuitError):
            routed_cnot_cost(QCircuit(2).cx(0, 1), line_coupling(2), [0, 0])

    def test_disconnected_graph(self):
        g = nx.empty_graph(2)
        with pytest.raises(CircuitError):
            routed_cnot_cost(QCircuit(2).cx(0, 1), g)


class TestBestPlacement:
    def test_finds_adjacent_layout(self):
        qc = QCircuit(3).cx(0, 2).cx(0, 2)
        placement, cost = best_placement(qc, line_coupling(3))
        assert cost == 2  # both CX routed at distance 1

    def test_never_worse_than_identity(self):
        qc = QCircuit(4).cx(0, 3).cx(1, 2).cx(0, 1)
        identity_cost = routed_cnot_cost(qc, line_coupling(4))
        _, cost = best_placement(qc, line_coupling(4))
        assert cost <= identity_cost

"""Tests for the noisy execution model (repro.sim.noise)."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits.circuit import QCircuit
from repro.exceptions import CircuitError
from repro.sim.noise import (
    NoiseModel,
    analytic_fidelity_bound,
    density_matrix_fidelity,
    monte_carlo_fidelity,
    noisy_density_matrix,
    state_fidelity,
)
from repro.sim.statevector import simulate_circuit
from repro.states.families import ghz_state
from repro.states.qstate import QState


def _bell_circuit() -> QCircuit:
    return QCircuit(2).ry(0, math.pi / 2.0).cx(0, 1)


def _bell_state() -> QState:
    return QState.uniform(2, [0b00, 0b11])


class TestNoiseModel:
    def test_defaults_are_probabilities(self):
        noise = NoiseModel()
        assert 0 < noise.p_1q < noise.p_cx < 1

    def test_ideal(self):
        noise = NoiseModel.ideal()
        assert noise.p_cx == 0.0 and noise.p_1q == 0.0

    def test_rejects_bad_probability(self):
        with pytest.raises(CircuitError):
            NoiseModel(p_cx=1.5)
        with pytest.raises(CircuitError):
            NoiseModel(p_1q=-0.1)

    def test_gate_error_selects_class(self):
        noise = NoiseModel(p_cx=0.3, p_1q=0.1)
        assert noise.gate_error(2) == 0.3
        assert noise.gate_error(1) == 0.1


class TestAnalyticBound:
    def test_ideal_noise_gives_one(self):
        assert analytic_fidelity_bound(_bell_circuit(),
                                       NoiseModel.ideal()) == 1.0

    def test_product_form(self):
        # bell circuit decomposes to 1 Ry + 1 CX
        noise = NoiseModel(p_cx=0.1, p_1q=0.01)
        expected = (1 - 0.01) * (1 - 0.1)
        assert analytic_fidelity_bound(_bell_circuit(), noise) == \
            pytest.approx(expected)

    def test_more_cnots_lower_bound(self):
        noise = NoiseModel(p_cx=0.05, p_1q=0.0)
        short = QCircuit(2).cx(0, 1)
        long = QCircuit(2).cx(0, 1).cx(0, 1).cx(0, 1)
        assert analytic_fidelity_bound(long, noise) < \
            analytic_fidelity_bound(short, noise)

    def test_counts_decomposed_gates(self):
        # a CRy costs 2 CNOTs after decomposition
        noise = NoiseModel(p_cx=0.1, p_1q=0.0)
        qc = QCircuit(2).cry(0, 1, 0.7)
        assert analytic_fidelity_bound(qc, noise) == \
            pytest.approx((1 - 0.1) ** 2)


class TestDensityMatrix:
    def test_noiseless_matches_pure_simulation(self):
        qc = _bell_circuit()
        rho = noisy_density_matrix(qc, NoiseModel.ideal())
        vec = simulate_circuit(qc).astype(np.complex128)
        assert np.allclose(rho, np.outer(vec, np.conj(vec)), atol=1e-9)

    def test_trace_preserved(self):
        rho = noisy_density_matrix(_bell_circuit(),
                                   NoiseModel(p_cx=0.2, p_1q=0.05))
        assert np.trace(rho).real == pytest.approx(1.0)
        assert abs(np.trace(rho).imag) < 1e-12

    def test_rho_hermitian_psd(self):
        rho = noisy_density_matrix(_bell_circuit(),
                                   NoiseModel(p_cx=0.3, p_1q=0.1))
        assert np.allclose(rho, rho.conj().T, atol=1e-12)
        eigenvalues = np.linalg.eigvalsh(rho)
        assert eigenvalues.min() >= -1e-12

    def test_fidelity_one_when_ideal(self):
        fid = density_matrix_fidelity(_bell_circuit(), _bell_state(),
                                      NoiseModel.ideal())
        assert fid == pytest.approx(1.0)

    def test_fidelity_decreases_with_noise(self):
        weak = density_matrix_fidelity(_bell_circuit(), _bell_state(),
                                       NoiseModel(p_cx=0.01, p_1q=0.001))
        strong = density_matrix_fidelity(_bell_circuit(), _bell_state(),
                                         NoiseModel(p_cx=0.2, p_1q=0.02))
        assert 0 < strong < weak < 1

    def test_analytic_bound_is_a_lower_bound(self):
        noise = NoiseModel(p_cx=0.05, p_1q=0.01)
        qc = _bell_circuit()
        exact = density_matrix_fidelity(qc, _bell_state(), noise)
        assert analytic_fidelity_bound(qc, noise) <= exact + 1e-12

    def test_width_guard(self):
        qc = QCircuit(9).cx(0, 1)
        with pytest.raises(CircuitError):
            noisy_density_matrix(qc, NoiseModel())

    def test_full_depolarizing_gives_maximally_mixed(self):
        # p = 1 on the only gate: state becomes I/4 on the touched pair
        qc = QCircuit(2).cx(0, 1)
        rho = noisy_density_matrix(qc, NoiseModel(p_cx=1.0, p_1q=0.0))
        assert np.allclose(rho, np.eye(4) / 4.0, atol=1e-12)


class TestStateFidelity:
    def test_pure_match(self):
        state = _bell_state()
        vec = state.to_vector().astype(np.complex128)
        rho = np.outer(vec, vec.conj())
        assert state_fidelity(state, rho) == pytest.approx(1.0)

    def test_orthogonal_states(self):
        rho = np.zeros((4, 4), dtype=np.complex128)
        rho[1, 1] = 1.0  # |01><01|
        assert state_fidelity(QState.basis(2, 0), rho) == pytest.approx(0.0)

    def test_shape_mismatch(self):
        with pytest.raises(CircuitError):
            state_fidelity(QState.basis(3, 0), np.eye(4) / 4)


class TestMonteCarlo:
    def test_ideal_noise_gives_one(self):
        fid = monte_carlo_fidelity(_bell_circuit(), _bell_state(),
                                   NoiseModel.ideal(), shots=10)
        assert fid == pytest.approx(1.0)

    def test_deterministic_per_seed(self):
        noise = NoiseModel(p_cx=0.1, p_1q=0.01)
        a = monte_carlo_fidelity(_bell_circuit(), _bell_state(), noise,
                                 shots=50, seed=5)
        b = monte_carlo_fidelity(_bell_circuit(), _bell_state(), noise,
                                 shots=50, seed=5)
        assert a == b

    def test_agrees_with_density_matrix(self):
        noise = NoiseModel(p_cx=0.15, p_1q=0.02)
        qc = _bell_circuit()
        exact = density_matrix_fidelity(qc, _bell_state(), noise)
        sampled = monte_carlo_fidelity(qc, _bell_state(), noise,
                                       shots=4000, seed=3)
        assert sampled == pytest.approx(exact, abs=0.03)

    def test_ghz_fidelity_sampling(self):
        from repro.qsp.workflow import prepare_state

        state = ghz_state(3)
        qc = prepare_state(state).circuit
        noise = NoiseModel(p_cx=0.05, p_1q=0.005)
        exact = density_matrix_fidelity(qc, state, noise)
        sampled = monte_carlo_fidelity(qc, state, noise, shots=3000, seed=9)
        assert sampled == pytest.approx(exact, abs=0.03)


@given(st.floats(min_value=0.0, max_value=0.5),
       st.floats(min_value=0.0, max_value=0.1))
@settings(max_examples=15, deadline=None)
def test_density_fidelity_bounded(p_cx, p_1q):
    noise = NoiseModel(p_cx=p_cx, p_1q=p_1q)
    fid = density_matrix_fidelity(_bell_circuit(), _bell_state(), noise)
    assert -1e-12 <= fid <= 1.0 + 1e-12


@given(st.integers(min_value=1, max_value=6))
@settings(max_examples=10, deadline=None)
def test_cnot_count_monotone_fidelity(num_cnots):
    """Appending CX pairs (logical identity) only hurts fidelity."""
    noise = NoiseModel(p_cx=0.03, p_1q=0.0)
    base = _bell_circuit()
    padded = QCircuit(2, base.gates)
    for _ in range(num_cnots):
        padded.cx(0, 1).cx(0, 1)
    fid_base = density_matrix_fidelity(base, _bell_state(), noise)
    fid_padded = density_matrix_fidelity(padded, _bell_state(), noise)
    assert fid_padded < fid_base

"""Unit + property tests for JSON serialization."""

from __future__ import annotations

import json

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.circuits.circuit import QCircuit
from repro.exceptions import ReproError
from repro.sim.equivalence import circuits_equivalent
from repro.states.families import dicke_state
from repro.states.qstate import QState
from repro.utils.serialization import (
    circuit_from_dict,
    circuit_to_dict,
    dumps,
    loads,
    state_from_dict,
    state_to_dict,
)


class TestStateRoundTrip:
    def test_basic(self):
        s = dicke_state(4, 2)
        assert state_from_dict(state_to_dict(s)) == s

    def test_signed_amplitudes(self):
        s = QState(3, {1: 0.6, 6: -0.8})
        assert state_from_dict(state_to_dict(s)) == s

    @given(st.integers(0, 200))
    def test_property_roundtrip(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(1, 6))
        m = int(rng.integers(1, min(8, 1 << n) + 1))
        idx = rng.choice(1 << n, size=m, replace=False)
        amps = rng.standard_normal(m)
        s = QState(n, {int(i): float(a) for i, a in zip(idx, amps)})
        assert loads(dumps(s)) == s

    def test_wrong_kind_rejected(self):
        with pytest.raises(ReproError):
            state_from_dict({"kind": "circuit"})


class TestCircuitRoundTrip:
    def test_all_gate_types(self):
        qc = QCircuit(4)
        qc.x(0).ry(1, 0.123456789).rz(2, -0.5).cx(0, 1, phase=0)
        qc.cry(1, 2, 0.7).mcry([(0, 1), (1, 0)], 3, 2.5)
        back = circuit_from_dict(circuit_to_dict(qc))
        assert back == qc
        assert circuits_equivalent(qc, back)

    def test_angles_lossless(self):
        theta = 0.1234567890123456789
        qc = QCircuit(1).ry(0, theta)
        back = loads(dumps(qc))
        assert back[0].theta == qc[0].theta  # exact, not approximate

    def test_json_is_valid(self):
        text = dumps(QCircuit(2).cx(0, 1), indent=2)
        data = json.loads(text)
        assert data["kind"] == "qcircuit"

    def test_unknown_gate_rejected(self):
        with pytest.raises(ReproError):
            circuit_from_dict({"kind": "qcircuit", "num_qubits": 2,
                               "gates": [{"name": "h", "target": 0,
                                          "controls": []}]})

    def test_wrong_kind_rejected(self):
        with pytest.raises(ReproError):
            loads(json.dumps({"kind": "mystery"}))
        with pytest.raises(ReproError):
            dumps(42)  # type: ignore[arg-type]

    def test_synthesized_circuit_roundtrip(self):
        from repro.core.exact import synthesize_exact
        result = synthesize_exact(dicke_state(3, 1))
        back = loads(dumps(result.circuit))
        from repro.sim.verify import prepares_state
        assert prepares_state(back, dicke_state(3, 1))

"""Tests for repro.experiments (report, noise gap, topology tax,
search variants)."""

from __future__ import annotations

import pytest

from repro.core.astar import SearchConfig
from repro.experiments.noise_gap import noise_gap_experiment, noise_gap_rows
from repro.experiments.report import ExperimentTable
from repro.experiments.search_variants import (
    search_variant_rows,
    search_variants_experiment,
)
from repro.experiments.topology_tax import (
    standard_devices,
    topology_tax_experiment,
    topology_tax_rows,
)
from repro.sim.noise import NoiseModel
from repro.states.families import dicke_state, ghz_state, w_state
from repro.states.qstate import QState


class TestExperimentTable:
    def test_add_row_checks_width(self):
        table = ExperimentTable("T", "title", ["a", "b"])
        table.add_row(1, 2)
        with pytest.raises(ValueError):
            table.add_row(1)

    def test_to_text_contains_title_and_notes(self):
        table = ExperimentTable("T9", "demo", ["x"], paper_reference="Fig. 9",
                                notes=["a note"])
        table.add_row(42)
        text = table.to_text()
        assert "T9 - demo [Fig. 9]" in text
        assert "42" in text
        assert "note: a note" in text

    def test_to_markdown_structure(self):
        table = ExperimentTable("T1", "demo", ["col1", "col2"])
        table.add_row("a", "b")
        md = table.to_markdown()
        assert md.startswith("### T1 — demo")
        assert "| col1 | col2 |" in md
        assert "| a | b |" in md

    def test_markdown_notes_rendered(self):
        table = ExperimentTable("T2", "demo", ["c"], notes=["careful"])
        table.add_row(1)
        assert "- careful" in table.to_markdown()


class TestNoiseGap:
    @pytest.fixture(scope="class")
    def rows(self):
        states = [("ghz3", ghz_state(3)), ("w3", w_state(3))]
        return noise_gap_rows(states, NoiseModel(p_cx=0.02, p_1q=0.002))

    def test_row_per_state(self, rows):
        assert [r.label for r in rows] == ["ghz3", "w3"]

    def test_fewer_cnots_higher_bound(self, rows):
        for row in rows:
            assert row.ours_cnots <= row.mflow_cnots
            # vs n-flow the CNOT gap is >= 2, which dominates any
            # difference in (10x cheaper) single-qubit gate counts
            assert row.ours_cnots < row.nflow_cnots
            assert row.ours_bound >= row.nflow_bound - 1e-12

    def test_exact_fidelity_computed_for_small_n(self, rows):
        for row in rows:
            assert row.ours_exact is not None
            assert 0.0 < row.ours_exact <= 1.0

    def test_bound_below_exact(self, rows):
        for row in rows:
            assert row.ours_bound <= row.ours_exact + 1e-9

    def test_table_rendering(self):
        table = noise_gap_experiment([("ghz3", ghz_state(3))])
        assert "EX1" in table.to_text()
        assert len(table.rows) == 1


class TestTopologyTax:
    def test_standard_devices_cover_full_and_line(self):
        names = [d.name for d in standard_devices(4)]
        assert "full" in names and "line" in names and "ring" in names

    def test_two_qubit_devices(self):
        names = [d.name for d in standard_devices(2)]
        assert "full" in names and "line" in names

    def test_rows_full_topology_zero_overhead(self):
        rows = topology_tax_rows([("ghz3", ghz_state(3))],
                                 placements=("trivial",))
        full_rows = [r for r in rows if r.topology == "full"]
        assert full_rows and all(r.overhead_percent == 0.0
                                 for r in full_rows)

    def test_all_rows_verified(self):
        rows = topology_tax_rows([("w3", w_state(3))],
                                 placements=("trivial", "greedy"))
        assert all(r.verified for r in rows)

    def test_experiment_table_shape(self):
        table = topology_tax_experiment([("ghz3", ghz_state(3))],
                                        placements=("greedy",))
        assert len(table.rows) == len(standard_devices(3))
        assert "EX2" in table.to_markdown()


class TestSearchVariants:
    @pytest.fixture(scope="class")
    def rows(self):
        instances = [("bell", QState.uniform(2, [0, 3])),
                     ("d42", dicke_state(4, 2))]
        return search_variant_rows(
            instances, SearchConfig(max_nodes=120_000, time_limit=60.0))

    def test_five_engines_per_instance(self, rows):
        engines = {r.engine for r in rows if r.instance == "bell"}
        assert engines == {"dijkstra", "astar(paper)", "astar(combined)",
                           "idastar", "beam"}

    def test_optimal_engines_agree(self, rows):
        for instance in ("bell", "d42"):
            costs = {r.cnot_cost for r in rows
                     if r.instance == instance and r.optimal}
            assert len(costs) == 1

    def test_beam_not_below_optimum(self, rows):
        for instance in ("bell", "d42"):
            optimum = next(r.cnot_cost for r in rows
                           if r.instance == instance and r.optimal)
            beam = next(r for r in rows
                        if r.instance == instance and r.engine == "beam")
            assert beam.cnot_cost >= optimum

    def test_heuristic_prunes_vs_dijkstra(self, rows):
        dijkstra = next(r for r in rows
                        if r.instance == "d42" and r.engine == "dijkstra")
        astar = next(r for r in rows
                     if r.instance == "d42" and r.engine == "astar(paper)")
        assert astar.nodes_expanded <= dijkstra.nodes_expanded

    def test_experiment_renders(self):
        table = search_variants_experiment(
            [("bell", QState.uniform(2, [0, 3]))],
            SearchConfig(max_nodes=50_000))
        assert "EX3" in table.to_text()
        assert len(table.rows) == 5

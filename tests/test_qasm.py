"""Unit tests for OpenQASM 2 export/import."""

from __future__ import annotations

import math

import pytest

from repro.circuits.circuit import QCircuit
from repro.circuits.qasm import from_qasm, to_qasm
from repro.exceptions import QasmError
from repro.sim.unitary import circuit_unitary, unitaries_equal


class TestExport:
    def test_header_and_register(self):
        text = to_qasm(QCircuit(3).x(0))
        assert text.startswith("OPENQASM 2.0;")
        assert "qreg q[3];" in text
        assert "x q[0];" in text

    def test_lowered_gates_only(self):
        qc = QCircuit(3)
        qc.mcry([(0, 1), (1, 1)], 2, 0.7)
        text = to_qasm(qc)
        assert "mcry" not in text
        assert "cx" in text and "ry" in text

    def test_pi_formatting(self):
        text = to_qasm(QCircuit(1).ry(0, math.pi / 2))
        assert "pi/2" in text

    def test_negative_pi(self):
        text = to_qasm(QCircuit(1).ry(0, -math.pi))
        assert "-pi" in text


class TestImport:
    def test_roundtrip_unitary(self):
        qc = QCircuit(3).ry(0, 0.7).cx(0, 1).rz(2, -0.3).x(1)
        qc.cry(1, 2, 1.1)
        back = from_qasm(to_qasm(qc))
        assert back.num_qubits == 3
        assert unitaries_equal(circuit_unitary(qc), circuit_unitary(back),
                               atol=1e-9)

    def test_roundtrip_cost(self):
        qc = QCircuit(4)
        qc.mcry([(0, 1), (1, 0), (2, 1)], 3, 0.9)
        back = from_qasm(to_qasm(qc))
        assert back.cnot_cost() == qc.cnot_cost() == 8

    def test_parses_comments_and_blanks(self):
        text = """
        OPENQASM 2.0;
        include "qelib1.inc";
        // a comment
        qreg q[2];

        ry(pi/4) q[0];  // trailing comment
        cx q[0],q[1];
        """
        qc = from_qasm(text)
        assert len(qc) == 2

    def test_angle_expressions(self):
        qc = from_qasm(
            'OPENQASM 2.0;\nqreg q[1];\nry(3*pi/4) q[0];\nry(-0.5) q[0];\n')
        assert qc[0].theta == pytest.approx(3 * math.pi / 4)
        assert qc[1].theta == pytest.approx(-0.5)

    def test_measure_and_barrier_skipped(self):
        qc = from_qasm('OPENQASM 2.0;\nqreg q[1];\ncreg c[1];\n'
                       'barrier q[0];\nx q[0];\nmeasure q[0] -> c[0];\n')
        assert [g.name for g in qc] == ["x"]

    def test_unknown_gate_rejected(self):
        with pytest.raises(QasmError):
            from_qasm("OPENQASM 2.0;\nqreg q[2];\nh q[0];\n")

    def test_missing_qreg_rejected(self):
        with pytest.raises(QasmError):
            from_qasm("OPENQASM 2.0;\nx q[0];\n")

    def test_double_qreg_rejected(self):
        with pytest.raises(QasmError):
            from_qasm("OPENQASM 2.0;\nqreg q[2];\nqreg q[3];\n")

    def test_bad_angle_rejected(self):
        with pytest.raises(QasmError):
            from_qasm("OPENQASM 2.0;\nqreg q[1];\nry(import) q[0];\n")
        with pytest.raises(QasmError):
            from_qasm("OPENQASM 2.0;\nqreg q[1];\nry() q[0];\n")

    def test_garbage_line_rejected(self):
        with pytest.raises(QasmError):
            from_qasm("OPENQASM 2.0;\nqreg q[1];\nnot a gate\n")

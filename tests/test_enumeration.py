"""Unit tests for canonical-class counting (Table III substrate)."""

from __future__ import annotations

import math

import pytest

from repro.core.enumeration import (
    canonical_count_table,
    count_canonical_uniform_states,
)


class TestCounting:
    def test_m1_single_class(self):
        """All 16 basis states collapse to the ground class (Table III)."""
        row = count_canonical_uniform_states(4, 1)
        assert row.raw == 16
        assert row.u2 == 1
        assert row.pu2 == 1

    def test_m2_strong_compression(self):
        """Paper reports 120 -> 11 -> 3; our canonicalization is heuristic
        so exact counts may differ slightly, but the compression must be of
        the same magnitude and PU2 <= U2 always."""
        row = count_canonical_uniform_states(4, 2)
        assert row.raw == math.comb(16, 2) == 120
        assert row.pu2 <= row.u2 <= 20
        assert row.pu2 <= 6

    def test_counts_monotone_in_level(self):
        for m in (1, 2, 3):
            row = count_canonical_uniform_states(4, m)
            assert row.pu2 <= row.u2 <= row.raw

    def test_small_register(self):
        row = count_canonical_uniform_states(3, 2)
        assert row.raw == math.comb(8, 2) == 28
        assert row.pu2 <= 4

    def test_table_rows(self):
        rows = canonical_count_table(num_qubits=3, max_cardinality=3)
        assert [r.cardinality for r in rows] == [1, 2, 3]
        assert rows[0].u2 == 1

"""Unit + property tests for the statevector simulator."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.circuits.circuit import QCircuit
from repro.exceptions import CircuitError
from repro.sim.statevector import apply_gate, simulate_circuit, simulate_to_state
from repro.states.families import ghz_state, w_state
from repro.states.qstate import QState


class TestBasics:
    def test_default_initial_is_ground(self):
        vec = simulate_circuit(QCircuit(2))
        assert vec[0] == 1.0 and np.allclose(vec[1:], 0.0)

    def test_x_flips_msb(self):
        vec = simulate_circuit(QCircuit(2).x(0))
        assert vec[0b10] == 1.0

    def test_cx_on_superposition(self):
        qc = QCircuit(2).ry(0, math.pi / 2).cx(0, 1)
        vec = simulate_circuit(qc)
        expected = np.zeros(4)
        expected[0b00] = expected[0b11] = 1 / math.sqrt(2)
        assert np.allclose(vec, expected)

    def test_negative_control(self):
        qc = QCircuit(2).cx(0, 1, phase=0)
        vec = simulate_circuit(qc)
        assert abs(vec[0b01]) == 1.0

    def test_initial_qstate(self):
        s = ghz_state(2)
        vec = simulate_circuit(QCircuit(2), initial=s)
        assert np.allclose(vec, s.to_vector())

    def test_initial_width_mismatch(self):
        with pytest.raises(CircuitError):
            simulate_circuit(QCircuit(2), initial=ghz_state(3))
        with pytest.raises(CircuitError):
            simulate_circuit(QCircuit(2), initial=np.zeros(3))

    def test_apply_gate_length_check(self):
        from repro.circuits.gates import XGate
        with pytest.raises(CircuitError):
            apply_gate(np.zeros(3, dtype=complex), XGate(target=0), 2)

    def test_complex_gate_on_real_vector_rejected(self):
        from repro.circuits.gates import RZGate
        with pytest.raises(CircuitError):
            apply_gate(np.zeros(2), RZGate(target=0, theta=0.5), 1)


class TestSimulateToState:
    def test_returns_qstate(self):
        qc = QCircuit(3).ry(0, math.pi / 2).cx(0, 1).cx(1, 2)
        state = simulate_to_state(qc)
        assert state == ghz_state(3)

    def test_rejects_complex_result(self):
        qc = QCircuit(1).ry(0, math.pi / 2).rz(0, 1.0)
        with pytest.raises(CircuitError):
            simulate_to_state(qc)


class TestUnitarity:
    @given(st.integers(0, 10_000))
    def test_norm_preserved(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(1, 5))
        qc = QCircuit(n)
        for _ in range(8):
            kind = rng.integers(0, 3)
            q = int(rng.integers(0, n))
            if kind == 0:
                qc.ry(q, float(rng.standard_normal()))
            elif kind == 1:
                qc.rz(q, float(rng.standard_normal()))
            elif n > 1:
                t = int((q + 1 + rng.integers(0, n - 1)) % n)
                qc.cx(q, t)
        vec = rng.standard_normal(1 << n) + 1j * rng.standard_normal(1 << n)
        vec /= np.linalg.norm(vec)
        out = simulate_circuit(qc, initial=vec)
        assert np.linalg.norm(out) == pytest.approx(1.0, abs=1e-9)

    def test_inverse_circuit_undoes(self, rng):
        qc = QCircuit(3).ry(0, 0.3).cx(0, 1).cry(1, 2, -0.8).x(2)
        roundtrip = QCircuit(3)
        roundtrip.compose(qc)
        roundtrip.compose(qc.inverse())
        vec = rng.standard_normal(8)
        vec /= np.linalg.norm(vec)
        out = simulate_circuit(roundtrip, initial=vec.astype(complex))
        assert np.allclose(out, vec, atol=1e-9)


class TestKnownStates:
    def test_w3_preparation(self):
        # Manual W3: X, Ry, CX cascade from the baseline module.
        from repro.baselines.dicke_manual import w_state_circuit
        state = simulate_to_state(w_state_circuit(3))
        assert state.approx_equal(w_state(3))

    def test_uniform_superposition(self):
        qc = QCircuit(2).ry(0, math.pi / 2).ry(1, math.pi / 2)
        vec = simulate_circuit(qc)
        assert np.allclose(np.abs(vec) ** 2, 0.25)
